"""Unit tests: energy VAD + continuous-capture pipeline mode."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MlError
from repro.ml.vad import EnergyVad, Segment


def tone(n, amplitude=0.4):
    t = np.arange(n) / 16_000
    return (np.sin(2 * np.pi * 700 * t) * amplitude * 32767).astype(np.int16)


def silence(n):
    return np.zeros(n, dtype=np.int16)


class TestEnergyVad:
    def test_silence_has_no_segments(self):
        assert EnergyVad().segment(silence(16_000)) == []

    def test_pure_tone_is_one_segment(self):
        segments = EnergyVad().segment(tone(8_000))
        assert len(segments) == 1
        assert segments[0].start == 0
        assert segments[0].length >= 7_500

    def test_two_bursts_detected(self):
        pcm = np.concatenate(
            [silence(4_000), tone(3_200), silence(4_000), tone(3_200),
             silence(4_000)]
        )
        segments = EnergyVad().segment(pcm)
        assert len(segments) == 2
        # Segments roughly where the bursts were.
        assert abs(segments[0].start - 4_000) <= 320
        assert abs(segments[1].start - 11_200) <= 320

    def test_hangover_bridges_short_gaps(self):
        gap = silence(EnergyVad().frame_samples * 3)  # under hang_frames
        pcm = np.concatenate([tone(3_200), gap, tone(3_200)])
        assert len(EnergyVad().segment(pcm)) == 1

    def test_long_gap_splits(self):
        gap = silence(EnergyVad().frame_samples * 20)
        pcm = np.concatenate([tone(3_200), gap, tone(3_200)])
        assert len(EnergyVad().segment(pcm)) == 2

    def test_blips_dropped(self):
        vad = EnergyVad(min_frames=3)
        blip = tone(vad.frame_samples)  # one frame only
        pcm = np.concatenate([silence(4_000), blip, silence(4_000)])
        assert vad.segment(pcm) == []

    def test_extract_returns_pcm(self):
        pcm = np.concatenate([silence(4_000), tone(3_200), silence(4_000)])
        chunks = EnergyVad().extract(pcm)
        assert len(chunks) == 1
        assert np.abs(chunks[0]).mean() > np.abs(pcm).mean()

    def test_requires_int16(self):
        with pytest.raises(MlError):
            EnergyVad().segment(np.zeros(100, dtype=np.float32))

    def test_bad_parameters(self):
        with pytest.raises(MlError):
            EnergyVad(frame_samples=0)
        with pytest.raises(MlError):
            EnergyVad(threshold=0.0)

    def test_short_input(self):
        assert EnergyVad().segment(np.zeros(10, dtype=np.int16)) == []

    def test_vocoder_output_segments_per_utterance(self, vocoder):
        """The real use: utterances separated by silence gaps."""
        texts = ["what is the weather like today",
                 "set a timer for ten minutes"]
        gap = silence(3_000)
        pcm = np.concatenate(
            [np.concatenate([vocoder.render(t), gap]) for t in texts]
        )
        segments = EnergyVad().segment(pcm)
        assert len(segments) == 2

    @given(st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=20, deadline=None)
    def test_property_segments_ordered_and_disjoint(self, offset):
        pcm = np.concatenate(
            [silence(offset % 5_000), tone(3_200), silence(2_500),
             tone(3_200), silence(1_000)]
        )
        segments = EnergyVad().segment(pcm)
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.start
        for s in segments:
            assert 0 <= s.start < s.end <= len(pcm)


class TestContinuousPipeline:
    def test_stream_mode_matches_per_utterance_decisions(self, provisioned):
        from repro.core.platform import IotPlatform
        from repro.core.pipeline import SecurePipeline
        from tests.test_core_pipeline import MIXED, make_workload

        platform = IotPlatform.create(seed=91)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED)
        run = pipeline.process_continuous(workload)

        assert len(run) == len(workload)
        for result in run.results:
            assert result.transcript == result.utterance.text
            assert result.forwarded == (not result.utterance.sensitive)
        assert run.stage_cycles["vad"] > 0

    def test_stream_mode_cloud_content(self, provisioned):
        from repro.core.platform import IotPlatform
        from repro.core.pipeline import SecurePipeline
        from tests.test_core_pipeline import MIXED, make_workload

        platform = IotPlatform.create(seed=92)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED)
        pipeline.process_continuous(workload)
        received = platform.cloud.received_transcripts
        benign = [u.text for u in workload.utterances if not u.sensitive]
        assert sorted(received) == sorted(benign)
