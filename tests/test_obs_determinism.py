"""Observability must be passive: identical decisions with obs on or off.

The guarantee the instrumentation layer makes (see ``repro.obs``): opening
spans and recording metrics reads the clock/energy meter but never charges
cycles, never consumes RNG, and never alters control flow.  These tests
serialize every decision-relevant field — transcripts, sensitive flags,
forwarded payloads, relay statuses, and even the cycle/energy costs — and
require the bytes to be identical between an enabled and a disabled run.
"""

import json

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.workload import UtteranceWorkload
from repro.ml.dataset import UtteranceGenerator
from repro.sim.rng import SimRng


def _decision_bytes(provisioned, disable_obs: bool,
                    continuous: bool = False) -> bytes:
    platform = IotPlatform.create(seed=177)
    if disable_obs:
        platform.machine.obs.disable()
    pipeline = SecurePipeline(platform, provisioned.bundle)
    corpus = UtteranceGenerator(SimRng(177, "obs-det")).generate(
        6, sensitive_fraction=0.5
    )
    workload = UtteranceWorkload.from_corpus(
        corpus, provisioned.bundle.vocoder
    )
    try:
        if continuous:
            run = pipeline.process_continuous(workload)
        else:
            run = pipeline.process(workload)
    finally:
        pipeline.close()
    doc = {
        "results": [
            {
                "transcript": r.transcript,
                "sensitive": r.sensitive_predicted,
                "forwarded": r.forwarded,
                "payload": r.payload,
                "relay_status": r.relay_status,
                "relay_attempts": r.relay_attempts,
                "latency_cycles": r.latency_cycles,
                "energy_mj": r.energy_mj,
                "domains": {
                    d.value: c for d, c in sorted(r.domain_cycles.items(),
                                                  key=lambda kv: kv[0].value)
                },
            }
            for r in run.results
        ],
        "stage_cycles": run.stage_cycles,
        "relay_stats": run.relay_stats,
        "cloud": platform.cloud.received_transcripts,
        "final_cycle": platform.machine.clock.now,
    }
    return json.dumps(doc, sort_keys=True).encode()


class TestObsIsPassive:
    def test_batch_runs_byte_identical(self, provisioned):
        enabled = _decision_bytes(provisioned, disable_obs=False)
        disabled = _decision_bytes(provisioned, disable_obs=True)
        assert enabled == disabled

    def test_continuous_runs_byte_identical(self, provisioned):
        enabled = _decision_bytes(provisioned, disable_obs=False,
                                  continuous=True)
        disabled = _decision_bytes(provisioned, disable_obs=True,
                                   continuous=True)
        assert enabled == disabled

    def test_disabled_run_retains_nothing(self, provisioned):
        platform = IotPlatform.create(seed=178)
        platform.machine.obs.disable()
        pipeline = SecurePipeline(platform, provisioned.bundle)
        corpus = UtteranceGenerator(SimRng(178, "obs-det")).generate(2)
        workload = UtteranceWorkload.from_corpus(
            corpus, provisioned.bundle.vocoder
        )
        try:
            run = pipeline.process(workload)
        finally:
            pipeline.close()
        assert platform.machine.obs.tracer.spans == []
        assert platform.machine.obs.metrics.counters() == {}
        # ...while the legacy stage accounting still works (spans measure
        # even when retention is off).
        assert run.stage_cycles["capture"] > 0
