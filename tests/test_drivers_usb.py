"""Unit tests: USB bus model + USB audio driver."""

import numpy as np
import pytest

from repro.drivers.hosting import KernelDriverHost
from repro.drivers.usb_audio_driver import UsbAudioDriver
from repro.errors import BusProtocolError, DeviceStateError, DriverError
from repro.peripherals.audio import BufferSource, ToneSource
from repro.peripherals.usb import (
    DESC_CONFIGURATION,
    DESC_DEVICE,
    GET_DESCRIPTOR,
    ISO_IN_ENDPOINT,
    SET_CONFIGURATION,
    SET_INTERFACE,
    SetupPacket,
    UsbAudioMicrophone,
    UsbBus,
)


@pytest.fixture
def usb_rig(machine):
    mic = UsbAudioMicrophone(ToneSource())
    bus = UsbBus(machine.clock, mic)
    driver = UsbAudioDriver(KernelDriverHost(machine), bus)
    return machine, bus, mic, driver


class TestUsbDevice:
    def test_device_descriptor_wire_format(self, usb_rig):
        _, bus, mic, _ = usb_rig
        raw = bus.control(
            SetupPacket(0x80, GET_DESCRIPTOR, DESC_DEVICE << 8, 0, 18)
        )
        assert len(raw) == 18
        assert raw[0] == 18 and raw[1] == DESC_DEVICE

    def test_config_descriptor_contains_topology(self, usb_rig):
        _, bus, _, _ = usb_rig
        raw = bus.control(
            SetupPacket(0x80, GET_DESCRIPTOR, DESC_CONFIGURATION << 8, 0, 255)
        )
        assert raw[1] == DESC_CONFIGURATION
        assert raw.count(b"\x09\x04"[1:]) >= 1  # interface descriptors present

    def test_streaming_requires_configuration(self, usb_rig):
        _, bus, _, _ = usb_rig
        with pytest.raises(BusProtocolError):
            bus.iso_in(ISO_IN_ENDPOINT, 16)

    def test_streaming_after_setup(self, usb_rig):
        _, bus, mic, _ = usb_rig
        bus.control(SetupPacket(0x00, SET_CONFIGURATION, 1, 0, 0))
        bus.control(SetupPacket(0x01, SET_INTERFACE, 1, 1, 0))
        samples = bus.iso_in(ISO_IN_ENDPOINT, 32)
        assert len(samples) == 32
        assert mic.frames_streamed == 32

    def test_bad_endpoint(self, usb_rig):
        _, bus, _, _ = usb_rig
        with pytest.raises(BusProtocolError):
            bus.iso_in(0x82, 8)

    def test_reset_clears_state(self, usb_rig):
        _, bus, mic, _ = usb_rig
        bus.control(SetupPacket(0x00, SET_CONFIGURATION, 1, 0, 0))
        bus.reset()
        assert not mic.configured
        assert mic.address == 0

    def test_unsupported_sample_rate_rejected(self, usb_rig):
        import struct

        from repro.peripherals.usb import UAC_SAMPLE_RATE_CONTROL, UAC_SET_CUR

        _, bus, _, _ = usb_rig
        with pytest.raises(BusProtocolError):
            bus.control(SetupPacket(
                0x21, UAC_SET_CUR, UAC_SAMPLE_RATE_CONTROL, 0x0200, 4,
                struct.pack("<I", 44_100),
            ))


class TestUsbDriver:
    def test_enumeration(self, usb_rig):
        _, _, mic, driver = usb_rig
        driver.probe()
        assert driver.state == "idle"
        assert driver.device_info["vendor_id"] == mic.VENDOR_ID
        assert len(driver.interfaces) == 3  # ctl, alt0, alt1
        assert len(driver.endpoints) == 1
        assert mic.configured

    def test_capture_round_trip(self, usb_rig):
        _, _, mic, driver = usb_rig
        expect = (np.arange(256) * 41 % 3000 - 1500).astype(np.int16)
        mic.source = BufferSource(expect)
        driver.probe()
        driver.pcm_open_capture(256)
        driver.trigger_start()
        pcm = driver.read_chunk()
        assert np.array_equal(pcm, expect)
        driver.trigger_stop()
        driver.pcm_close()
        assert driver.state == "idle"

    def test_device_side_volume(self, usb_rig):
        _, _, mic, driver = usb_rig
        mic.source = BufferSource(np.full(512, 1000, dtype=np.int16))
        driver.probe()
        driver.pcm_open_capture(64)
        driver.set_volume(50)
        driver.trigger_start()
        assert driver.read_chunk()[0] == 500

    def test_device_side_mute(self, usb_rig):
        _, _, _, driver = usb_rig
        driver.probe()
        driver.pcm_open_capture(64)
        driver.set_mute(True)
        driver.trigger_start()
        assert not np.any(driver.read_chunk())

    def test_stall_recovery_mid_capture(self, usb_rig):
        """An endpoint stall is recovered transparently (CLEAR_FEATURE)."""
        _, _, mic, driver = usb_rig
        driver.probe()
        driver.pcm_open_capture(128)
        driver.trigger_start()
        mic.stall_next = True
        pcm = driver.read_chunk()
        assert len(pcm) == 128  # full chunk despite the stall

    def test_state_machine_guards(self, usb_rig):
        _, _, _, driver = usb_rig
        with pytest.raises(DeviceStateError):
            driver.pcm_open_capture(64)
        driver.probe()
        with pytest.raises(DeviceStateError):
            driver.read_chunk()
        with pytest.raises(DriverError):
            driver.set_volume(101)

    def test_suspend_resume(self, usb_rig):
        _, _, _, driver = usb_rig
        driver.probe()
        driver.suspend()
        assert driver.state == "suspended"
        driver.resume()
        assert driver.state == "idle"

    def test_debug_surface(self, usb_rig):
        _, _, _, driver = usb_rig
        driver.probe()
        assert driver.lsusb_info()["vendor_id"]
        assert driver.dump_descriptors()["endpoints"]
        assert driver.selftest()

    def test_remove_releases_resources(self, usb_rig):
        machine, _, _, driver = usb_rig
        driver.probe()
        driver.pcm_open_capture(64)
        driver.remove()
        assert driver.state == "unbound"
        assert machine.ns_allocator.used_bytes == 0


class TestProtocolComplexityClaim:
    """Paper §III: I²S chosen over USB for being 'lightweight'."""

    def test_usb_driver_is_substantially_bigger(self):
        from repro.drivers.i2s_driver import I2sDriver

        assert UsbAudioDriver.total_loc() > 1.3 * I2sDriver.total_loc()

    def test_usb_minimal_capture_tcb_is_much_bigger(self, usb_rig):
        """The decisive comparison: the *minimized* capture TCB.

        I²S capture needs none of the driver's probe bulk beyond clocking;
        USB capture cannot shed enumeration — the paper's lightweight
        argument, quantified.
        """
        from repro.kernel.tracer import FunctionTracer
        from repro.tcb.analyze import TcbAnalyzer

        machine, _, _, driver = usb_rig
        tracer = FunctionTracer()
        driver.host.attach_tracer(tracer)
        tracer.start("usb-record")
        driver.probe()
        driver.pcm_open_capture(128)
        driver.trigger_start()
        driver.read_chunk()
        driver.trigger_stop()
        driver.pcm_close()
        session = tracer.stop()
        plan = TcbAnalyzer(UsbAudioDriver).analyze([session], task="usb-record")

        from tests.test_tcb import build_rig, trace_record_task

        _, kernel, _, _ = build_rig()
        i2s_session = trace_record_task(kernel)
        from repro.drivers.i2s_driver import I2sDriver

        i2s_plan = TcbAnalyzer(I2sDriver).analyze([i2s_session], task="record")
        assert plan.report.loc_kept > 1.5 * i2s_plan.report.loc_kept

    def test_usb_capture_needs_more_control_traffic(self, usb_rig):
        """One chunk of USB audio costs dozens of control transfers during
        setup; I²S needs none (registers are memory-mapped)."""
        _, bus, _, driver = usb_rig
        driver.probe()
        driver.pcm_open_capture(128)
        driver.trigger_start()
        driver.read_chunk()
        assert bus.control_transfers >= 7
