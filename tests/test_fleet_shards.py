"""Sharded fleet co-simulation: determinism, serialization, bug fixes.

The tentpole contracts of the sharded runner, tested end to end:

* a sharded ``run_fleet`` produces a merged report byte-identical to the
  sequential run of the same roster (the partition/reassemble invariant);
* :class:`DeviceReport` is a plain picklable document — no pinned
  machine/platform graphs — and the watchdog works from its serialized
  heartbeat map;
* the regression fixes this refactor flushed out: the empty-fleet
  ``reduce`` crash, the hardcoded 2 GHz cycle→ms conversions, and the
  cloud dedup key that conflated devices sharing a dialog id.
"""

import json
import pickle

import pytest

from repro.obs.fleet import (
    LATENCY_METRIC,
    DeviceSpec,
    FleetReport,
    device_specs,
    partition_specs,
    run_fleet,
    simulate_device,
    simulate_device_runtime,
)
from repro.sim.clock import DEFAULT_FREQ_HZ, SimClock, cycles_to_ms


def fleet_doc(report):
    return json.dumps(report.to_doc(), sort_keys=True)


@pytest.fixture(scope="module")
def sequential(provisioned):
    """The sequential reference fleet (shared: ~seconds)."""
    return run_fleet(devices=4, seed=7, utterances=2,
                     bundle=provisioned.bundle)


@pytest.fixture(scope="module")
def sharded(provisioned):
    """The same roster co-simulated across 2 worker processes."""
    return run_fleet(devices=4, seed=7, utterances=2,
                     bundle=provisioned.bundle, shards=2)


class TestPartition:
    def test_contiguous_balanced_and_order_preserving(self):
        specs = device_specs(10, seed=7)
        groups = partition_specs(specs, 3)
        assert [len(g) for g in groups] == [4, 3, 3]
        assert [s for g in groups for s in g] == specs

    def test_shards_clamped_to_roster(self):
        specs = device_specs(2, seed=7)
        groups = partition_specs(specs, 8)
        assert [len(g) for g in groups] == [1, 1]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition_specs(device_specs(2), 0)


class TestShardDeterminism:
    """Issue criterion: shards=1 and shards=N merge byte-identically."""

    def test_merged_doc_byte_identical(self, sequential, sharded):
        assert fleet_doc(sequential) == fleet_doc(sharded)

    def test_merged_registry_byte_identical(self, sequential, sharded):
        assert json.dumps(
            sequential.merged_registry().to_doc(), sort_keys=True
        ) == json.dumps(sharded.merged_registry().to_doc(), sort_keys=True)

    def test_roster_order_survives_shard_reassembly(self, sharded):
        assert [d.spec.device_id for d in sharded.devices] == [
            "d00", "d01", "d02", "d03"
        ]

    def test_decisions_identical_obs_on_off_across_shards(self, provisioned):
        """Per-device decisions byte-identical with obs on/off, sharded."""
        lit = run_fleet(devices=3, seed=11, utterances=2,
                        bundle=provisioned.bundle, shards=2)
        dark = run_fleet(devices=3, seed=11, utterances=2,
                         bundle=provisioned.bundle, shards=2,
                         observability=False)
        for a, b in zip(lit.devices, dark.devices):
            decisions = lambda d: json.dumps(
                {"summary": d.summary, "relay": d.relay,
                 "latencies": d.latencies, "energy_mj": d.energy_mj,
                 "world_switches": d.world_switches},
                sort_keys=True,
            )
            assert decisions(a) == decisions(b)
            assert b.registry.counters() == {}


class TestDeviceReportDocument:
    def test_report_pickles_and_roundtrips(self, sequential):
        for device in sequential.devices:
            clone = pickle.loads(pickle.dumps(device))
            assert clone.to_doc() == device.to_doc()
            assert clone.registry.counters() == device.registry.counters()

    def test_report_carries_no_simulation_graph(self, sequential):
        device = sequential.devices[0]
        for attr in ("machine", "platform", "ta_uuid"):
            assert not hasattr(device, attr)

    def test_runtime_form_keeps_live_objects(self, provisioned):
        spec = DeviceSpec(device_id="rt", seed=555, utterances=1,
                          sensitive_fraction=0.5, fault_profile="clean")
        runtime = simulate_device_runtime(spec, provisioned.bundle)
        assert runtime.machine is not None
        assert runtime.platform is not None
        assert runtime.ta_uuid is not None
        assert runtime.report.spec == spec

    def test_watchdog_from_serialized_report(self, sequential):
        device = pickle.loads(pickle.dumps(sequential.devices[0]))
        assert device.clock_now > 0
        assert "pipeline" in device.heartbeats
        # Generous stall budget: the run just ended, nothing is stalled.
        assert device.stalled() == []
        # A 1-cycle budget flags every track that is not the very newest.
        stalled = {a.category for a in device.stalled(stall_cycles=1)}
        assert stalled, "1-cycle stall budget must flag quiet tracks"

    def test_watchdog_sentinel_without_observability(self, provisioned):
        spec = DeviceSpec(device_id="dk", seed=556, utterances=1,
                          sensitive_fraction=0.5, fault_profile="clean")
        dark = simulate_device(spec, provisioned.bundle, observability=False)
        assert dark.heartbeats == {}
        alerts = dark.stalled()
        assert [a.category for a in alerts] == ["(no spans)"]


class TestEmptyFleetRegression:
    """Regression: reduce() without initializer raised on empty fleets."""

    def test_empty_fleet_histogram_is_empty_not_typeerror(self):
        empty = FleetReport(seed=3)
        hist = empty.latency_hist
        assert hist.count == 0
        assert hist.p50 == 0.0
        assert hist.name == LATENCY_METRIC

    def test_empty_fleet_doc_and_table_render(self):
        empty = FleetReport(seed=3)
        doc = empty.to_doc()
        assert doc["fleet"]["devices"] == 0
        assert doc["fleet"]["utterances"] == 0
        json.dumps(doc)
        assert "relay success" in empty.table()


class TestCyclesToMsRegression:
    """Regression: cycle→ms rendering hardcoded the 2 GHz default."""

    def test_helper_matches_default(self):
        assert cycles_to_ms(2.0e9) == 1000.0
        assert cycles_to_ms(1.0e9, freq_hz=1.0e9) == 1000.0

    def test_helper_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_ms(1.0, freq_hz=0.0)

    def test_clock_method_uses_configured_frequency(self):
        clock = SimClock(freq_hz=1.0e9)
        assert clock.cycles_to_ms(5.0e8) == 500.0

    def test_report_carries_frequency_and_table_uses_it(self, sequential):
        device = sequential.devices[0]
        assert device.freq_hz == DEFAULT_FREQ_HZ
        expected = f"{cycles_to_ms(device.latency_hist.p50, device.freq_hz):>7.2f}"
        assert expected in sequential.table()


class TestWatchdogSentinelAcrossShards:
    """A stalled dark device in shard 2 of 2 still flags after merge."""

    def test_no_spans_sentinel_survives_pickled_shard_merge(self, provisioned):
        fleet = run_fleet(devices=4, seed=13, utterances=1,
                          bundle=provisioned.bundle, shards=2,
                          observability=False)
        # Shard workers ship DeviceReports back pickled; emulate one more
        # hop to prove the sentinel is in the document, not the process.
        devices = [pickle.loads(pickle.dumps(d)) for d in fleet.devices]
        late = devices[-1]  # lives in the second shard's partition
        assert late.heartbeats == {}
        alerts = late.stalled()
        assert [a.category for a in alerts] == ["(no spans)"]
        # And every dark device in the merged roster reports the same.
        for device in devices:
            assert [a.category for a in device.stalled()] == ["(no spans)"]


class TestSamplingAcrossShards:
    """Issue criteria: sampling changes telemetry volume, never decisions
    — and shard merges stay byte-identical with it on."""

    @pytest.fixture(scope="class")
    def sampled_pair(self, provisioned):
        kw = dict(devices=4, seed=7, utterances=2,
                  bundle=provisioned.bundle, sample_rate=2,
                  collect_traces=True)
        return (run_fleet(**kw), run_fleet(**kw, shards=2))

    def test_sampled_sharded_doc_byte_identical(self, sampled_pair):
        seq, sharded = sampled_pair
        assert fleet_doc(seq) == fleet_doc(sharded)
        # Trace spans and sampled latencies ride outside to_doc; the
        # pickled shard hop must preserve them bytewise too.
        for a, b in zip(seq.devices, sharded.devices):
            assert json.dumps(a.trace_spans, sort_keys=True) == \
                json.dumps(b.trace_spans, sort_keys=True)
            assert a.latencies == b.latencies

    def test_sampled_sharded_ring_and_burn_rates_identical(self, sampled_pair):
        from repro.obs.health import default_slo_rules, evaluate_burn_rates

        seq, sharded = sampled_pair
        ring = lambda rep: json.dumps(
            [s.to_doc() for s in rep.merged_registry().snapshots],
            sort_keys=True,
        )
        assert ring(seq) == ring(sharded)
        burns = lambda rep: json.dumps(
            [b.to_doc() for b in evaluate_burn_rates(
                rep.merged_registry(), default_slo_rules(),
                window_hours=0.25,
            )],
            sort_keys=True,
        )
        assert burns(seq) == burns(sharded)

    def test_sampling_preserves_decisions(self, sequential, sampled_pair):
        sampled, _ = sampled_pair
        keys = ("device", "utterances", "accuracy", "forwarded", "sent",
                "queued", "relay_attempts", "retries", "degraded")
        decisions = lambda rep: json.dumps(
            [{k: d.to_doc()[k] for k in keys} for d in rep.devices],
            sort_keys=True,
        )
        assert decisions(sampled) == decisions(sequential)

    def test_sampled_report_ships_fewer_latencies(self, sequential,
                                                  sampled_pair):
        # Exact per-cycle values differ from the untraced `sequential`
        # run (trace ids ride the wire, so crypto/NIC cycles shift);
        # the volume contract is what sampling owns.
        sampled, _ = sampled_pair
        for full, thin in zip(sequential.devices, sampled.devices):
            assert thin.sample_rate == 2
            n = full.summary["utterances"]
            assert len(thin.latencies) == (n + 1) // 2
            # Weighted histogram still covers every utterance.
            assert thin.latency_hist.count >= n

    def test_auto_rate_resolves_per_device_profile(self, provisioned):
        from repro.obs.fleet import AUTO_SAMPLE_RATES

        fleet = run_fleet(devices=4, seed=7, utterances=2,
                          bundle=provisioned.bundle, sample_rate="auto")
        for device in fleet.devices:
            assert device.sample_rate == \
                AUTO_SAMPLE_RATES[device.spec.fault_profile]

    def test_bad_rate_rejected(self, provisioned):
        from repro.obs.fleet import resolve_sample_rate

        with pytest.raises(ValueError):
            resolve_sample_rate(0, "clean")
        with pytest.raises(ValueError):
            resolve_sample_rate("sometimes", "clean")
