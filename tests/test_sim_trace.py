"""Unit tests: trace log."""

import pytest

from repro.sim.trace import TraceLog


class TestEmit:
    def test_emit_and_len(self):
        log = TraceLog()
        log.emit(0, "tz.smc", "enter")
        log.emit(1, "tz.smc", "exit")
        assert len(log) == 2

    def test_event_fields(self):
        log = TraceLog()
        log.emit(42, "kernel.driver", "call", fn="probe")
        event = log.events()[0]
        assert event.timestamp == 42
        assert event.category == "kernel.driver"
        assert event.name == "call"
        assert event.data == {"fn": "probe"}


class TestFiltering:
    def _populated(self) -> TraceLog:
        log = TraceLog()
        log.emit(0, "tz.smc", "enter")
        log.emit(1, "tz.fault", "violation")
        log.emit(2, "tz.smc", "exit")
        log.emit(3, "optee.ta.echo", "cmd")
        return log

    def test_prefix_filter(self):
        log = self._populated()
        assert len(log.events("tz")) == 3
        assert len(log.events("tz.smc")) == 2
        assert len(log.events("optee")) == 1

    def test_prefix_does_not_match_substring(self):
        log = TraceLog()
        log.emit(0, "tzx.other", "e")
        assert log.events("tz") == []

    def test_count(self):
        assert self._populated().count("tz.smc") == 2

    def test_last(self):
        log = self._populated()
        assert log.last("tz.smc").name == "exit"
        assert log.last("nothing") is None


class TestCapacity:
    def test_capacity_drops_oldest(self):
        log = TraceLog(capacity=10)
        for i in range(15):
            log.emit(i, "c", f"e{i}")
        assert len(log) <= 10
        assert log.dropped_events >= 5
        names = [e.name for e in log]
        assert "e14" in names  # newest retained
        assert "e0" not in names  # oldest dropped

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    @pytest.mark.parametrize("capacity", [1, 2, 3, 7, 10])
    def test_bound_holds_for_every_capacity(self, capacity):
        # capacity=1 is the regression case: capacity // 2 == 0 used to
        # evict nothing, so the log grew without bound.
        log = TraceLog(capacity=capacity)
        for i in range(25):
            log.emit(i, "c", f"e{i}")
            assert len(log) <= capacity
        assert log.last("c").name == "e24"  # newest always retained
        assert log.dropped_events == 25 - len(log)  # nothing lost silently

    def test_capacity_one_keeps_latest(self):
        log = TraceLog(capacity=1)
        for i in range(5):
            log.emit(i, "c", f"e{i}")
            assert [e.name for e in log] == [f"e{i}"]
        assert log.dropped_events == 4


class TestEnableDisable:
    def test_disable_stops_recording(self):
        log = TraceLog()
        log.emit(0, "a", "kept")
        log.disable()
        log.emit(1, "a", "dropped")
        log.enable()
        log.emit(2, "a", "kept2")
        assert [e.name for e in log] == ["kept", "kept2"]

    def test_clear(self):
        log = TraceLog()
        log.emit(0, "a", "x")
        log.clear()
        assert len(log) == 0
        assert log.dropped_events == 0
