"""Unit tests: the static/dynamic dead-TCB cross-check."""

import pathlib

from repro.analysis.deadtcb import (
    DeadTcbReport,
    compute_dead_tcb,
    static_reachability,
)
from repro.analysis.modgraph import load_project
from repro.analysis.worlds import DEFAULT_WORLD_MAP
from repro.drivers.i2s_driver import I2sDriver
from repro.tcb.report import render_dead_tcb

REPO_PACKAGE = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def _project():
    return load_project(REPO_PACKAGE)


class TestStaticReachability:
    def test_roots_are_ta_entry_points(self):
        reach = static_reachability(_project(), DEFAULT_WORLD_MAP)
        assert any("AudioFilterTa.on_invoke" in e for e in reach.entry_points)

    def test_pta_dispatch_edge_reaches_driver_read(self):
        # TA -> invoke_pta -> SecureAudioPta.on_invoke -> driver.read_chunk
        reach = static_reachability(_project(), DEFAULT_WORLD_MAP)
        assert "read_chunk" in reach.called_names


class TestDeadTcb:
    def test_empty_dynamic_set_makes_everything_dead(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver, frozenset()
        )
        assert report.static_reachable
        assert set(report.dead) == set(report.static_reachable)
        assert report.dead_loc == report.static_loc > 0

    def test_fully_traced_driver_has_no_dead_tcb(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver,
            frozenset(I2sDriver.functions()),
        )
        assert report.dead == ()

    def test_dynamic_hit_restricted_to_driver_functions(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver,
            frozenset({"read_chunk", "not_a_driver_fn"}),
        )
        assert "not_a_driver_fn" not in report.dynamic_hit

    def test_to_doc_round_trips_counts(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver, frozenset({"read_chunk"})
        )
        doc = report.to_doc()
        assert doc["driver"] == I2sDriver.NAME
        assert len(doc["dead"]) == len(report.dead)
        assert doc["dead_loc"] == report.dead_loc


class TestRenderDeadTcb:
    def test_markdown_sections(self):
        report = DeadTcbReport(
            driver="i2s",
            entry_points=("m:Ta.on_invoke",),
            loc={"a": 10, "b": 20, "c": 5},
            static_reachable=frozenset({"a", "b"}),
            dynamic_hit=frozenset({"b", "c"}),
        )
        text = render_dead_tcb(report)
        assert "Dead-TCB cross-check" in text
        assert "`a` (10 LoC)" in text          # dead
        assert "static blind spots" in text    # c traced but unreachable
        assert "`c`" in text

    def test_no_dead_renders_placeholder(self):
        report = DeadTcbReport(
            driver="i2s",
            entry_points=(),
            loc={"a": 10},
            static_reachable=frozenset({"a"}),
            dynamic_hit=frozenset({"a"}),
        )
        assert "every reachable function is exercised" in (
            render_dead_tcb(report)
        )
