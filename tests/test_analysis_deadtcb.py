"""Unit tests: the static/dynamic dead-TCB cross-check and the T001 gate."""

import json
import pathlib
import shutil

import pytest

from repro.analysis.deadtcb import (
    DeadTcbReport,
    check_dead_tcb,
    compute_dead_tcb,
    compute_dead_tcb_static,
    driver_statics,
    static_reachability,
)
from repro.analysis.modgraph import load_project
from repro.analysis.worlds import DEFAULT_WORLD_MAP
from repro.drivers.camera_driver import CameraDriver
from repro.drivers.i2s_driver import I2sDriver
from repro.drivers.usb_audio_driver import UsbAudioDriver
from repro.tcb.report import render_dead_tcb, render_dead_tcb_delta

REPO_PACKAGE = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def _project():
    return load_project(REPO_PACKAGE)


class TestStaticReachability:
    def test_roots_are_ta_entry_points(self):
        reach = static_reachability(_project(), DEFAULT_WORLD_MAP)
        assert any("AudioFilterTa.on_invoke" in e for e in reach.entry_points)

    def test_pta_dispatch_edge_reaches_driver_read(self):
        # TA -> invoke_pta -> SecureAudioPta.on_invoke -> driver.read_chunk
        reach = static_reachability(_project(), DEFAULT_WORLD_MAP)
        assert "read_chunk" in reach.called_names


class TestDeadTcb:
    def test_empty_dynamic_set_makes_everything_dead(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver, frozenset()
        )
        assert report.static_reachable
        assert set(report.dead) == set(report.static_reachable)
        assert report.dead_loc == report.static_loc > 0

    def test_fully_traced_driver_has_no_dead_tcb(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver,
            frozenset(I2sDriver.functions()),
        )
        assert report.dead == ()

    def test_dynamic_hit_restricted_to_driver_functions(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver,
            frozenset({"read_chunk", "not_a_driver_fn"}),
        )
        assert "not_a_driver_fn" not in report.dynamic_hit

    def test_to_doc_round_trips_counts(self):
        report = compute_dead_tcb(
            _project(), DEFAULT_WORLD_MAP, I2sDriver, frozenset({"read_chunk"})
        )
        doc = report.to_doc()
        assert doc["driver"] == I2sDriver.NAME
        assert len(doc["dead"]) == len(report.dead)
        assert doc["dead_loc"] == report.dead_loc


class TestRenderDeadTcb:
    def test_markdown_sections(self):
        report = DeadTcbReport(
            driver="i2s",
            entry_points=("m:Ta.on_invoke",),
            loc={"a": 10, "b": 20, "c": 5},
            static_reachable=frozenset({"a", "b"}),
            dynamic_hit=frozenset({"b", "c"}),
        )
        text = render_dead_tcb(report)
        assert "Dead-TCB cross-check" in text
        assert "`a` (10 LoC)" in text          # dead
        assert "static blind spots" in text    # c traced but unreachable
        assert "`c`" in text

    def test_no_dead_renders_placeholder(self):
        report = DeadTcbReport(
            driver="i2s",
            entry_points=(),
            loc={"a": 10},
            static_reachable=frozenset({"a"}),
            dynamic_hit=frozenset({"a"}),
        )
        assert "every reachable function is exercised" in (
            render_dead_tcb(report)
        )


class TestDriverStatics:
    """Parse-only driver extraction must mirror the runtime table exactly."""

    @pytest.mark.parametrize(
        "driver", [I2sDriver, UsbAudioDriver, CameraDriver],
        ids=lambda d: d.NAME,
    )
    def test_decorator_literals_match_runtime_functions(self, driver):
        statics = driver_statics(_project())[driver.NAME]
        runtime = {name: info.loc for name, info in driver.functions().items()}
        assert dict(statics.loc) == runtime

    def test_all_three_instrumented_drivers_found(self):
        assert set(driver_statics(_project())) >= {
            I2sDriver.NAME, UsbAudioDriver.NAME, CameraDriver.NAME,
        }

    def test_static_variant_agrees_with_runtime_variant(self):
        project = _project()
        statics = driver_statics(project)[I2sDriver.NAME]
        hit = frozenset({"probe", "read_chunk"})
        runtime_rep = compute_dead_tcb(
            project, DEFAULT_WORLD_MAP, I2sDriver, hit)
        static_rep = compute_dead_tcb_static(
            project, DEFAULT_WORLD_MAP, statics, hit)
        assert static_rep.dead == runtime_rep.dead
        assert static_rep.dead_loc == runtime_rep.dead_loc
        assert static_rep.static_reachable == runtime_rep.static_reachable


class TestDeadTcbGate:
    """T001 — regressions against the committed per-driver baseline."""

    @pytest.fixture()
    def repo_copy(self, tmp_path):
        dest = tmp_path / "repro"
        shutil.copytree(REPO_PACKAGE, dest)
        return dest

    def _baseline(self, root):
        return root / "analysis" / "deadtcb_baseline.json"

    def test_committed_baseline_is_clean(self):
        findings = check_dead_tcb(_project(), DEFAULT_WORLD_MAP)
        assert findings == []

    def test_missing_baseline_file_skips_pass(self, repo_copy):
        self._baseline(repo_copy).unlink()
        findings = check_dead_tcb(load_project(repo_copy), DEFAULT_WORLD_MAP)
        assert findings == []

    def test_untraced_reachable_function_regresses(self, repo_copy):
        # Drop a statically-reachable camera function from the committed
        # trace set: it becomes dead TCB that the baseline does not
        # accept, so both the per-function and the LoC-growth findings
        # must fire.
        path = self._baseline(repo_copy)
        doc = json.loads(path.read_text())
        entry = doc["drivers"][CameraDriver.NAME]
        assert "_sensor_detect" in entry["dynamic_hit"]
        entry["dynamic_hit"].remove("_sensor_detect")
        path.write_text(json.dumps(doc))
        findings = check_dead_tcb(load_project(repo_copy), DEFAULT_WORLD_MAP)
        fps = {f.fingerprint for f in findings}
        assert ("T001:repro.drivers.camera_driver:"
                f"deadtcb:{CameraDriver.NAME}:_sensor_detect") in fps
        assert ("T001:repro.drivers.camera_driver:"
                f"deadtcb:{CameraDriver.NAME}:loc") in fps
        assert all(f.severity == "error" for f in findings)

    def test_new_driver_without_baseline_entry_flagged(self, repo_copy):
        path = self._baseline(repo_copy)
        doc = json.loads(path.read_text())
        del doc["drivers"][UsbAudioDriver.NAME]
        path.write_text(json.dumps(doc))
        findings = check_dead_tcb(load_project(repo_copy), DEFAULT_WORLD_MAP)
        fps = {f.fingerprint for f in findings}
        assert ("T001:repro.drivers.usb_audio_driver:"
                f"deadtcb:{UsbAudioDriver.NAME}:missing") in fps

    def test_accepted_dead_set_does_not_fire(self, repo_copy):
        # The committed baseline already accepts the i2s dead set; the
        # gate only rejects *growth*, not the standing accepted debt.
        findings = check_dead_tcb(load_project(repo_copy), DEFAULT_WORLD_MAP)
        assert not [f for f in findings if I2sDriver.NAME in f.anchor]


class TestRenderDeadTcbDelta:
    def _report(self, dead, loc):
        return DeadTcbReport(
            driver="tegra-i2s",
            entry_points=(),
            loc=loc,
            static_reachable=frozenset(loc),
            dynamic_hit=frozenset(loc) - frozenset(dead),
        )

    def test_regression_rows_rendered(self):
        report = self._report({"a", "b"}, {"a": 10, "b": 20, "c": 5})
        text = render_dead_tcb_delta(report, {"dead": ["a"], "dead_loc": 10})
        assert "REGRESSION `b` (20 LoC)" in text
        assert "**30** now vs **10** at baseline (+20)" in text

    def test_fixed_entries_suggest_regeneration(self):
        report = self._report(set(), {"a": 10})
        text = render_dead_tcb_delta(report, {"dead": ["a"], "dead_loc": 10})
        assert "fixed `a`" in text

    def test_no_drift_placeholder(self):
        report = self._report({"a"}, {"a": 10})
        text = render_dead_tcb_delta(report, {"dead": ["a"], "dead_loc": 10})
        assert "no drift" in text
