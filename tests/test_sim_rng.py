"""Unit tests: seeded forkable RNG."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim.rng import SimRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SimRng(1)
        b = SimRng(1)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = SimRng(1)
        b = SimRng(2)
        assert [a.randint(0, 1_000_000) for _ in range(5)] != [
            b.randint(0, 1_000_000) for _ in range(5)
        ]


class TestForking:
    def test_fork_is_deterministic_by_name(self):
        a = SimRng(7).fork("driver")
        b = SimRng(7).fork("driver")
        assert a.bytes(16) == b.bytes(16)

    def test_fork_names_independent(self):
        root = SimRng(7)
        a = root.fork("a")
        b = root.fork("b")
        assert a.bytes(16) != b.bytes(16)

    def test_fork_order_does_not_matter(self):
        r1 = SimRng(7)
        r1.fork("x")
        late = r1.fork("target")
        early = SimRng(7).fork("target")
        assert late.bytes(8) == early.bytes(8)

    def test_nested_forks(self):
        a = SimRng(7).fork("a").fork("b")
        b = SimRng(7).fork("a").fork("b")
        assert a.random() == b.random()


class TestHelpers:
    def test_randint_range(self):
        rng = SimRng(3)
        values = [rng.randint(5, 10) for _ in range(200)]
        assert all(5 <= v < 10 for v in values)
        assert set(values) == {5, 6, 7, 8, 9}

    def test_random_range(self):
        rng = SimRng(3)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_choice_members(self):
        rng = SimRng(3)
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(50))

    def test_choice_weighted(self):
        rng = SimRng(3)
        picks = [rng.choice(["x", "y"], p=[1.0, 0.0]) for _ in range(20)]
        assert picks == ["x"] * 20

    def test_shuffle_is_permutation(self):
        rng = SimRng(3)
        seq = list(range(50))
        shuffled = list(seq)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == seq
        assert shuffled != seq  # astronomically unlikely to be identity

    def test_bytes_length(self):
        assert len(SimRng(1).bytes(33)) == 33

    def test_normal_shape(self):
        out = SimRng(1).normal(0, 1, size=(3, 4))
        assert np.asarray(out).shape == (3, 4)


class TestCompat:
    def test_compat_matches_default_rng_exactly(self):
        # The migration shim must reproduce np.random.default_rng(seed)
        # byte-for-byte so routed call sites change no downstream output.
        theirs = np.random.default_rng(7)
        ours = SimRng.compat(7, "legacy/site").generator
        assert theirs.random(32).tolist() == ours.random(32).tolist()
        assert theirs.integers(0, 10**6, 32).tolist() == (
            ours.integers(0, 10**6, 32).tolist()
        )
        assert theirs.normal(size=16).tolist() == (
            ours.normal(size=16).tolist()
        )

    def test_compat_name_is_audit_only(self):
        a = SimRng.compat(7, "a").generator.random(8).tolist()
        b = SimRng.compat(7, "b").generator.random(8).tolist()
        assert a == b  # stream depends on the seed alone

    def test_compat_differs_from_named_fork(self):
        compat = SimRng.compat(7, "x").generator.random(8).tolist()
        fork = SimRng(7, "x").generator.random(8).tolist()
        assert compat != fork

    def test_compat_keeps_helper_api(self):
        rng = SimRng.compat(5, "legacy")
        assert rng.seed == 5
        assert 0 <= rng.randint(0, 10) < 10


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_property_fork_reproducible(seed, name):
    assert SimRng(seed).fork(name).bytes(8) == SimRng(seed).fork(name).bytes(8)


@given(st.integers(min_value=0, max_value=2**31))
def test_property_compat_parity(seed):
    assert np.random.default_rng(seed).random(4).tolist() == (
        SimRng.compat(seed, "p").generator.random(4).tolist()
    )
