"""Integration tests: the secure camera pipeline (research plan item 6)."""

import numpy as np
import pytest

from repro.core.camera_pipeline import (
    SecureCameraPipeline,
    train_person_detector,
)
from repro.core.platform import IotPlatform
from repro.errors import SecureAccessViolation
from repro.peripherals.camera import SyntheticScene
from repro.sim.rng import SimRng
from repro.tz.worlds import World


@pytest.fixture(scope="module")
def detector():
    return train_person_detector(seed=3, frames_per_class=60, epochs=8)


@pytest.fixture
def camera_platform():
    platform = IotPlatform.create(seed=61)
    return platform


class TestGuardDecisions:
    def test_person_frames_blocked(self, detector):
        platform = IotPlatform.create(seed=62)
        platform.camera.scene = SyntheticScene(
            SimRng(1, "p"), person_probability=1.0
        )
        pipeline = SecureCameraPipeline(platform, detector)
        result = pipeline.run(10)
        assert result.blocked >= 9  # near-perfect detector

    def test_empty_frames_released(self, detector):
        platform = IotPlatform.create(seed=63)
        platform.camera.scene = SyntheticScene(
            SimRng(2, "e"), person_probability=0.0
        )
        pipeline = SecureCameraPipeline(platform, detector)
        result = pipeline.run(10)
        assert result.released >= 9

    def test_mixed_stream_accuracy(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        result = pipeline.run(20)
        assert result.accuracy() > 0.85
        assert result.released + result.blocked == 20

    def test_ta_stats_match(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        result = pipeline.run(8)
        stats = pipeline.stats()
        assert stats["blocked"] == result.blocked
        assert stats["released"] == result.released

    def test_released_payload_is_digest_not_pixels(self, detector,
                                                   camera_platform):
        from repro.core.camera_pipeline import CMD_GRAB_AND_GUARD

        pipeline = SecureCameraPipeline(camera_platform, detector)
        for _ in range(10):
            verdict = pipeline.session.invoke(CMD_GRAB_AND_GUARD)
            if verdict["released"]:
                assert set(verdict) == {"released", "probability",
                                        "brightness"}
                return
        pytest.fail("no frame released in 10 tries")

    def test_threshold_changes_behaviour(self, detector, camera_platform):
        paranoid = SecureCameraPipeline(
            camera_platform, detector, threshold=0.01
        )
        result = paranoid.run(10)
        assert result.blocked == 10  # blocks virtually everything


class TestCameraIsolation:
    def test_frame_buffer_is_secure(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        pipeline.run(1)
        driver = pipeline.pta.driver
        assert driver is not None and driver._buf_addr is not None
        with pytest.raises(SecureAccessViolation):
            camera_platform.machine.memory.read(
                driver._buf_addr, camera_platform.camera.frame_bytes,
                World.NORMAL,
            )

    def test_latency_and_switches_accounted(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        switches_before = camera_platform.machine.cpu.switch_count
        result = pipeline.run(4)
        assert all(f.latency_cycles > 0 for f in result.frames)
        assert camera_platform.machine.cpu.switch_count - switches_before >= 8

    def test_close(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        pipeline.run(1)
        pipeline.close()
        assert pipeline.session.closed


class TestDetectorTraining:
    def test_detector_quality(self, detector):
        from repro.peripherals.camera import Camera

        scene = SyntheticScene(SimRng(9, "eval"), person_probability=1.0)
        cam = Camera(scene)
        frames = np.stack([cam.capture_frame() for _ in range(20)])
        assert detector.predict(frames).mean() > 0.9


class TestBlockMode:
    """Block-mode capture: same verdicts, far fewer world switches."""

    def test_block_verdicts_match_per_frame(self, detector):
        per_frame = SecureCameraPipeline(
            IotPlatform.create(seed=71), detector
        ).run(12)
        block = SecureCameraPipeline(
            IotPlatform.create(seed=71), detector
        ).run_block(12, block=4)
        assert [f.released for f in block.frames] == \
            [f.released for f in per_frame.frames]
        assert [f.probability for f in block.frames] == pytest.approx(
            [f.probability for f in per_frame.frames]
        )

    def test_block_mode_reduces_world_switches(self, detector):
        platform_f = IotPlatform.create(seed=72)
        pipe_f = SecureCameraPipeline(platform_f, detector)
        before = platform_f.machine.cpu.switch_count
        pipe_f.run(8)
        per_frame_switches = platform_f.machine.cpu.switch_count - before

        platform_b = IotPlatform.create(seed=72)
        pipe_b = SecureCameraPipeline(platform_b, detector)
        before = platform_b.machine.cpu.switch_count
        pipe_b.run_block(8, block=8)
        block_switches = platform_b.machine.cpu.switch_count - before
        assert block_switches < per_frame_switches / 2

    def test_block_mode_counts_in_ta_stats(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        result = pipeline.run_block(10, block=4)
        stats = pipeline.stats()
        assert stats["blocked"] == result.blocked
        assert stats["released"] == result.released

    def test_partial_final_block(self, detector, camera_platform):
        pipeline = SecureCameraPipeline(camera_platform, detector)
        result = pipeline.run_block(5, block=4)  # 4 + 1
        assert len(result.frames) == 5
