"""Unit tests: layers — shapes, semantics, and numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml.layers import (
    Conv1d,
    Dense,
    Dropout,
    Embedding,
    GlobalMaxPool,
    GlobalMeanPool,
    LayerNorm,
    Relu,
    softmax,
)


def numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_input_grad(layer, x, tol=2e-2):
    """Backprop grad vs numeric grad of sum(forward(x))."""
    out = layer.forward(x)
    analytic = layer.backward(np.ones_like(out))
    numeric = numeric_grad(lambda: float(layer.forward(x).sum()), x)
    assert np.allclose(analytic, numeric, atol=tol), (
        f"max err {np.abs(analytic - numeric).max()}"
    )


def check_param_grad(layer, x, param, tol=2e-2):
    out = layer.forward(x)
    param.zero_grad()
    layer.backward(np.ones_like(out))
    analytic = param.grad.copy()
    numeric = numeric_grad(lambda: float(layer.forward(x).sum()), param.value)
    assert np.allclose(analytic, numeric, atol=tol), (
        f"max err {np.abs(analytic - numeric).max()}"
    )


RNG = np.random.default_rng(0)


class TestDense:
    def test_shape(self):
        layer = Dense(4, 3, RNG)
        assert layer.forward(np.ones((2, 4), dtype=np.float32)).shape == (2, 3)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            Dense(4, 3, RNG).forward(np.ones((2, 5), dtype=np.float32))

    def test_input_gradient(self):
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        check_input_grad(Dense(4, 3, RNG), x)

    def test_weight_gradient(self):
        layer = Dense(4, 3, RNG)
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        check_param_grad(layer, x, layer.w)

    def test_bias_gradient(self):
        layer = Dense(4, 3, RNG)
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        check_param_grad(layer, x, layer.b)

    def test_3d_input(self):
        layer = Dense(4, 3, RNG)
        out = layer.forward(RNG.standard_normal((2, 5, 4)).astype(np.float32))
        assert out.shape == (2, 5, 3)

    def test_macs(self):
        assert Dense(4, 3, RNG).macs(10) == 120


class TestRelu:
    def test_semantics(self):
        layer = Relu()
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        assert list(layer.forward(x)[0]) == [0.0, 0.0, 2.0]

    def test_gradient_mask(self):
        layer = Relu()
        x = np.array([[-1.0, 3.0]], dtype=np.float32)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 2), dtype=np.float32))
        assert list(grad[0]) == [0.0, 1.0]


class TestEmbedding:
    def test_lookup(self):
        layer = Embedding(10, 4, RNG)
        ids = np.array([[1, 2], [3, 3]], dtype=np.int32)
        out = layer.forward(ids)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out[1, 0], out[1, 1])

    def test_out_of_range(self):
        layer = Embedding(10, 4, RNG)
        with pytest.raises(ShapeError):
            layer.forward(np.array([[10]], dtype=np.int32))

    def test_gradient_accumulates_per_id(self):
        layer = Embedding(5, 3, RNG)
        ids = np.array([[1, 1, 2]], dtype=np.int32)
        out = layer.forward(ids)
        layer.table.zero_grad()
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.table.grad[1], 2.0)  # used twice
        assert np.allclose(layer.table.grad[2], 1.0)
        assert np.allclose(layer.table.grad[0], 0.0)

    def test_macs_zero(self):
        assert Embedding(5, 3, RNG).macs(1, 10) == 0


class TestConv1d:
    def test_same_length_output(self):
        layer = Conv1d(4, 6, 3, RNG)
        out = layer.forward(RNG.standard_normal((2, 9, 4)).astype(np.float32))
        assert out.shape == (2, 9, 6)

    def test_even_width_rejected(self):
        with pytest.raises(ShapeError):
            Conv1d(4, 6, 2, RNG)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            Conv1d(4, 6, 3, RNG).forward(
                np.ones((1, 5, 3), dtype=np.float32)
            )

    def test_input_gradient(self):
        x = RNG.standard_normal((2, 6, 3)).astype(np.float32)
        check_input_grad(Conv1d(3, 4, 3, RNG), x)

    def test_weight_gradient(self):
        layer = Conv1d(3, 4, 3, RNG)
        x = RNG.standard_normal((2, 6, 3)).astype(np.float32)
        check_param_grad(layer, x, layer.w)

    def test_bias_gradient(self):
        layer = Conv1d(3, 4, 3, RNG)
        x = RNG.standard_normal((2, 6, 3)).astype(np.float32)
        check_param_grad(layer, x, layer.b)

    def test_identity_kernel(self):
        """A kernel with a single centered 1 reproduces the input channel."""
        layer = Conv1d(1, 1, 3, RNG)
        layer.w.value[...] = 0
        layer.w.value[1, 0, 0] = 1.0
        layer.b.value[...] = 0
        x = RNG.standard_normal((1, 7, 1)).astype(np.float32)
        assert np.allclose(layer.forward(x), x, atol=1e-6)

    def test_macs(self):
        assert Conv1d(3, 4, 5, RNG).macs(10) == 10 * 5 * 3 * 4


class TestPools:
    def test_max_pool_value(self):
        pool = GlobalMaxPool()
        x = np.array([[[1.0, -5.0], [3.0, -1.0], [2.0, -9.0]]], dtype=np.float32)
        assert list(pool.forward(x)[0]) == [3.0, -1.0]

    def test_max_pool_gradient_routes_to_argmax(self):
        pool = GlobalMaxPool()
        x = np.array([[[1.0], [3.0], [2.0]]], dtype=np.float32)
        pool.forward(x)
        grad = pool.backward(np.array([[5.0]], dtype=np.float32))
        assert grad[0, 1, 0] == 5.0
        assert grad.sum() == 5.0

    def test_mean_pool_gradient_uniform(self):
        pool = GlobalMeanPool()
        x = RNG.standard_normal((1, 4, 2)).astype(np.float32)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 2), dtype=np.float32))
        assert np.allclose(grad, 0.25)

    def test_mean_pool_input_gradient(self):
        x = RNG.standard_normal((2, 4, 3)).astype(np.float32)
        check_input_grad(GlobalMeanPool(), x)


class TestLayerNorm:
    def test_normalizes(self):
        layer = LayerNorm(8)
        x = RNG.standard_normal((4, 8)).astype(np.float32) * 10 + 3
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1, atol=1e-2)

    def test_input_gradient(self):
        x = RNG.standard_normal((3, 6)).astype(np.float32)
        check_input_grad(LayerNorm(6), x, tol=5e-2)

    def test_gamma_beta_gradients(self):
        layer = LayerNorm(6)
        x = RNG.standard_normal((3, 6)).astype(np.float32)
        check_param_grad(layer, x, layer.gamma, tol=5e-2)
        layer2 = LayerNorm(6)
        check_param_grad(layer2, x, layer2.beta, tol=5e-2)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, RNG)
        layer.training = False
        x = RNG.standard_normal((4, 4)).astype(np.float32)
        assert np.array_equal(layer.forward(x), x)

    def test_training_zeroes_and_scales(self):
        layer = Dropout(0.5, np.random.default_rng(1))
        x = np.ones((100, 100), dtype=np.float32)
        out = layer.forward(x)
        zero_rate = float((out == 0).mean())
        assert 0.4 < zero_rate < 0.6
        # Survivors are scaled by 1/keep.
        assert np.allclose(out[out != 0], 2.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, np.random.default_rng(1))
        x = np.ones((10, 10), dtype=np.float32)
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)

    def test_bad_rate(self):
        with pytest.raises(ShapeError):
            Dropout(1.0, RNG)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(RNG.standard_normal((5, 7)).astype(np.float32))
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)

    def test_numerical_stability(self):
        out = softmax(np.array([[1e4, 0.0]], dtype=np.float32))
        assert np.isfinite(out).all()

    def test_invariant_to_shift(self):
        x = RNG.standard_normal((2, 4)).astype(np.float32)
        assert np.allclose(softmax(x), softmax(x + 100), atol=1e-5)
