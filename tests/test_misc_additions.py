"""Tests: per-category leak analysis, trace export, model-store properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.auditor import LeakAuditor
from repro.ml.dataset import SensitiveCategory, Utterance
from repro.sim.trace import TraceLog


class TestCategoryBreakdown:
    def test_per_category_attribution(self):
        truth = [
            Utterance("the password is four two", SensitiveCategory.CREDENTIALS),
            Utterance("my asthma is getting worse", SensitiveCategory.HEALTH),
            Utterance("play some jazz", SensitiveCategory.MUSIC),
        ]
        auditor = LeakAuditor(truth)
        breakdown = auditor.report_by_category(
            ["the password is four two", "play some jazz"]
        )
        assert breakdown["credentials"] == {"total": 1, "reached_cloud": 1}
        assert breakdown["health"] == {"total": 1, "reached_cloud": 0}
        assert breakdown["music"] == {"total": 1, "reached_cloud": 1}

    def test_totals_match_flat_report(self):
        truth = [
            Utterance("the password is four two", SensitiveCategory.CREDENTIALS),
            Utterance("play some jazz", SensitiveCategory.MUSIC),
        ]
        auditor = LeakAuditor(truth)
        transcripts = ["the password is four two"]
        flat = auditor.report(transcripts)
        breakdown = auditor.report_by_category(transcripts)
        leaked = sum(
            b["reached_cloud"]
            for cat, b in breakdown.items()
            if SensitiveCategory(cat).sensitive
        )
        assert leaked == flat.sensitive_leaked_cloud


class TestTraceExport:
    def test_round_trip(self):
        log = TraceLog()
        log.emit(1, "tz.smc", "enter", func="CALL_WITH_ARG")
        log.emit(2, "optee.os", "boot")
        text = log.to_jsonl()
        events = TraceLog.from_jsonl(text)
        assert len(events) == 2
        assert events[0].category == "tz.smc"
        assert events[0].data == {"func": "CALL_WITH_ARG"}

    def test_filtered_export(self):
        log = TraceLog()
        log.emit(1, "tz.smc", "enter")
        log.emit(2, "kernel.driver", "call")
        text = log.to_jsonl("tz")
        assert "tz.smc" in text and "kernel" not in text

    def test_empty_log(self):
        assert TraceLog().to_jsonl() == ""
        assert TraceLog.from_jsonl("") == []

    def test_non_json_data_coerced(self):
        log = TraceLog()
        log.emit(1, "c", "e", obj=object())
        events = TraceLog.from_jsonl(log.to_jsonl())
        assert isinstance(events[0].data["obj"], str)


class TestModelStoreProperties:
    @given(
        versions=st.lists(
            st.integers(min_value=1, max_value=50), min_size=1, max_size=10
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_property_installed_version_is_running_max(self, versions):
        """Whatever install order is attempted, the store's version is the
        max of the *accepted* installs, and acceptance is exactly
        'strictly greater than everything before'."""
        from repro.core.model_store import ModelStore, sign_package
        from repro.errors import TeeSecurityError
        from repro.optee.os import OpTeeOs
        from repro.optee.supplicant import TeeSupplicant
        from repro.tz.machine import TrustZoneMachine
        from repro.tz.worlds import World

        machine = TrustZoneMachine()
        tee = OpTeeOs(machine)
        tee.attach_supplicant(TeeSupplicant(machine))
        machine.cpu._set_world(World.SECURE)
        try:
            store = ModelStore(tee.storage, b"k" * 32)
            high = 0
            for version in versions:
                blob = sign_package("cnn", version, b"w" * 16, b"k" * 32)
                if version > high:
                    store.install(blob.to_bytes())
                    high = version
                else:
                    with pytest.raises(TeeSecurityError):
                        store.install(blob.to_bytes())
                assert store.installed_version() == high
        finally:
            machine.cpu._set_world(World.NORMAL)
