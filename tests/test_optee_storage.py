"""Unit tests: secure storage (seal/unseal, tamper detection)."""

import pytest

from repro.errors import AuthenticationFailure, TeeItemNotFound
from repro.optee.os import OpTeeOs
from repro.optee.supplicant import TeeSupplicant
from repro.tz.worlds import World


@pytest.fixture
def tee(machine):
    os_ = OpTeeOs(machine)
    os_.attach_supplicant(TeeSupplicant(machine))
    # Storage operations run secure-side (they are TA-initiated).
    machine.cpu._set_world(World.SECURE)
    yield os_
    machine.cpu._set_world(World.NORMAL)


class TestRoundTrip:
    def test_put_get(self, tee):
        tee.storage.put("model", b"weights-blob")
        assert tee.storage.get("model") == b"weights-blob"

    def test_overwrite(self, tee):
        tee.storage.put("k", b"v1")
        tee.storage.put("k", b"v2")
        assert tee.storage.get("k") == b"v2"

    def test_missing_object(self, tee):
        with pytest.raises(TeeItemNotFound):
            tee.storage.get("ghost")

    def test_exists_and_list(self, tee):
        assert not tee.storage.exists("a")
        tee.storage.put("a", b"1")
        tee.storage.put("b", b"2")
        assert tee.storage.exists("a")
        assert tee.storage.list() == ["a", "b"]

    def test_delete(self, tee):
        tee.storage.put("a", b"1")
        tee.storage.delete("a")
        assert not tee.storage.exists("a")
        tee.storage.delete("a")  # idempotent

    def test_empty_payload(self, tee):
        tee.storage.put("empty", b"")
        assert tee.storage.get("empty") == b""

    def test_large_payload(self, tee):
        blob = bytes(range(256)) * 512  # 128 KiB
        tee.storage.put("big", blob)
        assert tee.storage.get("big") == blob


class TestAtRestSecurity:
    def test_normal_world_sees_only_ciphertext(self, tee):
        secret = b"the wifi password is hunter2"
        tee.storage.put("note", secret)
        stored = tee.supplicant.fs.files["tee/objects/note"]
        assert secret not in stored
        # No long plaintext substring survives either.
        assert b"hunter2" not in stored

    def test_tamper_detected(self, tee):
        tee.storage.put("note", b"payload")
        path = "tee/objects/note"
        blob = bytearray(tee.supplicant.fs.files[path])
        blob[-1] ^= 0xFF
        tee.supplicant.fs.files[path] = bytes(blob)
        with pytest.raises(AuthenticationFailure):
            tee.storage.get("note")

    def test_blob_swap_detected(self, tee):
        """Name binding: moving blob A under name B must fail."""
        tee.storage.put("a", b"aaaa")
        tee.storage.put("b", b"bbbb")
        fs = tee.supplicant.fs.files
        fs["tee/objects/b"] = fs["tee/objects/a"]
        with pytest.raises(AuthenticationFailure):
            tee.storage.get("b")

    def test_distinct_nonces(self, tee):
        """Same plaintext twice must not produce identical ciphertext."""
        tee.storage.put("x", b"same")
        first = tee.supplicant.fs.files["tee/objects/x"]
        tee.storage.put("x", b"same")
        second = tee.supplicant.fs.files["tee/objects/x"]
        assert first != second
