"""Shared fixtures.

Training is the expensive part of the suite, so trained artifacts
(provisioned bundles) are session-scoped and shared; anything mutable
(machines, platforms, pipelines) is function-scoped and cheap to build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.platform import IotPlatform
from repro.ml.asr import MatchedFilterAsr, SpeechVocoder
from repro.ml.dataset import UtteranceGenerator
from repro.ml.tokenizer import WordTokenizer
from repro.provision import provision_bundle
from repro.sim.rng import SimRng
from repro.tz.machine import TrustZoneMachine


@pytest.fixture
def machine() -> TrustZoneMachine:
    """A fresh TrustZone machine."""
    return TrustZoneMachine()


@pytest.fixture
def platform() -> IotPlatform:
    """A fully wired device."""
    return IotPlatform.create(seed=123)


@pytest.fixture(scope="session")
def tokenizer() -> WordTokenizer:
    """Tokenizer fitted on the full template vocabulary."""
    return WordTokenizer(max_len=16).fit(UtteranceGenerator.all_template_texts())


@pytest.fixture(scope="session")
def vocoder(tokenizer) -> SpeechVocoder:
    """Vocoder covering the tokenizer vocabulary (minus pad/unk)."""
    return SpeechVocoder(tokenizer.words()[2:])


@pytest.fixture(scope="session")
def asr(vocoder) -> MatchedFilterAsr:
    """Reference matched-filter ASR."""
    return MatchedFilterAsr(vocoder)


@pytest.fixture(scope="session")
def provisioned():
    """A trained CNN filter bundle (shared: training costs seconds)."""
    return provision_bundle(
        seed=99, architecture="cnn", corpus_size=700, epochs=4
    )


@pytest.fixture(scope="session")
def provisioned_transformer():
    """A trained transformer bundle (shared)."""
    return provision_bundle(
        seed=99, architecture="transformer", corpus_size=700, epochs=4
    )


@pytest.fixture
def rng() -> SimRng:
    """A seeded RNG."""
    return SimRng(555)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """A seeded numpy generator for model construction."""
    return np.random.default_rng(555)
