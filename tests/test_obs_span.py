"""Unit tests: span tracing (nesting, attribution, export, capacity)."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.trace import TraceLog


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracer(clock):
    return SpanTracer(clock)


class TestNesting:
    def test_parent_child_links(self, clock, tracer):
        with tracer.span("outer", "pipeline") as outer:
            clock.advance(10, CycleDomain.SECURE_CPU)
            with tracer.span("inner", "stage") as inner:
                clock.advance(5, CycleDomain.SECURE_CPU)
        assert inner.parent_id == outer.id
        assert outer.parent_id is None
        assert inner.cycles == 5
        assert outer.cycles == 15

    def test_siblings_share_parent(self, clock, tracer):
        with tracer.span("outer", "pipeline") as outer:
            with tracer.span("a", "stage") as a:
                clock.advance(1, CycleDomain.SECURE_CPU)
            with tracer.span("b", "stage") as b:
                clock.advance(1, CycleDomain.SECURE_CPU)
        assert a.parent_id == b.parent_id == outer.id

    def test_exception_unwind_keeps_stack_consistent(self, clock, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer", "pipeline"):
                with tracer.span("inner", "stage"):
                    raise RuntimeError("boom")
        # A later span must parent at top level again, not under a ghost.
        with tracer.span("after", "stage") as after:
            pass
        assert after.parent_id is None


class TestAttribution:
    def test_domain_cycles_sum_to_span_cycles(self, clock, tracer):
        with tracer.span("work", "stage") as sp:
            clock.advance(100, CycleDomain.SECURE_CPU)
            clock.advance(40, CycleDomain.MONITOR)
            clock.advance(60, CycleDomain.PERIPHERAL)
        assert sp.cycles == 200
        assert sum(sp.domain_cycles.values()) == sp.cycles
        assert sp.domain_cycles[CycleDomain.MONITOR] == 40

    def test_zero_domains_are_omitted(self, clock, tracer):
        with tracer.span("work", "stage") as sp:
            clock.advance(10, CycleDomain.SECURE_CPU)
        assert CycleDomain.NORMAL_CPU not in sp.domain_cycles

    def test_attrs_kept(self, clock, tracer):
        with tracer.span("asr", "stage", samples=2400) as sp:
            pass
        assert sp.attrs == {"samples": 2400}

    def test_measures_while_retention_disabled(self, clock, tracer):
        # The TA's stage accounting reads span durations, so disabling
        # observability must not stop spans from measuring.
        tracer.enabled = False
        with tracer.span("work", "stage") as sp:
            clock.advance(10, CycleDomain.SECURE_CPU)
        assert sp.cycles == 10
        assert tracer.spans == []


class TestCapacity:
    @pytest.mark.parametrize("capacity", [1, 2, 3, 10])
    def test_bound_holds(self, clock, capacity):
        tracer = SpanTracer(clock, capacity=capacity)
        for i in range(25):
            with tracer.span(f"s{i}", "stage"):
                clock.advance(1, CycleDomain.SECURE_CPU)
            assert len(tracer.spans) <= capacity
        assert tracer.spans[-1].name == "s24"
        assert tracer.dropped_spans == 25 - len(tracer.spans)

    def test_zero_capacity_rejected(self, clock):
        with pytest.raises(ValueError):
            SpanTracer(clock, capacity=0)


class TestIntegrations:
    def test_feeds_metrics(self, clock):
        metrics = MetricsRegistry()
        tracer = SpanTracer(clock, metrics=metrics)
        for _ in range(3):
            with tracer.span("asr", "stage.secure"):
                clock.advance(100, CycleDomain.SECURE_CPU)
        assert metrics.counter("stage.secure.asr.count").value == 3
        hist = metrics.histogram("stage.secure.asr.cycles")
        assert hist.count == 3 and hist.p50 == 100

    def test_mirrors_into_trace_log(self, clock):
        log = TraceLog()
        tracer = SpanTracer(clock, trace=log)
        with tracer.span("asr", "stage.secure"):
            clock.advance(5, CycleDomain.SECURE_CPU)
        event = log.last("obs.span")
        assert event is not None
        assert event.name == "asr"
        assert event.data["span_category"] == "stage.secure"
        assert event.data["cycles"] == 5


class TestExport:
    def _run(self, clock, tracer):
        with tracer.span("utterance", "pipeline.secure", index=0):
            with tracer.span("asr", "stage.secure", samples=800):
                clock.advance(100, CycleDomain.SECURE_CPU)
            with tracer.span("relay", "stage.secure"):
                clock.advance(20, CycleDomain.MONITOR)
                clock.advance(30, CycleDomain.NORMAL_CPU)

    def test_jsonl_round_trip(self, clock, tracer):
        self._run(clock, tracer)
        restored = SpanTracer.from_jsonl(tracer.to_jsonl())
        assert [s.to_doc() for s in restored] == [
            s.to_doc() for s in tracer.spans
        ]
        # Domain keys survive the enum -> string -> enum trip.
        relay = next(s for s in restored if s.name == "relay")
        assert relay.domain_cycles == {
            CycleDomain.MONITOR: 20, CycleDomain.NORMAL_CPU: 30,
        }

    def test_category_filter(self, clock, tracer):
        self._run(clock, tracer)
        assert {s.name for s in tracer.spans_in("stage.secure")} == {
            "asr", "relay",
        }
        assert {s.name for s in tracer.spans_in("pipeline")} == {"utterance"}
        # Prefix must not match substrings ("stage.secured" != "stage.secure").
        assert tracer.spans_in("stage.sec") == []

    def test_chrome_trace_is_valid(self, clock, tracer):
        self._run(clock, tracer)
        doc = json.loads(tracer.to_chrome_trace())
        events = doc["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        asr = next(e for e in events if e["name"] == "asr")
        # ts/dur are microseconds at the simulated clock frequency.
        assert asr["dur"] == pytest.approx(100 * 1e6 / clock.freq_hz)
        assert asr["args"]["samples"] == 800
        assert doc["metadata"]["clock_freq_hz"] == clock.freq_hz
