"""Unit tests: the world-boundary static analyzer.

Covers every rule id against the seeded-violation fixture package
(``tests/fixtures/analysis/badpkg``), asserts the repo itself is clean
above the committed baseline, round-trips the baseline, and drives the
``repro analyze --fail-on-new`` CI gate against injected violations.
"""

import json
import pathlib
import shutil

import pytest

from repro.analysis.findings import AnalysisReport, Baseline
from repro.analysis.modgraph import load_project
from repro.analysis.runner import analyze_package, run_analysis
from repro.analysis.worlds import World, WorldMap
from repro.cli import main

FIXTURE_ROOT = pathlib.Path(__file__).parent / "fixtures" / "analysis" / "badpkg"
REPO_PACKAGE = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

FIXTURE_MAP = WorldMap(
    package="badpkg",
    exact={"badpkg": World.SHARED},
    prefixes={
        "badpkg.client": World.NORMAL,
        "badpkg.secure_mod": World.SECURE,
        "badpkg.ta_mod": World.SECURE,
        "badpkg.clock_mod": World.NORMAL,
        "badpkg.logging_mod": World.NORMAL,
        "badpkg.obs": World.SHARED,
        "badpkg.core": World.SECURE,
        # badpkg.mystery deliberately unmapped -> W000
    },
    obs_package="badpkg.obs",
    obs_restricted=("badpkg.core",),
    rng_exempt=("badpkg.sim",),
)


@pytest.fixture(scope="module")
def fixture_findings():
    return analyze_package(FIXTURE_ROOT, package="badpkg",
                           world_map=FIXTURE_MAP)


def _fingerprints(findings):
    return {f.fingerprint for f in findings}


class TestFixtureViolations:
    def test_w000_unmapped_module(self, fixture_findings):
        assert "W000:badpkg.mystery:unmapped" in _fingerprints(
            fixture_findings
        )

    def test_w001_secure_imports_normal(self, fixture_findings):
        assert "W001:badpkg.secure_mod:import:badpkg.client" in (
            _fingerprints(fixture_findings)
        )

    def test_w001_type_checking_import_exempt(self, fixture_findings):
        # secure_mod imports badpkg.client twice; only the runtime import
        # may be flagged, so exactly one W001 lands on that module.
        w001 = [f for f in fixture_findings
                if f.rule == "W001" and f.module == "badpkg.secure_mod"]
        assert len(w001) == 1

    def test_w002_rpc_sink(self, fixture_findings):
        assert "W002:badpkg.ta_mod:EvilTa.on_invoke:call:rpc" in (
            _fingerprints(fixture_findings)
        )

    def test_w002_tainted_entry_return(self, fixture_findings):
        assert "W002:badpkg.ta_mod:EvilTa.on_invoke:return" in (
            _fingerprints(fixture_findings)
        )

    def test_w002_declassified_flows_clean(self, fixture_findings):
        # GoodTa moves the same tainted buffer only through approved
        # declassification points: zero findings on it.
        assert not [f for f in fixture_findings
                    if f.rule == "W002" and "GoodTa" in f.anchor]

    def test_d001_ambient_rng_and_clock(self, fixture_findings):
        fps = _fingerprints(fixture_findings)
        assert "D001:badpkg.clock_mod:call:np.random.default_rng" in fps
        assert "D001:badpkg.clock_mod:call:time.time" in fps

    def test_s001_log_and_exception(self, fixture_findings):
        fps = _fingerprints(fixture_findings)
        assert "S001:badpkg.logging_mod:log:seal_key" in fps
        assert "S001:badpkg.logging_mod:exception:huk" in fps

    def test_s001_derived_length_clean(self, fixture_findings):
        # f"...{len(seal_key)}..." interpolates a length, not the key.
        s001_logs = [f for f in fixture_findings
                     if f.rule == "S001" and f.module == "badpkg.logging_mod"
                     and f.anchor.startswith("log:")]
        assert len(s001_logs) == 1

    def test_o001_runtime_obs_import(self, fixture_findings):
        o001 = [f for f in fixture_findings
                if f.rule == "O001" and f.module == "badpkg.core"]
        assert len(o001) == 1  # the TYPE_CHECKING import is exempt
        assert o001[0].anchor.startswith("import:badpkg.obs")

    def test_all_five_rule_ids_demonstrated(self, fixture_findings):
        assert {f.rule for f in fixture_findings} >= {
            "W001", "W002", "D001", "S001", "O001",
        }

    def test_findings_carry_location_and_severity(self, fixture_findings):
        for f in fixture_findings:
            assert f.path.endswith(".py")
            assert f.line >= 1
            assert f.severity in ("error", "warning")

    def test_analysis_is_deterministic(self, fixture_findings):
        again = analyze_package(FIXTURE_ROOT, package="badpkg",
                                world_map=FIXTURE_MAP)
        assert again == fixture_findings


class TestRepoClean:
    def test_repo_has_no_findings_above_baseline(self):
        report = run_analysis(REPO_PACKAGE)
        assert report.new_findings == [], (
            "new analyzer findings:\n" + report.render_text()
        )

    def test_committed_baseline_has_no_stale_entries(self):
        report = run_analysis(REPO_PACKAGE)
        assert report.stale == []

    def test_every_repo_module_is_mapped(self):
        report = run_analysis(REPO_PACKAGE, baseline_path=None)
        assert not [f for f in report.findings if f.rule == "W000"]


class TestBaselineRoundTrip:
    def test_suppress_rerun_silent(self, fixture_findings, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings(fixture_findings, reason="fixture").save(path)
        report = AnalysisReport(
            findings=analyze_package(FIXTURE_ROOT, package="badpkg",
                                     world_map=FIXTURE_MAP),
            baseline=Baseline.load(path),
        )
        assert report.new_findings == []
        assert len(report.suppressed) == len(fixture_findings)
        assert report.stale == []

    def test_stale_entries_reported(self, fixture_findings, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings(fixture_findings)
        baseline.entries["W001:badpkg.gone:import:badpkg.client"] = "gone"
        baseline.save(path)
        report = AnalysisReport(findings=list(fixture_findings),
                                baseline=Baseline.load(path))
        assert report.stale == ["W001:badpkg.gone:import:badpkg.client"]

    def test_baseline_fingerprints_survive_line_shifts(self, fixture_findings):
        # Fingerprints must not embed line numbers, or editing unrelated
        # code would churn the committed baseline.
        for f in fixture_findings:
            assert str(f.line) not in f.fingerprint.split(":")


# One injectable violation per rule id: (relative path, source, rule).
_INJECTIONS = [
    ("ml/evil_w001.py", "import repro.cloud\n", "W001"),
    (
        "ml/evil_w002.py",
        "CMD_READ = 2\n\n\n"
        "class EvilTa(TrustedApplication):  # noqa: F821\n"
        "    def on_invoke(self, ctx, cmd, params):\n"
        "        pcm = ctx.invoke_pta(self.uuid, CMD_READ, {})\n"
        "        return {'raw': pcm}\n",
        "W002",
    ),
    (
        "kernel/evil_d001.py",
        "import time\n\n\ndef now():\n    return time.time()\n",
        "D001",
    ),
    (
        "crypto/evil_s001.py",
        "def fail(seal_key):\n"
        "    raise ValueError(f'bad {seal_key}')\n",
        "S001",
    ),
    ("core/evil_o001.py", "import repro.obs\n", "O001"),
]


class TestFailOnNewGate:
    @pytest.fixture()
    def repo_copy(self, tmp_path):
        dest = tmp_path / "repro"
        shutil.copytree(REPO_PACKAGE, dest)
        return dest

    def test_clean_copy_exits_zero(self, repo_copy, capsys):
        assert main(["analyze", "--root", str(repo_copy),
                     "--fail-on-new"]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("relpath,source,rule",
                             _INJECTIONS, ids=[i[2] for i in _INJECTIONS])
    def test_single_injected_violation_fails(
        self, repo_copy, capsys, relpath, source, rule
    ):
        (repo_copy / relpath).write_text(source)
        assert main(["analyze", "--root", str(repo_copy), "--format", "json",
                     "--fail-on-new"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert rule in {f["rule"] for f in doc["new"]}


class TestWorldMap:
    def test_exact_beats_prefix(self):
        assert FIXTURE_MAP.world_of("badpkg") is World.SHARED

    def test_longest_prefix_wins(self):
        wmap = WorldMap(
            package="p",
            prefixes={"p.a": World.NORMAL, "p.a.b": World.SECURE},
        )
        assert wmap.world_of("p.a.b.c") is World.SECURE
        assert wmap.world_of("p.a.x") is World.NORMAL

    def test_unmapped_is_none(self):
        assert FIXTURE_MAP.world_of("badpkg.mystery") is None


class TestModGraph:
    def test_nested_class_in_factory_resolves(self):
        project = load_project(REPO_PACKAGE)
        mod = project.modules["repro.core.ta_filter"]
        assert "make_audio_filter_ta.AudioFilterTa.on_invoke" in mod.functions
        fn = mod.functions["make_audio_filter_ta.AudioFilterTa.on_invoke"]
        assert "TrustedApplication" in fn.class_bases

    def test_type_checking_imports_tagged(self):
        project = load_project(REPO_PACKAGE)
        mod = project.modules["repro.optee.ta"]
        tc = [i for i in mod.imports if i.type_checking]
        assert any(i.target.startswith("repro.obs") for i in tc)
