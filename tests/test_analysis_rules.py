"""Unit tests: the world-boundary static analyzer.

Covers every rule id against the seeded-violation fixture package
(``tests/fixtures/analysis/badpkg``), asserts the repo itself is clean
above the committed baseline, round-trips the baseline, and drives the
``repro analyze --fail-on-new`` CI gate against injected violations.
"""

import json
import pathlib
import shutil

import pytest

from repro.analysis.findings import AnalysisReport, Baseline
from repro.analysis.modgraph import dotted_suffix_match, load_project
from repro.analysis.runner import analyze_package, run_analysis
from repro.analysis.worlds import World, WorldMap
from repro.cli import main

FIXTURE_ROOT = pathlib.Path(__file__).parent / "fixtures" / "analysis" / "badpkg"
REPO_PACKAGE = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

FIXTURE_MAP = WorldMap(
    package="badpkg",
    exact={"badpkg": World.SHARED},
    prefixes={
        "badpkg.client": World.NORMAL,
        "badpkg.secure_mod": World.SECURE,
        "badpkg.ta_mod": World.SECURE,
        "badpkg.clock_mod": World.NORMAL,
        "badpkg.logging_mod": World.NORMAL,
        "badpkg.obs": World.SHARED,
        "badpkg.core": World.SECURE,
        "badpkg.xmod_source": World.SECURE,
        "badpkg.xmod_sink": World.SHARED,
        "badpkg.xmod_ta": World.SECURE,
        # badpkg.mystery deliberately unmapped -> W000
    },
    obs_package="badpkg.obs",
    obs_restricted=("badpkg.core",),
    rng_exempt=("badpkg.sim",),
)


@pytest.fixture(scope="module")
def fixture_findings():
    return analyze_package(FIXTURE_ROOT, package="badpkg",
                           world_map=FIXTURE_MAP)


def _fingerprints(findings):
    return {f.fingerprint for f in findings}


class TestFixtureViolations:
    def test_w000_unmapped_module(self, fixture_findings):
        assert "W000:badpkg.mystery:unmapped" in _fingerprints(
            fixture_findings
        )

    def test_w001_secure_imports_normal(self, fixture_findings):
        assert "W001:badpkg.secure_mod:import:badpkg.client" in (
            _fingerprints(fixture_findings)
        )

    def test_w001_type_checking_import_exempt(self, fixture_findings):
        # secure_mod imports badpkg.client twice; only the runtime import
        # may be flagged, so exactly one W001 lands on that module.
        w001 = [f for f in fixture_findings
                if f.rule == "W001" and f.module == "badpkg.secure_mod"]
        assert len(w001) == 1

    def test_w002_rpc_sink(self, fixture_findings):
        assert "W002:badpkg.ta_mod:EvilTa.on_invoke:call:rpc" in (
            _fingerprints(fixture_findings)
        )

    def test_w002_tainted_entry_return(self, fixture_findings):
        assert "W002:badpkg.ta_mod:EvilTa.on_invoke:return" in (
            _fingerprints(fixture_findings)
        )

    def test_w002_declassified_flows_clean(self, fixture_findings):
        # GoodTa moves the same tainted buffer only through approved
        # declassification points: zero findings on it.
        assert not [f for f in fixture_findings
                    if f.rule == "W002" and "GoodTa" in f.anchor]

    def test_d001_ambient_rng_and_clock(self, fixture_findings):
        fps = _fingerprints(fixture_findings)
        assert "D001:badpkg.clock_mod:call:np.random.default_rng" in fps
        assert "D001:badpkg.clock_mod:call:time.time" in fps

    def test_s001_log_and_exception(self, fixture_findings):
        fps = _fingerprints(fixture_findings)
        assert "S001:badpkg.logging_mod:log:seal_key" in fps
        assert "S001:badpkg.logging_mod:exception:huk" in fps

    def test_s001_derived_length_clean(self, fixture_findings):
        # f"...{len(seal_key)}..." interpolates a length, not the key.
        s001_logs = [f for f in fixture_findings
                     if f.rule == "S001" and f.module == "badpkg.logging_mod"
                     and f.anchor.startswith("log:")]
        assert len(s001_logs) == 1

    def test_o001_runtime_obs_import(self, fixture_findings):
        o001 = [f for f in fixture_findings
                if f.rule == "O001" and f.module == "badpkg.core"]
        assert len(o001) == 1  # the TYPE_CHECKING import is exempt
        assert o001[0].anchor.startswith("import:badpkg.obs")

    def test_all_five_rule_ids_demonstrated(self, fixture_findings):
        assert {f.rule for f in fixture_findings} >= {
            "W001", "W002", "D001", "S001", "O001",
        }

    # -- two-module interprocedural flow (xmod_*) --------------------------

    def test_w002_cross_module_return_via_call_summary(self, fixture_findings):
        # RelayTa.on_invoke never calls a source directly; the taint enters
        # through xmod_source.grab's return summary.  A module-local pass
        # provably misses this (no source and no sink appear in xmod_ta).
        assert "W002:badpkg.xmod_ta:RelayTa.on_invoke:return" in (
            _fingerprints(fixture_findings)
        )

    def test_w002_cross_module_flow_path_rendered(self, fixture_findings):
        f = next(f for f in fixture_findings
                 if f.fingerprint ==
                 "W002:badpkg.xmod_ta:RelayTa.on_invoke:return")
        # The witness must name the *other* module's source call site.
        assert "xmod_source.py" in f.message
        assert "invoke_pta" in f.message

    def test_w003_tainted_value_crosses_into_sink_reaching_callee(
        self, fixture_findings
    ):
        assert ("W003:badpkg.xmod_ta:RelayTa.on_invoke:"
                "xflow:badpkg.xmod_sink.ship:data") in (
            _fingerprints(fixture_findings)
        )

    def test_w003_witness_spans_both_modules(self, fixture_findings):
        f = next(f for f in fixture_findings if f.rule == "W003")
        assert "xmod_source.py" in f.message   # where the taint enters
        assert "xmod_sink.py" in f.message     # where it reaches the sink
        assert "rpc" in f.message

    def test_xmod_helper_modules_individually_clean(self, fixture_findings):
        # The leak is the *composition*: neither helper module gets a
        # finding of its own (findings anchor in secure modules only, and
        # xmod_source never sinks what it reads).
        assert not [f for f in fixture_findings
                    if f.module in ("badpkg.xmod_source", "badpkg.xmod_sink")]

    def test_findings_carry_location_and_severity(self, fixture_findings):
        for f in fixture_findings:
            assert f.path.endswith(".py")
            assert f.line >= 1
            assert f.severity in ("error", "warning")

    def test_analysis_is_deterministic(self, fixture_findings):
        again = analyze_package(FIXTURE_ROOT, package="badpkg",
                                world_map=FIXTURE_MAP)
        assert again == fixture_findings


class TestRepoClean:
    def test_repo_has_no_findings_above_baseline(self):
        report = run_analysis(REPO_PACKAGE)
        assert report.new_findings == [], (
            "new analyzer findings:\n" + report.render_text()
        )

    def test_committed_baseline_has_no_stale_entries(self):
        report = run_analysis(REPO_PACKAGE)
        assert report.stale == []

    def test_every_repo_module_is_mapped(self):
        report = run_analysis(REPO_PACKAGE, baseline_path=None)
        assert not [f for f in report.findings if f.rule == "W000"]


class TestBaselineRoundTrip:
    def test_suppress_rerun_silent(self, fixture_findings, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings(fixture_findings, reason="fixture").save(path)
        report = AnalysisReport(
            findings=analyze_package(FIXTURE_ROOT, package="badpkg",
                                     world_map=FIXTURE_MAP),
            baseline=Baseline.load(path),
        )
        assert report.new_findings == []
        assert len(report.suppressed) == len(fixture_findings)
        assert report.stale == []

    def test_stale_entries_reported(self, fixture_findings, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings(fixture_findings)
        baseline.entries["W001:badpkg.gone:import:badpkg.client"] = "gone"
        baseline.save(path)
        report = AnalysisReport(findings=list(fixture_findings),
                                baseline=Baseline.load(path))
        assert report.stale == ["W001:badpkg.gone:import:badpkg.client"]

    def test_baseline_fingerprints_survive_line_shifts(self, fixture_findings):
        # Fingerprints must not embed line numbers, or editing unrelated
        # code would churn the committed baseline.
        for f in fixture_findings:
            assert str(f.line) not in f.fingerprint.split(":")


# One injectable violation per rule id: (relative path, source, rule).
_INJECTIONS = [
    ("ml/evil_w001.py", "import repro.cloud\n", "W001"),
    (
        "ml/evil_w002.py",
        "CMD_READ = 2\n\n\n"
        "class EvilTa(TrustedApplication):  # noqa: F821\n"
        "    def on_invoke(self, ctx, cmd, params):\n"
        "        pcm = ctx.invoke_pta(self.uuid, CMD_READ, {})\n"
        "        return {'raw': pcm}\n",
        "W002",
    ),
    (
        "kernel/evil_d001.py",
        "import time\n\n\ndef now():\n    return time.time()\n",
        "D001",
    ),
    (
        "crypto/evil_s001.py",
        "def fail(seal_key):\n"
        "    raise ValueError(f'bad {seal_key}')\n",
        "S001",
    ),
    ("core/evil_o001.py", "import repro.obs\n", "O001"),
]


class TestFailOnNewGate:
    @pytest.fixture()
    def repo_copy(self, tmp_path):
        dest = tmp_path / "repro"
        shutil.copytree(REPO_PACKAGE, dest)
        return dest

    def test_clean_copy_exits_zero(self, repo_copy, capsys):
        assert main(["analyze", "--root", str(repo_copy),
                     "--fail-on-new"]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("relpath,source,rule",
                             _INJECTIONS, ids=[i[2] for i in _INJECTIONS])
    def test_single_injected_violation_fails(
        self, repo_copy, capsys, relpath, source, rule
    ):
        (repo_copy / relpath).write_text(source)
        assert main(["analyze", "--root", str(repo_copy), "--format", "json",
                     "--fail-on-new"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert rule in {f["rule"] for f in doc["new"]}


class TestWorldMap:
    def test_exact_beats_prefix(self):
        assert FIXTURE_MAP.world_of("badpkg") is World.SHARED

    def test_longest_prefix_wins(self):
        wmap = WorldMap(
            package="p",
            prefixes={"p.a": World.NORMAL, "p.a.b": World.SECURE},
        )
        assert wmap.world_of("p.a.b.c") is World.SECURE
        assert wmap.world_of("p.a.x") is World.NORMAL

    def test_unmapped_is_none(self):
        assert FIXTURE_MAP.world_of("badpkg.mystery") is None


class TestDottedSuffixMatch:
    def test_exact_match(self):
        assert dotted_suffix_match("filter.apply", ("filter.apply",)) == (
            "filter.apply"
        )

    def test_suffix_on_component_boundary(self):
        assert dotted_suffix_match(
            "self.bundle.filter.apply", ("filter.apply",)
        ) == "filter.apply"

    def test_partial_component_rejected(self):
        # "r.apply" is a substring of "...filter.apply" but not a dotted
        # suffix — matching it would flag unrelated calls.
        assert dotted_suffix_match("self.bundle.filter.apply",
                                   ("r.apply",)) is None

    def test_bare_name_matches_final_component_only(self):
        assert dotted_suffix_match("ctx.rpc", ("rpc",)) == "rpc"
        assert dotted_suffix_match("rpc", ("rpc",)) == "rpc"
        assert dotted_suffix_match("rpc.helper", ("rpc",)) is None

    def test_aliased_import_chain(self):
        # `import numpy.random as npr; npr.default_rng()` spells the call
        # "npr.default_rng" — the pattern matches whatever alias the
        # importer chose because only the suffix is compared.
        pats = ("random.default_rng", "default_rng")
        assert dotted_suffix_match("npr.default_rng", pats) == "default_rng"
        assert dotted_suffix_match(
            "np.random.default_rng", pats) == "random.default_rng"

    def test_self_attribute_calls(self):
        assert dotted_suffix_match("self.relay.send_transcript",
                                   ("send_transcript",)) == "send_transcript"
        assert dotted_suffix_match("self.send_transcript",
                                   ("send_transcript",)) == "send_transcript"

    def test_first_pattern_wins(self):
        assert dotted_suffix_match(
            "a.b.c", ("b.c", "c")) == "b.c"
        assert dotted_suffix_match(
            "a.b.c", ("c", "b.c")) == "c"

    def test_no_match_returns_none(self):
        assert dotted_suffix_match("a.b.c", ()) is None
        assert dotted_suffix_match("a.b.c", ("d", "x.y")) is None


_FACTORY_TA = '''\
CMD_READ = 2


def helper(n):
    return n + 1


def {factory}(bundle):
    class NestedTa(TrustedApplication):  # noqa: F821 - parse-only
        def on_invoke(self, ctx, cmd, params):
            pcm = ctx.invoke_pta(self.uuid, CMD_READ, {{}})
            return {{"raw": pcm}}

    return NestedTa
'''


class TestFingerprintStability:
    """Fingerprints anchor on qualnames, not lines or sibling names."""

    def _analyze(self, tmp_path, source, name="pkg"):
        root = tmp_path / name
        root.mkdir(exist_ok=True)
        (root / "__init__.py").write_text("")
        (root / "ta.py").write_text(source)
        wmap = WorldMap(package=name,
                        exact={name: World.SHARED},
                        prefixes={f"{name}.ta": World.SECURE})
        return analyze_package(root, package=name, world_map=wmap)

    def test_factory_nested_ta_detected(self, tmp_path):
        fps = _fingerprints(
            self._analyze(tmp_path, _FACTORY_TA.format(factory="make_ta")))
        assert "W002:pkg.ta:make_ta.NestedTa.on_invoke:return" in fps

    def test_line_shifts_do_not_churn_fingerprints(self, tmp_path):
        base = self._analyze(
            tmp_path, _FACTORY_TA.format(factory="make_ta"))
        shifted = self._analyze(
            tmp_path, "# padding\n" * 17 +
            _FACTORY_TA.format(factory="make_ta"))
        assert _fingerprints(base) == _fingerprints(shifted)
        assert [f.line for f in base] != [f.line for f in shifted]

    def test_unrelated_sibling_rename_is_invisible(self, tmp_path):
        base = self._analyze(
            tmp_path, _FACTORY_TA.format(factory="make_ta"))
        renamed = self._analyze(
            tmp_path,
            _FACTORY_TA.format(factory="make_ta").replace(
                "helper", "renamed_helper"),
        )
        assert _fingerprints(base) == _fingerprints(renamed)

    def test_factory_rename_moves_anchor_predictably(self, tmp_path):
        # Renaming the factory IS a qualname change: the finding must
        # still fire, under the new deterministic anchor (the old entry
        # then shows up as stale in the baseline, by design).
        fps = _fingerprints(self._analyze(
            tmp_path, _FACTORY_TA.format(factory="build_audio_ta")))
        assert "W002:pkg.ta:build_audio_ta.NestedTa.on_invoke:return" in fps
        assert not any("make_ta" in fp for fp in fps)


FIXTURE_WORLDMAP = (pathlib.Path(__file__).parent / "fixtures" / "analysis"
                    / "worldmap_badpkg.json")


class TestAnalyzeCliFlags:
    @pytest.fixture()
    def repo_copy(self, tmp_path):
        dest = tmp_path / "repro"
        shutil.copytree(REPO_PACKAGE, dest)
        return dest

    def test_fail_on_stale_rejects_dead_entries(self, repo_copy, capsys):
        baseline_path = repo_copy / "analysis" / "baseline.json"
        doc = json.loads(baseline_path.read_text())
        doc["findings"].append(
            {"fingerprint": "W002:repro.gone:ghost:return", "reason": "x"})
        baseline_path.write_text(json.dumps(doc))
        assert main(["analyze", "--root", str(repo_copy),
                     "--baseline", str(baseline_path),
                     "--fail-on-new"]) == 0  # stale alone passes without flag
        capsys.readouterr()
        assert main(["analyze", "--root", str(repo_copy),
                     "--baseline", str(baseline_path),
                     "--fail-on-new", "--fail-on-stale"]) == 1
        capsys.readouterr()

    def test_sarif_export(self, repo_copy, tmp_path, capsys):
        sarif_path = tmp_path / "out" / "analysis.sarif"
        assert main(["analyze", "--root", str(repo_copy),
                     "--sarif", str(sarif_path)]) == 0
        capsys.readouterr()
        doc = json.loads(sarif_path.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert run["results"], "repo findings must be exported"
        for result in run["results"]:
            assert result["partialFingerprints"]["repro/v1"].count(":") >= 2
        # Every repo finding is baselined, so each carries a suppression
        # with the accepted reason — code scanning shows them dismissed.
        assert all(r.get("suppressions") for r in run["results"])

    def test_expect_mode_passes_on_seeded_fixture(self, capsys):
        assert main(["analyze", "--root", str(FIXTURE_ROOT),
                     "--package", "badpkg",
                     "--world-map", str(FIXTURE_WORLDMAP),
                     "--expect", "W000,W001,W002,W003,D001,S001,O001"]) == 0
        capsys.readouterr()

    def test_expect_mode_fails_when_rule_missing(self, capsys):
        assert main(["analyze", "--root", str(FIXTURE_ROOT),
                     "--package", "badpkg",
                     "--world-map", str(FIXTURE_WORLDMAP),
                     "--expect", "W002,T001"]) == 1
        assert "T001" in capsys.readouterr().err

    def test_world_map_json_matches_inline_map(self, fixture_findings):
        from repro.analysis.worlds import load_world_map
        wmap = load_world_map(FIXTURE_WORLDMAP)
        findings = analyze_package(FIXTURE_ROOT, package="badpkg",
                                   world_map=wmap)
        assert findings == fixture_findings


class TestModGraph:
    def test_nested_class_in_factory_resolves(self):
        project = load_project(REPO_PACKAGE)
        mod = project.modules["repro.core.ta_filter"]
        assert "make_audio_filter_ta.AudioFilterTa.on_invoke" in mod.functions
        fn = mod.functions["make_audio_filter_ta.AudioFilterTa.on_invoke"]
        assert "TrustedApplication" in fn.class_bases

    def test_type_checking_imports_tagged(self):
        project = load_project(REPO_PACKAGE)
        mod = project.modules["repro.optee.ta"]
        tc = [i for i in mod.imports if i.type_checking]
        assert any(i.target.startswith("repro.obs") for i in tc)
