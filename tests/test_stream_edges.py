"""Edge cases of the continuous-capture mode."""

import numpy as np
import pytest

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_PROCESS_STREAM
from repro.optee.params import Params, Value
from repro.peripherals.audio import BufferSource


@pytest.fixture
def stream_pipeline(provisioned):
    platform = IotPlatform.create(seed=301)
    pipeline = SecurePipeline(platform, provisioned.bundle)
    return platform, pipeline


class TestStreamEdges:
    def test_silent_stream_yields_no_decisions(self, stream_pipeline):
        platform, pipeline = stream_pipeline
        platform.mic.swap_source(
            BufferSource(np.zeros(8_000, dtype=np.int16))
        )
        records = pipeline.session.invoke(
            CMD_PROCESS_STREAM, Params.of(Value(a=8_000))
        )
        assert records == []
        assert platform.cloud.received_transcripts == []

    def test_noise_only_stream_sends_nothing_sensitive(self, stream_pipeline):
        """Loud non-speech: VAD fires, ASR finds no words, empty
        transcripts classify benign — nothing sensitive can leak because
        nothing sensitive was said."""
        platform, pipeline = stream_pipeline
        rng = np.random.default_rng(0)
        noise = (rng.normal(0, 9_000, 12_000)).clip(-32768, 32767).astype(
            np.int16
        )
        platform.mic.swap_source(BufferSource(noise))
        records = pipeline.session.invoke(
            CMD_PROCESS_STREAM, Params.of(Value(a=12_000))
        )
        for record in records:
            assert not record["sensitive"] or not record["forwarded"]

    def test_single_word_stream(self, stream_pipeline, provisioned):
        platform, pipeline = stream_pipeline
        pcm = provisioned.bundle.vocoder.render("jazz")
        padded = np.concatenate(
            [np.zeros(2_000, dtype=np.int16), pcm,
             np.zeros(2_000, dtype=np.int16)]
        )
        platform.mic.swap_source(BufferSource(padded))
        records = pipeline.session.invoke(
            CMD_PROCESS_STREAM, Params.of(Value(a=len(padded)))
        )
        assert len(records) == 1
        assert records[0]["transcript"] == "jazz"

    def test_empty_workload_continuous(self, stream_pipeline):
        from repro.core.workload import UtteranceWorkload

        _, pipeline = stream_pipeline
        with pytest.raises(Exception):
            # Zero-sample stream is a degenerate request; the concatenation
            # in process_continuous raises before any TEE call.
            pipeline.process_continuous(UtteranceWorkload(items=[]))

    def test_merged_utterances_reported_not_dropped(self, stream_pipeline,
                                                    provisioned):
        """A gap shorter than the VAD hangover merges adjacent utterances
        into one segment.  The run must report the under-segmentation,
        not silently truncate the ground-truth pairing (the old
        ``zip``-only behaviour)."""
        from tests.test_core_pipeline import MIXED, make_workload

        platform, pipeline = stream_pipeline
        workload = make_workload(provisioned, [MIXED[0], MIXED[2]])
        run = pipeline.process_continuous(workload, gap_samples=64)
        assert run.under_segmented >= 1
        assert run.over_segmented == 0
        assert len(run.results) == len(workload.items) - run.under_segmented
        mismatches = [
            e for e in platform.machine.trace.events("core.pipeline")
            if e.name == "segmentation_mismatch"
        ]
        assert len(mismatches) == 1

    def test_split_utterance_keeps_surplus_records(self, stream_pipeline,
                                                   provisioned):
        """A long internal pause splits one utterance into two segments;
        the surplus decision record is preserved, not discarded."""
        from repro.core.workload import UtteranceWorkload, WorkloadItem
        from repro.ml.dataset import SensitiveCategory, Utterance

        platform, pipeline = stream_pipeline
        render = provisioned.bundle.vocoder.render
        pcm = np.concatenate(
            [render("jazz"), np.zeros(2_000, dtype=np.int16), render("jazz")]
        )
        item = WorkloadItem(
            utterance=Utterance("jazz", SensitiveCategory.WEATHER), pcm=pcm
        )
        run = pipeline.process_continuous(
            UtteranceWorkload(items=[item]), gap_samples=2_000
        )
        assert run.over_segmented == 1
        assert run.under_segmented == 0
        assert len(run.results) == 1
        assert len(run.unpaired_records) == 1
        assert run.unpaired_records[0]["transcript"] == "jazz"

    def test_processing_latency_non_negative(self, stream_pipeline,
                                             provisioned):
        """Regression: every result used to get the whole-run domain delta
        as its ``domain_cycles`` while latency was divided per-record, so
        subtracting the (whole-run) peripheral share went negative."""
        from tests.test_core_pipeline import MIXED, make_workload

        _, pipeline = stream_pipeline
        workload = make_workload(provisioned, MIXED)
        run = pipeline.process_continuous(workload)
        assert len(run.results) > 1
        assert (run.processing_latency_cycles() >= 0).all()
        assert (run.latencies > 0).all()

    def test_processing_latency_non_negative_when_under_segmented(
            self, stream_pipeline, provisioned):
        from tests.test_core_pipeline import MIXED, make_workload

        _, pipeline = stream_pipeline
        workload = make_workload(provisioned, [MIXED[0], MIXED[2]])
        run = pipeline.process_continuous(workload, gap_samples=64)
        assert run.under_segmented >= 1
        assert (run.processing_latency_cycles() >= 0).all()

    def test_processing_latency_non_negative_when_over_segmented(
            self, stream_pipeline, provisioned):
        from repro.core.workload import UtteranceWorkload, WorkloadItem
        from repro.ml.dataset import SensitiveCategory, Utterance

        _, pipeline = stream_pipeline
        render = provisioned.bundle.vocoder.render
        pcm = np.concatenate(
            [render("jazz"), np.zeros(2_000, dtype=np.int16), render("jazz")]
        )
        item = WorkloadItem(
            utterance=Utterance("jazz", SensitiveCategory.WEATHER), pcm=pcm
        )
        run = pipeline.process_continuous(
            UtteranceWorkload(items=[item]), gap_samples=2_000
        )
        assert run.over_segmented == 1
        assert (run.processing_latency_cycles() >= 0).all()

    def test_totals_reconstruct_whole_run_deltas(self, stream_pipeline,
                                                 provisioned):
        """Regression: dividing by the raw VAD segment count under-counted
        totals whenever segmentation disagreed.  The per-result slices
        must sum back to the measured whole-run clock and energy deltas,
        per domain and in total."""
        from tests.test_core_pipeline import MIXED, make_workload

        platform, pipeline = stream_pipeline
        workload = make_workload(provisioned, MIXED)
        clock_before = platform.machine.clock.snapshot()
        energy_before = platform.energy.snapshot()
        run = pipeline.process_continuous(workload)
        delta = platform.machine.clock.snapshot().delta(clock_before)
        energy = platform.energy.delta_since(energy_before)

        assert run.total_latency_cycles() == sum(delta.values())
        assert run.summary()["total_latency_cycles"] == sum(delta.values())
        per_domain = {}
        for r in run.results:
            for domain, cycles in r.domain_cycles.items():
                per_domain[domain] = per_domain.get(domain, 0) + cycles
        assert per_domain == {d: v for d, v in delta.items() if v}
        assert run.total_energy_mj() == pytest.approx(energy.total_mj)

    def test_back_to_back_streams_accumulate_stats(self, stream_pipeline,
                                                   provisioned):
        platform, pipeline = stream_pipeline
        from repro.core.workload import UtteranceWorkload
        from repro.ml.dataset import Corpus, SensitiveCategory, Utterance

        corpus = Corpus([
            Utterance("set a timer for five minutes",
                      SensitiveCategory.TIMER)
        ])
        workload = UtteranceWorkload.from_corpus(
            corpus, provisioned.bundle.vocoder
        )
        run1 = pipeline.process_continuous(workload)
        run2 = pipeline.process_continuous(workload)
        assert len(run1) == len(run2) == 1
        assert run2.stage_cycles["vad"] > run1.stage_cycles["vad"]
