"""Fuzz/property tests: USB control plane robustness.

A driver's enumeration code is the classic parser-attack surface; these
tests throw malformed setup packets and corrupted descriptor blobs at the
device and driver and require *typed errors, never crashes*.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.drivers.hosting import KernelDriverHost
from repro.drivers.usb_audio_driver import UsbAudioDriver
from repro.errors import BusProtocolError, ReproError
from repro.peripherals.audio import ToneSource
from repro.peripherals.usb import SetupPacket, UsbAudioMicrophone, UsbBus
from repro.tz.machine import TrustZoneMachine


def make_bus():
    machine = TrustZoneMachine()
    mic = UsbAudioMicrophone(ToneSource())
    return machine, UsbBus(machine.clock, mic)


class TestSetupPacketFuzz:
    @given(
        bmRequestType=st.integers(0, 255),
        bRequest=st.integers(0, 255),
        wValue=st.integers(0, 0xFFFF),
        wIndex=st.integers(0, 0xFFFF),
        data=st.binary(max_size=16),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_control_never_crashes(
        self, bmRequestType, bRequest, wValue, wIndex, data
    ):
        _, bus = make_bus()
        setup = SetupPacket(
            bmRequestType, bRequest, wValue, wIndex, len(data), data
        )
        try:
            result = bus.control(setup)
        except ReproError:
            return  # typed rejection is the correct outcome
        assert isinstance(result, bytes)


class TestDescriptorCorruption:
    def _driver_with_corruptor(self, corrupt):
        """A driver whose device returns corrupted config descriptors."""
        machine, bus = make_bus()
        device = bus.device
        original = device.configuration_descriptor

        def corrupted():
            return corrupt(original())

        device.configuration_descriptor = corrupted
        return UsbAudioDriver(KernelDriverHost(machine), bus)

    def test_zero_length_descriptor_rejected(self):
        def corrupt(blob):
            mutated = bytearray(blob)
            mutated[9] = 0  # first sub-descriptor length = 0
            return bytes(mutated)

        driver = self._driver_with_corruptor(corrupt)
        with pytest.raises(BusProtocolError, match="zero-length"):
            driver.probe()

    def test_non_audio_device_rejected(self):
        def corrupt(blob):
            # Rewrite every interface class byte to vendor-specific (0xFF).
            # Interface descriptor layout: len, type, num, alt, numEP,
            # class, subclass, protocol, iInterface — class at offset+5.
            mutated = bytearray(blob)
            offset = mutated[0]
            while offset < len(mutated):
                length, desc_type = mutated[offset], mutated[offset + 1]
                if desc_type == 4:  # interface
                    mutated[offset + 5] = 0xFF
                offset += max(1, length)
            return bytes(mutated)

        driver = self._driver_with_corruptor(corrupt)
        with pytest.raises(BusProtocolError, match="audio-class"):
            driver.probe()

    def test_truncated_blob_rejected(self):
        driver = self._driver_with_corruptor(lambda blob: blob[: len(blob) // 2])
        with pytest.raises(ReproError):
            driver.probe()

    @given(
        index=st.integers(min_value=9, max_value=40),
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_single_byte_corruption_never_crashes(self, index, value):
        def corrupt(blob):
            mutated = bytearray(blob)
            if index < len(mutated):
                mutated[index] = value
            return bytes(mutated)

        driver = self._driver_with_corruptor(corrupt)
        try:
            driver.probe()
        except ReproError:
            return  # typed rejection
        # Or enumeration survived the flip; the driver must be coherent.
        assert driver.state == "idle"
        assert driver.device_info


class TestBandwidthValidation:
    def test_insufficient_iso_bandwidth_rejected(self):
        machine, bus = make_bus()
        driver = UsbAudioDriver(KernelDriverHost(machine), bus)
        driver.probe()
        # Shrink the parsed endpoint's max packet below the stream's need.
        for endpoint in driver.endpoints:
            endpoint["max_packet"] = 4
        from repro.errors import DriverError

        with pytest.raises(DriverError, match="bandwidth"):
            driver.pcm_open_capture(128)
