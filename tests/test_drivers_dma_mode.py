"""Unit tests: the driver's DMA capture mode."""

import numpy as np
import pytest

from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DriverError, SecureAccessViolation
from repro.peripherals.audio import BufferSource, ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.sim.clock import CycleDomain
from repro.tz.memory import MemoryRegion, SecurityAttr
from repro.tz.worlds import World
from tests.test_drivers_i2s import open_capture


@pytest.fixture
def rig(machine):
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    mic = DigitalMicrophone(ToneSource(), fmt=controller.format)
    I2sBus(controller, mic)
    driver = I2sDriver(KernelDriverHost(machine), controller, region)
    return machine, driver, mic


class TestDmaCapture:
    def test_dma_mode_selectable(self, rig):
        _, driver, _ = rig
        driver.probe()
        driver.set_capture_mode("dma")
        assert driver.capture_mode == "dma"
        driver.set_capture_mode("pio")
        assert driver.capture_mode == "pio"

    def test_unknown_mode_rejected(self, rig):
        _, driver, _ = rig
        driver.probe()
        with pytest.raises(DriverError):
            driver.set_capture_mode("scatter-gather")

    def test_dma_capture_matches_pio(self, rig):
        machine, driver, mic = rig
        expect = (np.arange(128) * 37 % 4000 - 2000).astype(np.int16)

        mic.swap_source(BufferSource(expect.copy()))
        open_capture(driver, chunk=128)
        pio = driver.read_chunk()
        driver.trigger_stop()
        driver.pcm_close()

        mic.swap_source(BufferSource(expect.copy()))
        driver.set_capture_mode("dma")
        driver.pcm_open_capture(128)
        driver.trigger_start()
        dma = driver.read_chunk()
        assert np.array_equal(pio, dma)

    def test_dma_charges_dma_domain(self, rig):
        machine, driver, _ = rig
        driver.probe()
        driver.set_capture_mode("dma")
        driver.pcm_open_capture(64)
        driver.trigger_start()
        driver.read_chunk()
        assert machine.clock.cycles_in(CycleDomain.DMA) > 0

    def test_dma_is_cheaper_cpu_side_than_pio(self, rig):
        """DMA saves CPU cycles: no per-word MMIO FIFO reads."""
        machine, driver, _ = rig
        open_capture(driver, chunk=256)
        before = machine.clock.cycles_in(CycleDomain.NORMAL_CPU)
        driver.read_chunk()
        pio_cpu = machine.clock.cycles_in(CycleDomain.NORMAL_CPU) - before

        driver.set_capture_mode("dma")
        before = machine.clock.cycles_in(CycleDomain.NORMAL_CPU)
        driver.read_chunk()
        dma_cpu = machine.clock.cycles_in(CycleDomain.NORMAL_CPU) - before
        assert dma_cpu < pio_cpu

    def test_remove_releases_staging(self, rig):
        machine, driver, _ = rig
        driver.probe()
        driver.set_capture_mode("dma")
        assert machine.ns_allocator.used_bytes > 0
        driver.remove()
        assert machine.ns_allocator.used_bytes == 0

    def test_dma_fns_absent_from_pio_trace(self, rig):
        """TCB story: the DMA subsystem is strippable for a PIO task."""
        machine, driver, _ = rig
        host = driver.host
        from repro.kernel.tracer import FunctionTracer

        tracer = FunctionTracer()
        host.attach_tracer(tracer)
        tracer.start("pio-record")
        open_capture(driver, chunk=64)
        driver.read_chunk()
        session = tracer.stop()
        assert not any(
            fn.startswith("_dma") or fn == "set_capture_mode"
            for fn in session.functions_used()
        )


class TestSecureDma:
    def test_secure_hosted_dma_targets_secure_staging(self, machine):
        from repro.drivers.hosting import SecureDriverHost
        from repro.optee.os import OpTeeOs
        from repro.optee.pta import PseudoTa, PtaContext

        region = machine.memory.add_region(
            MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                         SecurityAttr.NONSECURE, device=True)
        )
        controller = I2sController(machine.clock, machine.trace)
        machine.memory.attach_mmio("i2s_mmio", controller)
        I2sBus(controller,
               DigitalMicrophone(ToneSource(), fmt=controller.format))
        tee = OpTeeOs(machine)
        host = SecureDriverHost(PtaContext(tee, PseudoTa()))
        driver = I2sDriver(host, controller, region)

        machine.cpu._set_world(World.SECURE)
        try:
            driver.probe()
            driver.set_capture_mode("dma")
            driver.pcm_open_capture(64)
            driver.trigger_start()
            pcm = driver.read_chunk()
            assert len(pcm) == 64
            staging = driver._dma_staging_addr
        finally:
            machine.cpu._set_world(World.NORMAL)

        # The staging buffer holds raw mic words and is secure.
        with pytest.raises(SecureAccessViolation):
            machine.memory.read(staging, 16, World.NORMAL)
