"""Unit + acceptance tests: fleet simulation and merged telemetry.

The acceptance paths (mirror the issue's criteria): merged fleet
quantiles equal the concatenated per-device streams' within one bucket's
relative error, and pipeline decisions are byte-identical with the
fleet/health instrumentation on or off.
"""

import json
import math

import pytest

from repro.obs.fleet import (
    FAULT_PROFILES,
    DeviceSpec,
    device_specs,
    run_fleet,
    simulate_device,
)
from repro.obs.health import FlightRecorder, HealthMonitor, default_slo_rules


@pytest.fixture(scope="module")
def fleet(provisioned):
    """One small fleet covering every fault profile (shared: ~seconds)."""
    return run_fleet(devices=4, seed=7, utterances=2,
                     bundle=provisioned.bundle)


class TestDeviceSpecs:
    def test_roster_is_deterministic_and_varied(self):
        a = device_specs(8, seed=7)
        b = device_specs(8, seed=7)
        assert a == b
        assert len({s.seed for s in a}) == 8
        assert {s.fault_profile for s in a} == set(FAULT_PROFILES)
        assert all(s.seed >= 7 + 1000 for s in a)

    def test_workload_sizes_rotate(self):
        sizes = {s.utterances for s in device_specs(6, utterances=4)}
        assert sizes == {4, 5, 6}

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            device_specs(0)


class TestDeviceReport:
    def test_relay_conservation_and_registry(self, fleet):
        for d in fleet.devices:
            assert d.summary["sent"] + d.summary["queued"] == (
                d.summary["forwarded"]
            )
            reg = d.registry
            assert reg.counter("fleet.utterances").value == len(d.latencies)
            assert reg.histogram("fleet.e2e_latency_cycles").count == len(
                d.latencies
            )
            assert 0.0 <= d.relay_success_rate <= 1.0

    def test_doc_row_is_json_ready(self, fleet):
        doc = fleet.devices[0].to_doc()
        json.dumps(doc)
        assert "machine" not in doc
        assert doc["device"] == "d00"


class TestFleetMerge:
    def test_merged_quantiles_match_concatenated_stream(self, fleet):
        merged = fleet.latency_hist
        concat = sorted(lat for d in fleet.devices for lat in d.latencies)
        assert merged.count == len(concat)
        assert merged.min == concat[0] and merged.max == concat[-1]
        assert merged.total == sum(concat)
        for q in (0.5, 0.95, 0.99):
            estimate = merged.quantile(q)
            if merged.exact:
                # Under the cap the merge kept every sample: the merged
                # quantile IS the concatenated stream's (interpolated).
                rank = q * (len(concat) - 1)
                lo = int(rank)
                hi = min(lo + 1, len(concat) - 1)
                frac = rank - lo
                expected = concat[lo] * (1.0 - frac) + concat[hi] * frac
                assert estimate == expected, (q, expected, estimate)
            else:
                # Bucket mode: nearest-rank exact bracketed within one
                # bucket's relative error.
                rank = max(1, math.ceil(q * len(concat)))
                exact = concat[rank - 1]
                assert exact <= estimate * (1 + 1e-12), (q, exact, estimate)
                assert estimate <= exact * merged.gamma * (1 + 1e-12), (
                    q, exact, estimate,
                )

    def test_overflowed_merge_still_brackets(self, fleet):
        # Force bucket mode by merging into a zero-cap histogram so the
        # one-bucket-error guarantee is exercised on real fleet data.
        from repro.obs.metrics import BucketHistogram

        tight = BucketHistogram("fleet.e2e_latency_cycles", max_samples=0)
        merged = tight
        for d in fleet.devices:
            merged = merged.merge(d.latency_hist)
        assert not merged.exact
        concat = sorted(lat for d in fleet.devices for lat in d.latencies)
        for q in (0.5, 0.95, 0.99):
            rank = max(1, math.ceil(q * len(concat)))
            exact = concat[rank - 1]
            estimate = merged.quantile(q)
            assert exact <= estimate * (1 + 1e-12), (q, exact, estimate)
            assert estimate <= exact * merged.gamma * (1 + 1e-12), (
                q, exact, estimate,
            )

    def test_merged_registry_sums_devices(self, fleet):
        reg = fleet.merged_registry()
        for name in ("fleet.utterances", "fleet.relay.sent",
                     "fleet.relay.forwarded"):
            assert reg.counter(name).value == sum(
                d.registry.counter(name).value for d in fleet.devices
            )

    def test_report_doc_shape(self, fleet):
        doc = fleet.to_doc()
        assert len(doc["devices"]) == 4
        f = doc["fleet"]
        assert f["latency_p50_cycles"] <= f["latency_p95_cycles"] <= (
            f["latency_p99_cycles"]
        )
        assert f["latency_hist"]["count"] == f["utterances"]
        json.dumps(doc)

    def test_table_has_per_device_rows_and_fleet_line(self, fleet):
        table = fleet.table()
        for d in fleet.devices:
            assert d.spec.device_id in table
        assert "relay success" in table
        assert "p99" in table


class TestAcceptanceDeterminism:
    """Issue criterion: decisions byte-identical with obs on or off."""

    @staticmethod
    def _decisions(device):
        """Everything the pipeline decided, serialized."""
        return json.dumps(
            {
                "summary": device.summary,
                "relay": device.relay,
                "latencies": device.latencies,
                "energy_mj": device.energy_mj,
                "world_switches": device.world_switches,
            },
            sort_keys=True,
        )

    def test_instrumentation_does_not_perturb_decisions(self, provisioned):
        spec = DeviceSpec(
            device_id="dut", seed=321, utterances=3,
            sensitive_fraction=0.5, fault_profile="lossy",
        )
        # Fully instrumented run: recorder attached, health evaluated.
        rec = FlightRecorder(capacity=32)
        lit = simulate_device(spec, provisioned.bundle, recorder=rec)
        HealthMonitor(lit.registry, default_slo_rules(),
                      recorder=rec).evaluate()
        # Dark run: observability disabled entirely.
        dark = simulate_device(spec, provisioned.bundle, observability=False)

        assert self._decisions(lit) == self._decisions(dark)
        # The dark registry recorded nothing; the lit one did.
        assert dark.registry.counters() == {}
        assert lit.registry.counter("fleet.utterances").value == 3

    def test_fleet_runs_are_reproducible(self, fleet, provisioned):
        again = run_fleet(devices=4, seed=7, utterances=2,
                          bundle=provisioned.bundle)
        assert json.dumps(again.to_doc(), sort_keys=True) == json.dumps(
            fleet.to_doc(), sort_keys=True
        )
