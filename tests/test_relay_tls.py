"""Unit tests: TLS-like handshake, record layer, AVS protocol."""

import json

import pytest

from repro.errors import HandshakeError, RecordError
from repro.relay.avs import AvsClient, AvsEvent
from repro.relay.tls import TlsClient, TlsServer
from repro.sim.rng import SimRng


@pytest.fixture
def pair():
    server = TlsServer(SimRng(1, "server"))
    client = TlsClient(server.handle, server.static_public, SimRng(2, "client"))
    return server, client


class TestHandshake:
    def test_handshake_succeeds(self, pair):
        server, client = pair
        client.handshake()
        assert client.connected
        assert client.handshakes == 1

    def test_request_before_handshake_rejected(self, pair):
        _, client = pair
        with pytest.raises(HandshakeError):
            client.request(b"early")

    def test_wrong_pinned_key_detected(self):
        """MITM: client pins key A, talks to server with key B."""
        real = TlsServer(SimRng(1, "server"))
        mitm = TlsServer(SimRng(9, "mitm"))
        client = TlsClient(mitm.handle, real.static_public, SimRng(2, "c"))
        with pytest.raises(HandshakeError, match="MITM|finished"):
            client.handshake()

    def test_rehandshake_resets_sequences(self, pair):
        server, client = pair
        client.handshake()
        client.request(b"one")
        client.handshake()
        assert client.request(b"two") is not None


class TestRecords:
    def test_round_trip(self, pair):
        server, client = pair
        server.set_handler(lambda pt: pt.upper())
        client.handshake()
        assert client.request(b"hello") == b"HELLO"

    def test_multiple_records_in_order(self, pair):
        server, client = pair
        server.set_handler(lambda pt: pt)
        client.handshake()
        for i in range(5):
            assert client.request(f"msg{i}".encode()) == f"msg{i}".encode()

    def test_plaintext_never_on_wire(self, pair):
        server, client = pair
        wire = []
        original = server.handle

        def tapped(request):
            wire.append(request)
            return original(request)

        client._transport = tapped
        client.handshake()
        client.request(b"my social security number")
        joined = b"".join(wire)
        assert b"social security" not in joined

    def test_replayed_record_rejected(self, pair):
        server, client = pair
        client.handshake()
        captured = {}
        original = server.handle

        def capture(request):
            msg = json.loads(request.decode())
            if msg.get("type") == "record":
                captured["wire"] = request
            return original(request)

        client._transport = capture
        client.request(b"first")
        with pytest.raises(RecordError, match="sequence"):
            server.handle(captured["wire"])  # replay

    def test_record_before_handshake_rejected(self):
        server = TlsServer(SimRng(1, "s"))
        wire = json.dumps({"type": "record", "seq": 0, "payload": "00"}).encode()
        with pytest.raises(HandshakeError):
            server.handle(wire)

    def test_malformed_message_rejected(self):
        server = TlsServer(SimRng(1, "s"))
        with pytest.raises(RecordError):
            server.handle(b"\xff\xfe not json")
        with pytest.raises(RecordError):
            server.handle(json.dumps({"type": "martian"}).encode())

    def test_tampered_record_rejected(self, pair):
        from repro.errors import AuthenticationFailure

        server, client = pair
        client.handshake()
        original_transport = client._transport

        def tamper(request):
            msg = json.loads(request.decode())
            if msg.get("type") == "record":
                payload = bytearray.fromhex(msg["payload"])
                payload[0] ^= 0xFF
                msg["payload"] = payload.hex()
                request = json.dumps(msg).encode()
            return original_transport(request)

        client._transport = tamper
        with pytest.raises(AuthenticationFailure):
            client.request(b"data")


class TestAvsProtocol:
    def test_event_round_trip(self):
        event = AvsEvent.recognize("play music", dialog_id=3)
        parsed = AvsEvent.from_bytes(event.to_bytes())
        assert parsed.name == "Recognize"
        assert parsed.payload["transcript"] == "play music"
        assert parsed.payload["dialogRequestId"] == 3

    def test_heartbeat_shape(self):
        event = AvsEvent.heartbeat()
        assert event.namespace == "System"

    def test_malformed_event_rejected(self):
        with pytest.raises(RecordError):
            AvsEvent.from_bytes(b"{}")
        with pytest.raises(RecordError):
            AvsEvent.from_bytes(b"junk")

    def test_client_over_secure_channel(self, pair):
        server, client = pair
        received = []

        def app(plaintext):
            received.append(AvsEvent.from_bytes(plaintext))
            return json.dumps({"directive": "Ack"}).encode()

        server.set_handler(app)
        client.handshake()
        avs = AvsClient(client.request)
        directive = avs.recognize("what time is it")
        assert directive == {"directive": "Ack"}
        assert received[0].payload["transcript"] == "what time is it"
        assert avs.events_sent == 1

    def test_dialog_ids_increment(self, pair):
        server, client = pair
        server.set_handler(lambda pt: b'{"directive":"Ack"}')
        client.handshake()
        avs = AvsClient(client.request)
        avs.recognize("a")
        avs.recognize("b")
        assert avs._dialog_id == 2
