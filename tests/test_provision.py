"""Unit tests: provisioning helpers."""

import pytest

from repro.core.filter import FilterPolicy
from repro.ml.quantize import QuantizedClassifier
from repro.provision import build_demo_pipeline, provision_bundle


class TestProvisionBundle:
    def test_default_provision_quality(self, provisioned):
        assert provisioned.test_accuracy > 0.9
        assert len(provisioned.train_corpus) > len(provisioned.test_corpus)

    def test_architectures(self):
        for arch in ("cnn", "transformer", "hybrid"):
            provisioned = provision_bundle(
                seed=5, architecture=arch, corpus_size=300, epochs=2
            )
            assert provisioned.bundle.filter.classifier is not None

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            provision_bundle(architecture="rnn", corpus_size=100, epochs=1)

    def test_quantized_provisioning(self):
        provisioned = provision_bundle(
            seed=5, corpus_size=300, epochs=2, quantize=True
        )
        assert isinstance(
            provisioned.bundle.filter.classifier, QuantizedClassifier
        )
        assert provisioned.bundle.filter.is_quantized

    def test_policy_propagates(self):
        provisioned = provision_bundle(
            seed=5, corpus_size=300, epochs=2, policy=FilterPolicy.REDACT
        )
        assert provisioned.bundle.filter.policy is FilterPolicy.REDACT

    def test_threshold_propagates(self):
        provisioned = provision_bundle(
            seed=5, corpus_size=300, epochs=2, threshold=0.8
        )
        assert provisioned.bundle.filter.threshold == 0.8

    def test_deterministic(self):
        a = provision_bundle(seed=6, corpus_size=200, epochs=2)
        b = provision_bundle(seed=6, corpus_size=200, epochs=2)
        assert (
            a.bundle.filter.classifier.serialize()
            == b.bundle.filter.classifier.serialize()
        )

    def test_train_wer_hardening(self):
        provisioned = provision_bundle(
            seed=5, corpus_size=300, epochs=2, train_wer=0.2
        )
        # Still learns despite corrupted training text.
        assert provisioned.test_accuracy > 0.7

    def test_hard_fraction_lowers_ceiling(self):
        clean = provision_bundle(seed=8, corpus_size=500, epochs=3)
        hard = provision_bundle(
            seed=8, corpus_size=500, epochs=3, hard_fraction=0.8
        )
        assert hard.test_accuracy <= clean.test_accuracy
        assert hard.test_accuracy < 1.0  # irreducible shared-text error

    def test_vocoder_covers_generated_corpus(self, provisioned):
        """Every word the generator can emit must be renderable."""
        for u in provisioned.test_corpus.utterances:
            provisioned.bundle.vocoder.render(u.text)  # no raise


class TestBuildDemoPipeline:
    def test_demo_assembly(self):
        secure, workload, platform = build_demo_pipeline(
            seed=5, utterances=4, corpus_size=300, epochs=2
        )
        assert len(workload) == 4
        run = secure.process(workload)
        assert len(run) == 4
        assert platform.cloud.events_handled >= 0
