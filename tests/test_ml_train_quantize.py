"""Unit tests: training loop, quantization, image classifier."""

import numpy as np
import pytest

from repro.ml.dataset import UtteranceGenerator
from repro.ml.image import ImageClassifier
from repro.ml.models import TextCnnClassifier
from repro.ml.quantize import QuantizedTensor, quantize_classifier
from repro.ml.tokenizer import WordTokenizer
from repro.ml.train import TrainConfig, Trainer
from repro.peripherals.camera import Camera, SyntheticScene
from repro.sim.rng import SimRng


@pytest.fixture(scope="module")
def trained():
    """A small trained CNN (module-scoped; training is the cost)."""
    rng = SimRng(11)
    corpus = UtteranceGenerator(rng.fork("c")).generate(400)
    train, test = corpus.split(0.8, rng.fork("s"))
    tok = WordTokenizer(max_len=12).fit(UtteranceGenerator.all_template_texts())
    model = TextCnnClassifier(tok.vocab_size, tok.max_len,
                              np.random.default_rng(0))
    trainer = Trainer(model, tok, TrainConfig(epochs=4, seed=1))
    result = trainer.fit(train, test)
    return model, tok, trainer, result, test


class TestTrainer:
    def test_reaches_high_accuracy(self, trained):
        _, _, _, result, _ = trained
        assert result.best_val_accuracy > 0.9

    def test_loss_decreases(self, trained):
        _, _, _, result, _ = trained
        losses = [s.train_loss for s in result.history]
        assert losses[-1] < losses[0]

    def test_final_metrics_populated(self, trained):
        _, _, _, result, _ = trained
        m = result.final_metrics
        assert m is not None
        assert m.tp + m.fp + m.tn + m.fn > 0

    def test_training_is_deterministic(self):
        def run():
            rng = SimRng(22)
            corpus = UtteranceGenerator(rng.fork("c")).generate(120)
            train, test = corpus.split(0.8, rng.fork("s"))
            tok = WordTokenizer(max_len=10).fit(
                UtteranceGenerator.all_template_texts()
            )
            model = TextCnnClassifier(
                tok.vocab_size, tok.max_len, np.random.default_rng(3)
            )
            Trainer(model, tok, TrainConfig(epochs=2, seed=5)).fit(train, test)
            return model.serialize()

        assert run() == run()

    def test_evaluate_threshold_changes_recall(self, trained):
        _, _, trainer, _, test = trained
        strict = trainer.evaluate(test, threshold=0.95)
        lax = trainer.evaluate(test, threshold=0.05)
        assert lax.recall >= strict.recall


class TestQuantizedTensor:
    def test_int8_range(self):
        values = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        qt = QuantizedTensor(values)
        assert qt.q.dtype == np.int8
        assert np.abs(qt.q).max() <= 127

    def test_dequantize_error_bounded_by_scale(self):
        values = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        qt = QuantizedTensor(values)
        err = np.abs(qt.dequantize() - values)
        assert err.max() <= qt.scale / 2 + 1e-6

    def test_zero_tensor(self):
        qt = QuantizedTensor(np.zeros(10, dtype=np.float32))
        assert not np.any(qt.dequantize())

    def test_size(self):
        qt = QuantizedTensor(np.zeros((5, 5), dtype=np.float32))
        assert qt.size_bytes == 25 + 4


class TestQuantizedClassifier:
    @staticmethod
    def _fresh_copy(trained):
        """quantize_classifier consumes its model; give each test a copy."""
        model, tok, _, _, _ = trained
        clone = TextCnnClassifier(tok.vocab_size, tok.max_len,
                                  np.random.default_rng(1))
        clone.deserialize(model.serialize())
        return clone

    def test_size_reduction(self, trained):
        model = self._fresh_copy(trained)
        fp32_bytes = model.size_bytes()
        q = quantize_classifier(model)
        assert q.size_bytes() < fp32_bytes / 3.5  # ~4x minus scales

    def test_accuracy_mostly_preserved(self, trained):
        _, tok, _, _, test = trained
        ids = tok.encode_batch(test.texts)
        labels = np.array(test.labels)
        q = quantize_classifier(self._fresh_copy(trained))
        q_acc = (q.predict(ids) == labels).mean()
        assert q_acc > 0.85

    def test_macs_unchanged(self, trained):
        model = self._fresh_copy(trained)
        macs = model.macs_per_inference()
        assert quantize_classifier(model).macs_per_inference() == macs

    def test_serialize_size(self, trained):
        q = quantize_classifier(self._fresh_copy(trained))
        assert len(q.serialize()) == q.size_bytes()

    def test_quantization_error_reported(self, trained):
        q = quantize_classifier(self._fresh_copy(trained))
        assert 0 < q.quantization_error() < 0.1

    def test_double_quantization_is_lossless(self, trained):
        """Quantizing already-quantized weights changes nothing."""
        q1 = quantize_classifier(self._fresh_copy(trained))
        q2 = quantize_classifier(q1._model)
        assert q2.quantization_error() == pytest.approx(0.0, abs=1e-9)


class TestImageClassifier:
    def _data(self, n=120):
        frames, labels = [], []
        scene_p = SyntheticScene(SimRng(1), person_probability=1.0)
        scene_e = SyntheticScene(SimRng(2), person_probability=0.0)
        cam_p, cam_e = Camera(scene_p), Camera(scene_e)
        for _ in range(n // 2):
            frames.append(cam_p.capture_frame())
            labels.append(1)
            frames.append(cam_e.capture_frame())
            labels.append(0)
        return np.stack(frames), np.array(labels)

    def test_learns_person_detection(self):
        frames, labels = self._data()
        clf = ImageClassifier(32, 24, np.random.default_rng(0))
        losses = clf.fit(frames, labels, epochs=8)
        assert losses[-1] < losses[0]
        acc = (clf.predict(frames) == labels).mean()
        assert acc > 0.9

    def test_single_frame_predict(self):
        clf = ImageClassifier(32, 24, np.random.default_rng(0))
        frame = np.zeros((24, 32), dtype=np.uint8)
        assert clf.predict_proba(frame).shape == (1,)

    def test_wrong_shape_rejected(self):
        from repro.errors import ShapeError

        clf = ImageClassifier(32, 24, np.random.default_rng(0))
        with pytest.raises(ShapeError):
            clf.forward(np.zeros((10, 10), dtype=np.uint8))

    def test_accounting(self):
        clf = ImageClassifier(32, 24, np.random.default_rng(0))
        assert clf.size_bytes() == clf.num_params() * 4
        assert clf.macs_per_inference() > 0
