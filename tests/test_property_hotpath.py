"""Property tests (hypothesis): the vectorized capture path is an exact
drop-in for the scalar reference.

Two identically seeded rigs play the *same* random PCM; one is drained
through the vectorized ``I2sDriver`` paths, the other through the scalar
reference loops preserved in :mod:`repro.drivers.reference`.  The int16
streams must be bit-identical for arbitrary FIFO levels, gains and chunk
sizes — including the ``0x8000`` sign-extension edge (``-32768`` has no
positive counterpart, the classic vectorization bug).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.drivers.reference import drain_fifo_pio_scalar, read_chunk_scalar
from repro.peripherals.audio import BufferSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import MemoryRegion, SecurityAttr

# int16 samples with the 0x8000 edge drawn explicitly: -32768 is the one
# value whose scalar sign extension (sample -= 0x10000) a masked
# vectorized path is most likely to mangle.
samples_strategy = st.lists(
    st.one_of(
        st.integers(min_value=-32768, max_value=32767),
        st.just(-32768),
        st.just(32767),
    ),
    min_size=1,
    max_size=256,
)


def _build_rig(pcm: np.ndarray, chunk: int, volume: int = 100):
    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller,
           DigitalMicrophone(BufferSource(pcm.copy()), fmt=controller.format))
    driver = I2sDriver(KernelDriverHost(machine), controller, region)
    driver.probe()
    if volume != 100:
        driver.set_volume(volume)
    driver.pcm_open_capture(chunk)
    driver.trigger_start()
    return machine, driver, controller


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    raw=samples_strategy,
    level=st.integers(min_value=1, max_value=64),
    max_words=st.integers(min_value=1, max_value=64),
)
def test_property_pio_drain_bit_identical(raw, level, max_words):
    """Vectorized PIO drain == scalar loop for any FIFO level."""
    pcm = np.array(raw, dtype=np.int16)
    _, driver_v, ctrl_v = _build_rig(pcm, chunk=64)
    _, driver_s, ctrl_s = _build_rig(pcm, chunk=64)
    ctrl_v.capture(level)
    ctrl_s.capture(level)
    vector = driver_v._drain_fifo_pio(max_words)
    scalar = drain_fifo_pio_scalar(driver_s, max_words)
    assert vector.dtype == scalar.dtype == np.int16
    assert np.array_equal(vector, scalar)
    assert ctrl_v.fifo_level == ctrl_s.fifo_level


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    raw=samples_strategy,
    level=st.integers(min_value=1, max_value=64),
    max_words=st.integers(min_value=1, max_value=64),
)
def test_property_dma_drain_bit_identical(raw, level, max_words):
    """Vectorized DMA drain == scalar PIO loop for any FIFO level."""
    pcm = np.array(raw, dtype=np.int16)
    _, driver_v, ctrl_v = _build_rig(pcm, chunk=64)
    _, driver_s, ctrl_s = _build_rig(pcm, chunk=64)
    driver_v.set_capture_mode("dma")
    ctrl_v.capture(level)
    ctrl_s.capture(level)
    vector = driver_v._drain_fifo_dma(max_words)
    scalar = drain_fifo_pio_scalar(driver_s, max_words)
    assert np.array_equal(vector, scalar)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    raw=samples_strategy,
    chunk=st.integers(min_value=1, max_value=192),
    volume=st.integers(min_value=0, max_value=200),
    chunks=st.integers(min_value=1, max_value=3),
)
def test_property_read_chunk_golden_stream(raw, chunk, volume, chunks):
    """Full read_chunk == scalar reference, gains and buffers included."""
    pcm = np.array(raw, dtype=np.int16)
    machine_v, driver_v, _ = _build_rig(pcm, chunk, volume)
    machine_s, driver_s, _ = _build_rig(pcm, chunk, volume)
    vector = np.concatenate([driver_v.read_chunk() for _ in range(chunks)])
    scalar = np.concatenate(
        [read_chunk_scalar(driver_s) for _ in range(chunks)]
    )
    assert np.array_equal(vector, scalar)


def _segment_scalar(vad, pcm):
    """The pre-vectorization per-frame VAD segmentation loops."""
    active = [bool(a) for a in vad.frame_activity(pcm)]
    n = len(active)
    if n == 0:
        return []
    bridged = active[:]
    i = 0
    while i < n:
        if active[i]:
            i += 1
            continue
        j = i
        while j < n and not active[j]:
            j += 1
        if i > 0 and j < n and j - i <= vad.hang_frames:
            for k in range(i, j):
                bridged[k] = True
        i = j
    segments = []
    i = 0
    while i < n:
        if not bridged[i]:
            i += 1
            continue
        j = i
        while j < n and bridged[j]:
            j += 1
        if j - i >= vad.min_frames:
            segments.append(
                (i * vad.frame_samples, j * vad.frame_samples)
            )
        i = j
    return segments


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_frames=st.integers(min_value=0, max_value=40),
    hang=st.integers(min_value=0, max_value=6),
    min_frames=st.integers(min_value=1, max_value=4),
)
def test_property_vad_segmentation_matches_scalar(seed, n_frames, hang,
                                                  min_frames):
    """Run-length-encoded segmentation == the per-frame reference loops."""
    from repro.ml.vad import EnergyVad

    rng = np.random.default_rng(seed)
    # Alternate loud and quiet frames randomly so bridging/min-length
    # rules are actually exercised.
    frames = []
    for _ in range(n_frames):
        loud = rng.random() < 0.5
        amplitude = 8000 if loud else 50
        frames.append(
            (rng.standard_normal(160) * amplitude)
            .clip(-32768, 32767)
            .astype(np.int16)
        )
    pcm = (
        np.concatenate(frames) if frames else np.zeros(0, dtype=np.int16)
    )
    vad = EnergyVad(hang_frames=hang, min_frames=min_frames)
    vector = [(s.start, s.end) for s in vad.segment(pcm)]
    assert vector == _segment_scalar(vad, pcm)


def _decode_at_scalar(asr, signal, offset):
    """The pre-vectorization window-at-a-time matched-filter decode."""
    from repro.ml.asr import SAMPLES_PER_WORD, WORD_STRIDE

    words, total = [], 0.0
    start = offset
    while start + SAMPLES_PER_WORD <= len(signal):
        window = signal[start : start + SAMPLES_PER_WORD]
        norm = np.linalg.norm(window)
        if norm >= 1e-6:
            scores = asr._matrix @ (window / norm)
            best = int(scores.argmax())
            if scores[best] >= asr.silence_threshold:
                words.append(asr._words[best])
                total += float(scores[best])
        start += WORD_STRIDE
    return words, total


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    text_words=st.integers(min_value=1, max_value=4),
    offset=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_asr_decode_matches_scalar(asr, text_words, offset, seed):
    """Batched matched-filter decode == the window-at-a-time loop.

    Word decisions must agree exactly; the accumulated score is allowed
    float tolerance (gemm vs gemv accumulate in different orders).
    """
    rng = np.random.default_rng(seed)
    vocab = asr._words
    text = " ".join(
        vocab[int(i)] for i in rng.integers(0, len(vocab), text_words)
    )
    signal = np.concatenate(
        [
            (rng.standard_normal(offset) * 40).astype(np.float32),
            asr.vocoder.render(text).astype(np.float32),
        ]
    )
    vector_words, vector_score = asr._decode_at(signal, offset)
    scalar_words, scalar_score = _decode_at_scalar(asr, signal, offset)
    assert vector_words == scalar_words
    assert np.isclose(vector_score, scalar_score, rtol=1e-5, atol=1e-6)
