"""Unit tests: kernel syscalls, char devices, tracer."""

import numpy as np
import pytest

from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DeviceNotFound, KernelError, SyscallError
from repro.kernel.kernel import I2sCharDevice, Kernel
from repro.peripherals.audio import BufferSource, ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.tz.memory import MemoryRegion, SecurityAttr


@pytest.fixture
def kernel_rig(machine):
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    mic = DigitalMicrophone(ToneSource(), fmt=controller.format)
    I2sBus(controller, mic)
    kernel = Kernel(machine)
    driver = I2sDriver(kernel.driver_host, controller, region)
    kernel.register_device("/dev/snd/i2s0", I2sCharDevice(driver))
    return kernel, driver, mic


class TestSyscalls:
    def test_open_returns_fd(self, kernel_rig):
        kernel, _, _ = kernel_rig
        fd = kernel.sys_open("/dev/snd/i2s0")
        assert fd >= 3

    def test_open_missing_device(self, kernel_rig):
        kernel, _, _ = kernel_rig
        with pytest.raises(SyscallError, match="ENOENT"):
            kernel.sys_open("/dev/null0")

    def test_bad_fd(self, kernel_rig):
        kernel, _, _ = kernel_rig
        with pytest.raises(SyscallError, match="EBADF"):
            kernel.sys_read(99, 4)
        with pytest.raises(SyscallError, match="EBADF"):
            kernel.sys_close(99)

    def test_close_invalidates_fd(self, kernel_rig):
        kernel, _, _ = kernel_rig
        fd = kernel.sys_open("/dev/snd/i2s0")
        kernel.sys_close(fd)
        with pytest.raises(SyscallError, match="EBADF"):
            kernel.sys_ioctl(fd, "GET_VOLUME")

    def test_syscalls_charge_cycles(self, kernel_rig):
        kernel, _, _ = kernel_rig
        before = kernel.machine.clock.now
        kernel.sys_open("/dev/snd/i2s0")
        assert kernel.machine.clock.now > before
        assert kernel.syscall_count == 1

    def test_device_lookup(self, kernel_rig):
        kernel, _, _ = kernel_rig
        assert kernel.device("/dev/snd/i2s0") is not None
        with pytest.raises(DeviceNotFound):
            kernel.device("/dev/ghost")


class TestCharDevice:
    def test_ioctl_volume(self, kernel_rig):
        kernel, driver, _ = kernel_rig
        fd = kernel.sys_open("/dev/snd/i2s0")
        kernel.sys_ioctl(fd, "SET_VOLUME", 70)
        assert kernel.sys_ioctl(fd, "GET_VOLUME") == 70
        assert driver.volume_pct == 70

    def test_unknown_ioctl(self, kernel_rig):
        kernel, _, _ = kernel_rig
        fd = kernel.sys_open("/dev/snd/i2s0")
        with pytest.raises(SyscallError, match="ENOTTY"):
            kernel.sys_ioctl(fd, "FROBNICATE")

    def test_read_before_start(self, kernel_rig):
        kernel, _, _ = kernel_rig
        fd = kernel.sys_open("/dev/snd/i2s0")
        with pytest.raises(SyscallError, match="EINVAL"):
            kernel.sys_read(fd, 16)

    def test_read_assembles_chunks(self, kernel_rig):
        kernel, _, mic = kernel_rig
        expect = np.arange(1, 601, dtype=np.int16)
        mic.swap_source(BufferSource(expect))
        fd = kernel.sys_open("/dev/snd/i2s0")
        kernel.sys_ioctl(fd, "OPEN_CAPTURE", 256)
        kernel.sys_ioctl(fd, "START")
        raw = kernel.sys_read(fd, 600 * 2)
        got = np.frombuffer(raw, dtype="<i2")
        assert np.array_equal(got, expect)

    def test_capture_pcm_helper(self, kernel_rig):
        kernel, _, mic = kernel_rig
        mic.swap_source(BufferSource(np.full(500, 123, dtype=np.int16)))
        pcm = kernel.capture_pcm("/dev/snd/i2s0", 500)
        assert len(pcm) == 500
        assert pcm[0] == 123

    def test_dump_regs_ioctl(self, kernel_rig):
        kernel, _, _ = kernel_rig
        fd = kernel.sys_open("/dev/snd/i2s0")
        kernel.sys_ioctl(fd, "OPEN_CAPTURE", 64)
        kernel.sys_ioctl(fd, "START")
        dump = kernel.sys_ioctl(fd, "DUMP_REGS")
        assert "ctrl" in dump


class TestTracer:
    def test_trace_captures_driver_calls(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.tracer.start("record")
        kernel.capture_pcm("/dev/snd/i2s0", 256)
        session = kernel.tracer.stop()
        used = session.functions_used()
        assert "probe" in used
        assert "read_chunk" in used
        assert "_drain_fifo_pio" in used
        # Functions the task never touches must not appear.
        assert "suspend" not in used
        assert "write_chunk" not in used

    def test_caller_attribution(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.tracer.start("record")
        kernel.capture_pcm("/dev/snd/i2s0", 64)
        session = kernel.tracer.stop()
        edges = session.call_edges()
        assert ("read_chunk", "_drain_fifo_pio") in edges
        assert (None, "probe") in edges  # external entry

    def test_no_recording_when_inactive(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.capture_pcm("/dev/snd/i2s0", 64)
        assert kernel.tracer.sessions == {}

    def test_concurrent_sessions_rejected(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.tracer.start("a")
        with pytest.raises(KernelError):
            kernel.tracer.start("b")
        kernel.tracer.stop()

    def test_stop_without_start(self, kernel_rig):
        kernel, _, _ = kernel_rig
        with pytest.raises(KernelError):
            kernel.tracer.stop()

    def test_sessions_archived_by_task(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.tracer.start("record")
        kernel.capture_pcm("/dev/snd/i2s0", 64)
        kernel.tracer.stop()
        assert kernel.tracer.session("record").task == "record"
        with pytest.raises(KernelError):
            kernel.tracer.session("ghost")

    def test_loc_used_below_total(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.tracer.start("record")
        kernel.capture_pcm("/dev/snd/i2s0", 64)
        session = kernel.tracer.stop()
        assert 0 < session.loc_used() < I2sDriver.total_loc()

    def test_calls_by_subsystem(self, kernel_rig):
        kernel, _, _ = kernel_rig
        kernel.tracer.start("record")
        kernel.capture_pcm("/dev/snd/i2s0", 64)
        session = kernel.tracer.stop()
        by_subsystem = session.calls_by_subsystem()
        assert by_subsystem.get("pcm", 0) > 0
        assert by_subsystem.get("regmap", 0) > 0
        assert "tx" not in by_subsystem
