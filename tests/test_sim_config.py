"""Unit tests: SimConfig and relay module internals not covered elsewhere."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.clock import CycleDomain


class TestSimConfig:
    def test_builders_honor_settings(self):
        config = SimConfig(seed=9, freq_hz=1e9, trace_capacity=100)
        clock = config.build_clock()
        assert clock.freq_hz == 1e9
        rng = config.build_rng()
        assert rng.seed == 9
        trace = config.build_trace()
        assert trace.capacity == 100

    def test_trace_can_start_disabled(self):
        config = SimConfig(trace_enabled=False)
        trace = config.build_trace()
        trace.emit(0, "c", "e")
        assert len(trace) == 0

    def test_default_seed_reproducible(self):
        a = SimConfig().build_rng().bytes(8)
        b = SimConfig().build_rng().bytes(8)
        assert a == b

    def test_machine_uses_config(self):
        from repro.tz.machine import MachineConfig, TrustZoneMachine

        sim = SimConfig(seed=77, freq_hz=1.5e9)
        machine = TrustZoneMachine(MachineConfig(sim=sim))
        assert machine.clock.freq_hz == 1.5e9
        assert machine.rng.seed == 77


class TestRelayModule:
    """Direct RelayModule behaviour (indirectly exercised via pipelines)."""

    @pytest.fixture
    def relay_setup(self, machine):
        from repro.cloud.service import VoiceCloudService
        from repro.optee.os import OpTeeOs
        from repro.optee.supplicant import TeeSupplicant
        from repro.optee.ta import TaContext, TrustedApplication
        from repro.relay.relay import RelayModule
        from repro.sim.rng import SimRng

        tee = OpTeeOs(machine)
        supplicant = TeeSupplicant(machine)
        tee.attach_supplicant(supplicant)
        cloud = VoiceCloudService(SimRng(1, "cloud"))
        supplicant.net.register_endpoint(cloud.HOST, cloud.TLS_PORT, cloud)

        ta = TrustedApplication()
        ta.ctx = TaContext(tee, ta)
        relay = RelayModule(
            ta.ctx, cloud.HOST, cloud.TLS_PORT,
            cloud.tls.static_public, SimRng(2, "relay"),
        )
        return machine, relay, cloud

    def test_connect_is_idempotent(self, relay_setup):
        from repro.tz.worlds import World

        machine, relay, _ = relay_setup
        machine.cpu._set_world(World.SECURE)
        try:
            relay.connect()
            handshakes = relay._tls.handshakes
            relay.connect()
            assert relay._tls.handshakes == handshakes
        finally:
            machine.cpu._set_world(World.NORMAL)

    def test_transcript_reaches_cloud_encrypted(self, relay_setup):
        from repro.tz.worlds import World

        machine, relay, cloud = relay_setup
        machine.cpu._set_world(World.SECURE)
        try:
            directive = relay.send_transcript("hello cloud")
        finally:
            machine.cpu._set_world(World.NORMAL)
        assert directive["directive"] == "Response"
        assert cloud.received_transcripts == ["hello cloud"]
        assert relay.bytes_sent > 0

    def test_heartbeat(self, relay_setup):
        from repro.tz.worlds import World

        machine, relay, cloud = relay_setup
        machine.cpu._set_world(World.SECURE)
        try:
            assert relay.heartbeat()["directive"] == "Ack"
        finally:
            machine.cpu._set_world(World.NORMAL)
