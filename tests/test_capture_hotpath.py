"""Regression tests for the block-based capture hot path.

Covers the correctness bugs the vectorization exposed:

* the PTA read loop used to spin forever on a stalled controller;
* ``utterance_buffer()`` used to report the stale allocation size (and
  leave the previous utterance's plaintext tail) after a shorter
  utterance reused a larger buffer;
* FIFO underruns used to shorten chunks silently — now they are counted
  in ``capture_stats()`` and reconciled by the conformance suite;
* the FIFO *window read* (the MMIO burst access behind the vectorized
  drain) has hardware-shaped edge semantics of its own.
"""

import numpy as np
import pytest

from repro.core.pta_audio import CMD_INIT, SecureAudioPta
from repro.drivers.conformance import run_capture_conformance
from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import (
    BusProtocolError,
    DeviceStateError,
    DriverError,
    FifoUnderrunError,
)
from repro.peripherals.audio import ToneSource
from repro.peripherals.i2s import CtrlBits, I2sBus, I2sController, I2sReg
from repro.peripherals.microphone import DigitalMicrophone
from repro.tz.memory import MemoryRegion, SecurityAttr
from repro.tz.worlds import World


@pytest.fixture
def rig(machine):
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    mic = DigitalMicrophone(ToneSource(), fmt=controller.format)
    I2sBus(controller, mic)
    driver = I2sDriver(KernelDriverHost(machine), controller, region)
    return machine, driver, mic, controller


def _secure_pta(platform):
    """A registered + initialized SecureAudioPta on the platform's rig."""
    pta = SecureAudioPta(platform.i2s_controller, platform.i2s_region)
    platform.tee.register_pta(pta)
    machine = platform.machine
    machine.cpu._set_world(World.SECURE)
    try:
        pta.on_invoke(CMD_INIT, {}, None)
    finally:
        machine.cpu._set_world(World.NORMAL)
    return pta


class _DyingSource:
    """Tone source that disables the controller's RX path after serving
    one batch — models a mid-chunk clock/enable glitch."""

    def __init__(self, controller: I2sController):
        self._controller = controller
        self._tone = ToneSource()

    def next_samples(self, n: int) -> np.ndarray:
        samples = self._tone.next_samples(n)
        self._controller._ctrl = int(CtrlBits.ENABLE)  # RX off after this
        return samples

    def exhausted(self) -> bool:
        return False


class TestPtaStallBudget:
    """Satellite bugfix 1: the PTA read loop terminates on a stalled device."""

    def test_stalled_controller_raises_instead_of_hanging(self, platform):
        pta = _secure_pta(platform)
        platform.mic.swap_source(ToneSource())
        machine = platform.machine
        machine.cpu._set_world(World.SECURE)
        try:
            pta.driver.pcm_open_capture(128)
            pta.driver.trigger_start()
            # Glitch the controller: ENABLE without RX_ENABLE means
            # capture() accepts nothing, so read_chunk returns empty
            # forever while the driver still believes it is capturing.
            platform.i2s_controller._ctrl = int(CtrlBits.ENABLE)
            with pytest.raises(DeviceStateError, match="stalled"):
                pta._read(256)
        finally:
            machine.cpu._set_world(World.NORMAL)

    def test_transient_empty_reads_are_tolerated(self, platform):
        """Fewer than STALL_BUDGET empty reads recover transparently."""
        pta = _secure_pta(platform)
        platform.mic.swap_source(ToneSource())
        machine = platform.machine
        machine.cpu._set_world(World.SECURE)
        try:
            pta.driver.pcm_open_capture(64)
            pta.driver.trigger_start()
            controller = platform.i2s_controller
            live_ctrl = controller._ctrl
            reads = {"n": 0}
            original = pta.driver.read_chunk

            def flaky_read_chunk():
                reads["n"] += 1
                # Stall for the first STALL_BUDGET - 1 reads, then recover.
                if reads["n"] < SecureAudioPta.STALL_BUDGET:
                    controller._ctrl = int(CtrlBits.ENABLE)
                else:
                    controller._ctrl = live_ctrl
                return original()

            pta.driver.read_chunk = flaky_read_chunk
            pcm = pta._read(64)
            assert len(pcm) == 64
            assert np.any(pcm != 0)
        finally:
            machine.cpu._set_world(World.NORMAL)


class TestUtteranceBufferLiveLength:
    """Satellite bugfix 2: reused larger buffers report the live length
    and carry no stale plaintext tail."""

    def test_shrinking_utterance_reports_live_length_and_zeroed_tail(
        self, platform
    ):
        pta = _secure_pta(platform)
        platform.mic.swap_source(ToneSource())
        machine = platform.machine
        machine.cpu._set_world(World.SECURE)
        try:
            pta.driver.pcm_open_capture(128)
            pta.driver.trigger_start()
            big = pta._read(512)
            assert np.any(big != 0)
            addr, size = pta.utterance_buffer()
            assert size == 512 * 2
            tail_before = machine.memory.read(
                addr + 128 * 2, (512 - 128) * 2, World.SECURE
            )
            assert any(tail_before)  # the tail really held plaintext

            pta._read(128)
            addr2, live = pta.utterance_buffer()
            assert addr2 == addr  # buffer was reused, not reallocated
            assert live == 128 * 2  # live length, not allocation capacity
            tail_after = machine.memory.read(
                addr + 128 * 2, (512 - 128) * 2, World.SECURE
            )
            assert tail_after == b"\x00" * len(tail_after)
        finally:
            machine.cpu._set_world(World.NORMAL)

    def test_growing_utterance_reallocates_and_reports_full_length(
        self, platform
    ):
        pta = _secure_pta(platform)
        platform.mic.swap_source(ToneSource())
        machine = platform.machine
        machine.cpu._set_world(World.SECURE)
        try:
            pta.driver.pcm_open_capture(128)
            pta.driver.trigger_start()
            pta._read(128)
            _, live = pta.utterance_buffer()
            assert live == 128 * 2
            pta._read(512)
            _, live = pta.utterance_buffer()
            assert live == 512 * 2
        finally:
            machine.cpu._set_world(World.NORMAL)


class TestShortReadAccounting:
    """Satellite bugfix 3: underruns surface in capture_stats()."""

    def test_underrun_counts_short_read_and_missing_frames(self, rig):
        _, driver, mic, controller = rig
        mic.swap_source(_DyingSource(controller))
        driver.probe()
        driver.pcm_open_capture(64)
        driver.trigger_start()
        pcm = driver.read_chunk()
        # The first FIFO batch (fifo_depth // 2 frames) lands, then the
        # glitched controller produces nothing more for this chunk.
        assert len(pcm) == controller.fifo_depth // 2
        stats = driver.capture_stats()
        assert stats == {
            "chunks": 1,
            "short_reads": 1,
            "missing_frames": 64 - len(pcm),
        }

    def test_full_reads_leave_stats_clean(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        driver.pcm_open_capture(64)
        driver.trigger_start()
        for _ in range(3):
            assert len(driver.read_chunk()) == 64
        assert driver.capture_stats() == {
            "chunks": 3, "short_reads": 0, "missing_frames": 0,
        }

    def test_conformance_reconciles_short_reads(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        report = run_capture_conformance(driver)
        assert report.passed, report.failed_checks()
        assert report.checks["short_reads_accounted"]

    def test_usb_dead_pipe_raises_instead_of_hanging(self, machine):
        """A pipe that stalls on every retry trips the stall budget."""
        from repro.drivers.usb_audio_driver import UsbAudioDriver
        from repro.peripherals.usb import UsbAudioMicrophone, UsbBus

        bus = UsbBus(machine.clock, UsbAudioMicrophone(ToneSource()))
        driver = UsbAudioDriver(KernelDriverHost(machine), bus)
        driver.probe()
        driver.pcm_open_capture(128)
        driver.trigger_start()

        def dead_iso_in(endpoint, frames):
            raise BusProtocolError("endpoint stalled")

        bus.iso_in = dead_iso_in
        with pytest.raises(DriverError, match="iso pipe dead"):
            driver.read_chunk()


class TestFifoWindowRead:
    """The MMIO burst access behind the vectorized drain."""

    def test_window_read_pops_words_in_order(self, rig):
        machine, driver, _, controller = rig
        driver.probe()
        driver.pcm_open_capture(64)
        driver.trigger_start()
        controller.capture(8)
        raw = machine.memory.read(
            driver.reg_base + int(I2sReg.FIFO), 8 * 4, World.NORMAL
        )
        words = np.frombuffer(raw, dtype="<u4")
        assert len(words) == 8
        assert controller.fifo_level == 0
        # Sequence numbers in the high halves are consecutive.
        seqs = (words >> 16).astype(np.int64)
        assert list(seqs) == list(range(seqs[0], seqs[0] + 8))

    def test_window_read_beyond_level_underruns(self, rig):
        machine, driver, _, controller = rig
        driver.probe()
        driver.pcm_open_capture(64)
        driver.trigger_start()
        controller.capture(4)
        with pytest.raises(FifoUnderrunError):
            machine.memory.read(
                driver.reg_base + int(I2sReg.FIFO), 8 * 4, World.NORMAL
            )

    def test_window_read_must_be_word_multiple(self, rig):
        machine, driver, _, controller = rig
        driver.probe()
        driver.pcm_open_capture(64)
        driver.trigger_start()
        controller.capture(4)
        with pytest.raises(BusProtocolError):
            machine.memory.read(
                driver.reg_base + int(I2sReg.FIFO), 6, World.NORMAL
            )

    def test_other_registers_still_reject_wide_reads(self, rig):
        machine, driver, _, _ = rig
        with pytest.raises(BusProtocolError):
            machine.memory.read(
                driver.reg_base + int(I2sReg.STATUS), 8, World.NORMAL
            )


class TestGoldenStream:
    """The vectorized path is byte-identical to the scalar reference."""

    def test_read_chunk_matches_scalar_reference_stream(self, rig):
        from repro.drivers.reference import read_chunk_scalar

        machine, driver, _, _ = rig
        driver.probe()
        driver.pcm_open_capture(256)
        driver.trigger_start()
        vector = np.concatenate([driver.read_chunk() for _ in range(4)])

        # Fresh, identically seeded rig for the scalar reference.
        machine2 = type(machine)()
        region2 = machine2.memory.add_region(
            MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                         SecurityAttr.NONSECURE, device=True)
        )
        controller2 = I2sController(machine2.clock, machine2.trace)
        machine2.memory.attach_mmio("i2s_mmio", controller2)
        I2sBus(controller2,
               DigitalMicrophone(ToneSource(), fmt=controller2.format))
        driver2 = I2sDriver(KernelDriverHost(machine2), controller2, region2)
        driver2.probe()
        driver2.pcm_open_capture(256)
        driver2.trigger_start()
        scalar = np.concatenate(
            [read_chunk_scalar(driver2) for _ in range(4)]
        )
        assert np.array_equal(vector, scalar)
        # The landed I/O buffers agree too (last chunk each).
        assert machine.memory.read(driver._buf_addr, 512, World.NORMAL) == \
            machine2.memory.read(driver2._buf_addr, 512, World.NORMAL)
