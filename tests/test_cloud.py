"""Unit tests: cloud service recording + leak auditor."""

import numpy as np
import pytest

from repro.cloud.auditor import LeakAuditor, transcript_match
from repro.cloud.service import VoiceCloudService
from repro.ml.dataset import SensitiveCategory, Utterance
from repro.relay.avs import AvsClient, AvsEvent
from repro.relay.tls import TlsClient
from repro.sim.rng import SimRng


@pytest.fixture
def cloud():
    return VoiceCloudService(SimRng(4))


class TestCloudService:
    def test_tls_client_reaches_service(self, cloud):
        client = TlsClient(cloud.receive, cloud.tls.static_public, SimRng(5))
        client.handshake()
        avs = AvsClient(client.request)
        directive = avs.recognize("turn off the lights")
        assert directive["directive"] == "Response"
        assert cloud.received_transcripts == ["turn off the lights"]
        assert cloud.received[0].encrypted_transport

    def test_plaintext_endpoint_records_too(self, cloud):
        endpoint = cloud.plaintext_endpoint
        endpoint.receive(AvsEvent.recognize("hello", 1).to_bytes())
        assert cloud.received_transcripts == ["hello"]
        assert not cloud.received[0].encrypted_transport

    def test_cloud_records_everything(self, cloud):
        endpoint = cloud.plaintext_endpoint
        for i in range(5):
            endpoint.receive(AvsEvent.recognize(f"utterance {i}", i).to_bytes())
        assert len(cloud.received) == 5

    def test_non_recognize_events_not_recorded(self, cloud):
        cloud.plaintext_endpoint.receive(AvsEvent.heartbeat().to_bytes())
        assert cloud.received == []
        assert cloud.events_handled == 1

    def test_garbage_gets_error_directive(self, cloud):
        reply = cloud.plaintext_endpoint.receive(b'{"not": "an event"}')
        assert b"error" in reply


class TestDedupScopedPerDevice:
    """Regression: dedup keyed on dialog id alone conflated devices.

    Dialog ids are per-device counters, so two devices legitimately use
    the same id; duplicate suppression must include the sender identity
    or device B's retry is silently eaten when device A got there first.
    """

    def test_same_device_retry_suppressed(self, cloud):
        ep = cloud.plaintext_endpoint
        ep.receive(AvsEvent.recognize("hi", 1, device_id="d00").to_bytes())
        ep.receive(
            AvsEvent.recognize("hi", 1, attempt=2, device_id="d00").to_bytes()
        )
        assert cloud.received_transcripts == ["hi"]
        assert cloud.duplicates_suppressed == 1

    def test_other_devices_retry_not_suppressed(self, cloud):
        ep = cloud.plaintext_endpoint
        # Device A records dialog id 1; device B's first delivery of its
        # own dialog id 1 was lost, so all the cloud sees is the retry.
        ep.receive(AvsEvent.recognize("from a", 1, device_id="d00").to_bytes())
        ep.receive(
            AvsEvent.recognize(
                "from b", 1, attempt=2, device_id="d01"
            ).to_bytes()
        )
        assert cloud.received_transcripts == ["from a", "from b"]
        assert cloud.duplicates_suppressed == 0
        assert [r.device_id for r in cloud.received] == ["d00", "d01"]

    def test_alert_dedup_scoped_per_device_too(self, cloud):
        ep = cloud.plaintext_endpoint
        ep.receive(AvsEvent.alert('{"a": 1}', 1, device_id="d00").to_bytes())
        ep.receive(
            AvsEvent.alert('{"b": 2}', 1, attempt=2, device_id="d01").to_bytes()
        )
        ep.receive(
            AvsEvent.alert('{"a": 1}', 1, attempt=2, device_id="d00").to_bytes()
        )
        assert cloud.alerts == [{"a": 1}, {"b": 2}]
        assert cloud.duplicates_suppressed == 1

    def test_empty_device_id_keeps_wire_bytes(self):
        # Single-device deployments (no device_id) must keep their
        # historical wire encoding: no deviceId key at all.
        assert b"deviceId" not in AvsEvent.recognize("x", 1).to_bytes()
        assert b"deviceId" not in AvsEvent.alert("{}", 1).to_bytes()
        assert b"deviceId" in AvsEvent.recognize(
            "x", 1, device_id="d07"
        ).to_bytes()


class TestTranscriptMatch:
    def test_exact(self):
        assert transcript_match("play some jazz", "play some jazz")

    def test_asr_noise_tolerated(self):
        assert transcript_match(
            "transfer five hundred dollars from city bank",
            "transfer five hundred dollars from bank",
        )

    def test_different_content_rejected(self):
        assert not transcript_match("play some jazz", "what is the weather")

    def test_empty_reference(self):
        assert transcript_match("", "")
        assert not transcript_match("", "anything here")


def utt(text, category=SensitiveCategory.CREDENTIALS):
    return Utterance(text=text, category=category)


class TestLeakAuditor:
    def test_full_leak(self):
        truth = [
            utt("the password is four two"),
            utt("play some jazz", SensitiveCategory.MUSIC),
        ]
        auditor = LeakAuditor(truth)
        report = auditor.report(["the password is four two", "play some jazz"])
        assert report.cloud_leak_rate == 1.0
        assert report.utility_rate == 1.0

    def test_perfect_filter(self):
        truth = [
            utt("the password is four two"),
            utt("play some jazz", SensitiveCategory.MUSIC),
        ]
        report = LeakAuditor(truth).report(["play some jazz"])
        assert report.cloud_leak_rate == 0.0
        assert report.utility_rate == 1.0

    def test_overblocking_hurts_utility(self):
        truth = [utt("play some jazz", SensitiveCategory.MUSIC)]
        report = LeakAuditor(truth).report([])
        assert report.utility_rate == 0.0

    def test_empty_ground_truth(self):
        report = LeakAuditor([]).report(["anything"])
        assert report.cloud_leak_rate == 0.0
        assert report.utility_rate == 1.0

    def test_wire_leak_detection(self):
        truth = [utt("the password is four two seven one")]
        report = LeakAuditor(truth).report(
            [], wire_bytes=[b"...the password is four two seven one..."]
        )
        assert report.wire_leak_rate == 1.0
        report2 = LeakAuditor(truth).report([], wire_bytes=[b"ciphertext9a8b"])
        assert report2.wire_leak_rate == 0.0

    def test_device_capture_decoding(self, vocoder, asr):
        text = "the password for the email is four two seven one"
        truth = [utt(text)]
        auditor = LeakAuditor(truth, reference_asr=asr)
        pcm_bytes = vocoder.render(text).astype("<i2").tobytes()
        decoded = auditor.decode_device_captures([pcm_bytes])
        assert decoded, "capture should decode"
        report = auditor.report([])
        assert report.device_leak_rate == 1.0

    def test_garbage_captures_do_not_count(self, asr):
        truth = [utt("the password is four two")]
        auditor = LeakAuditor(truth, reference_asr=asr)
        auditor.decode_device_captures([b"", b"\x01", b"\xff" * 501, b"\x00" * 100])
        assert auditor.report([]).device_leak_rate == 0.0

    def test_decode_requires_reference_asr(self):
        with pytest.raises(ValueError):
            LeakAuditor([]).decode_device_captures([b"1234"])
