"""Unit tests: attention and the Transformer encoder block."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml.attention import (
    FeedForward,
    MultiHeadSelfAttention,
    TransformerEncoderBlock,
    sinusoidal_positions,
)
from tests.test_ml_layers import check_input_grad, numeric_grad

RNG = np.random.default_rng(1)


class TestPositions:
    def test_shape(self):
        assert sinusoidal_positions(10, 16).shape == (10, 16)

    def test_bounded(self):
        enc = sinusoidal_positions(50, 32)
        assert np.abs(enc).max() <= 1.0 + 1e-6

    def test_rows_distinct(self):
        enc = sinusoidal_positions(20, 16)
        assert len({tuple(np.round(row, 5)) for row in enc}) == 20


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = MultiHeadSelfAttention(8, 2, RNG)
        x = RNG.standard_normal((2, 5, 8)).astype(np.float32)
        assert mha.forward(x).shape == (2, 5, 8)

    def test_dim_head_divisibility(self):
        with pytest.raises(ShapeError):
            MultiHeadSelfAttention(10, 3, RNG)

    def test_input_gradient(self):
        mha = MultiHeadSelfAttention(4, 2, RNG)
        x = RNG.standard_normal((1, 3, 4)).astype(np.float32)
        check_input_grad(mha, x, tol=5e-2)

    def test_projection_weight_gradient(self):
        mha = MultiHeadSelfAttention(4, 2, RNG)
        x = RNG.standard_normal((1, 3, 4)).astype(np.float32)
        out = mha.forward(x)
        for p in mha.params():
            p.zero_grad()
        mha.backward(np.ones_like(out))
        analytic = mha.wq.w.grad.copy()
        numeric = numeric_grad(
            lambda: float(mha.forward(x).sum()), mha.wq.w.value
        )
        assert np.allclose(analytic, numeric, atol=5e-2)

    def test_permutation_equivariance(self):
        """Self-attention without positions commutes with permutation."""
        mha = MultiHeadSelfAttention(8, 2, RNG)
        x = RNG.standard_normal((1, 6, 8)).astype(np.float32)
        out = mha.forward(x)
        perm = np.array([3, 1, 5, 0, 4, 2])
        out_perm = mha.forward(x[:, perm])
        assert np.allclose(out[:, perm], out_perm, atol=1e-4)

    def test_macs_grow_quadratically_in_seq(self):
        mha = MultiHeadSelfAttention(8, 2, RNG)
        assert mha.macs(64) > 2 * mha.macs(32)

    def test_param_count(self):
        mha = MultiHeadSelfAttention(8, 2, RNG)
        total = sum(p.value.size for p in mha.params())
        assert total == 4 * (8 * 8 + 8)  # 4 projections with bias


class TestFeedForward:
    def test_shape(self):
        ffn = FeedForward(8, 16, RNG)
        x = RNG.standard_normal((2, 5, 8)).astype(np.float32)
        assert ffn.forward(x).shape == (2, 5, 8)

    def test_input_gradient(self):
        ffn = FeedForward(4, 8, RNG)
        x = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        check_input_grad(ffn, x, tol=5e-2)

    def test_macs(self):
        assert FeedForward(8, 16, RNG).macs(10) == 10 * (8 * 16 * 2)


class TestEncoderBlock:
    def test_shape_preserved(self):
        block = TransformerEncoderBlock(8, 2, 16, RNG)
        x = RNG.standard_normal((2, 5, 8)).astype(np.float32)
        assert block.forward(x).shape == (2, 5, 8)

    def test_residual_path(self):
        """Zeroing all sublayer outputs leaves the residual identity."""
        block = TransformerEncoderBlock(8, 2, 16, RNG)
        block.mha.wo.w.value[...] = 0
        block.mha.wo.b.value[...] = 0
        block.ffn.fc2.w.value[...] = 0
        block.ffn.fc2.b.value[...] = 0
        x = RNG.standard_normal((1, 4, 8)).astype(np.float32)
        assert np.allclose(block.forward(x), x, atol=1e-5)

    def test_input_gradient(self):
        block = TransformerEncoderBlock(4, 2, 8, RNG)
        x = RNG.standard_normal((1, 3, 4)).astype(np.float32)
        check_input_grad(block, x, tol=8e-2)

    def test_params_collected(self):
        block = TransformerEncoderBlock(8, 2, 16, RNG)
        names = {p.name for p in block.params()}
        assert any("mha" in n for n in names)
        assert any("ffn" in n for n in names)
        assert any("ln1" in n for n in names)

    def test_macs_sum(self):
        block = TransformerEncoderBlock(8, 2, 16, RNG)
        assert block.macs(12) == block.mha.macs(12) + block.ffn.macs(12)
