"""Unit tests: I²S bus, controller register file, FIFO semantics."""

import struct

import numpy as np
import pytest

from repro.errors import BusProtocolError, FifoUnderrunError
from repro.peripherals.audio import AudioFormat, SilenceSource, ToneSource
from repro.peripherals.i2s import (
    CtrlBits,
    I2sBus,
    I2sController,
    I2sReg,
    StatusBits,
)
from repro.peripherals.microphone import DigitalMicrophone
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.trace import TraceLog


def make_controller(fifo_depth=64, fmt=None):
    return I2sController(SimClock(), TraceLog(), fmt=fmt, fifo_depth=fifo_depth)


def wire(controller, source=None):
    mic = DigitalMicrophone(source or ToneSource(), fmt=controller.format)
    I2sBus(controller, mic)
    return mic


def reg_write(ctrl, reg, value):
    ctrl.mmio_write(int(reg), struct.pack("<I", value))


def reg_read(ctrl, reg):
    return struct.unpack("<I", ctrl.mmio_read(int(reg), 4))[0]


def enable(ctrl):
    reg_write(ctrl, I2sReg.CTRL, int(CtrlBits.ENABLE | CtrlBits.RX_ENABLE))


class TestBusWiring:
    def test_format_mismatch_rejected(self):
        ctrl = make_controller(fmt=AudioFormat(sample_rate=16_000))
        mic = DigitalMicrophone(ToneSource(), fmt=AudioFormat(sample_rate=48_000))
        with pytest.raises(BusProtocolError):
            I2sBus(ctrl, mic)

    def test_double_attach_rejected(self):
        ctrl = make_controller()
        wire(ctrl)
        with pytest.raises(BusProtocolError):
            wire(ctrl)

    def test_bit_clock(self):
        ctrl = make_controller(fmt=AudioFormat(sample_rate=16_000, bit_depth=16))
        bus = I2sBus(ctrl, DigitalMicrophone(ToneSource(), fmt=ctrl.format))
        assert bus.bit_clock_hz == 16_000 * 16 * 2  # two word slots

    def test_capture_without_bus(self):
        ctrl = make_controller()
        enable(ctrl)
        with pytest.raises(BusProtocolError):
            ctrl.capture(4)


class TestCaptureAndFifo:
    def test_capture_requires_enable(self):
        ctrl = make_controller()
        wire(ctrl)
        assert ctrl.capture(10) == 0
        assert ctrl.fifo_level == 0

    def test_capture_fills_fifo(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        assert ctrl.capture(10) == 10
        assert ctrl.fifo_level == 10

    def test_fifo_word_layout(self):
        ctrl = make_controller()
        wire(ctrl, source=ToneSource(amplitude=0.9))
        enable(ctrl)
        ctrl.capture(3)
        words = [ctrl.pop_word() for _ in range(3)]
        seqs = [w >> 16 for w in words]
        assert seqs == [0, 1, 2]

    def test_overrun_drops_and_sets_sticky(self):
        ctrl = make_controller(fifo_depth=8)
        wire(ctrl)
        enable(ctrl)
        accepted = ctrl.capture(20)
        assert accepted == 8
        status = reg_read(ctrl, I2sReg.STATUS)
        assert status & StatusBits.OVERRUN
        assert reg_read(ctrl, I2sReg.OVERRUN_COUNT) == 12

    def test_overrun_clear_write_one(self):
        ctrl = make_controller(fifo_depth=4)
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(8)
        reg_write(ctrl, I2sReg.STATUS, int(StatusBits.OVERRUN))
        assert not reg_read(ctrl, I2sReg.STATUS) & StatusBits.OVERRUN

    def test_underrun_raises(self):
        ctrl = make_controller()
        wire(ctrl)
        with pytest.raises(FifoUnderrunError):
            ctrl.pop_word()

    def test_drain_words(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(10)
        assert len(ctrl.drain_words(6)) == 6
        assert len(ctrl.drain_words(100)) == 4

    def test_fifo_reset(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(5)
        reg_write(ctrl, I2sReg.CTRL, int(CtrlBits.FIFO_RESET))
        assert ctrl.fifo_level == 0

    def test_capture_advances_peripheral_time(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(16_000)  # one second of audio
        assert ctrl.clock.cycles_in(CycleDomain.PERIPHERAL) == int(ctrl.clock.freq_hz)


class TestRegisterFile:
    def test_status_empty_flag(self):
        ctrl = make_controller()
        wire(ctrl)
        assert reg_read(ctrl, I2sReg.STATUS) & StatusBits.RX_EMPTY

    def test_status_enabled_flag(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        assert reg_read(ctrl, I2sReg.STATUS) & StatusBits.ENABLED

    def test_sample_rate_register(self):
        ctrl = make_controller(fmt=AudioFormat(sample_rate=8_000))
        assert reg_read(ctrl, I2sReg.SAMPLE_RATE) == 8_000

    def test_frame_count_register(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(7)
        assert reg_read(ctrl, I2sReg.FRAME_COUNT) == 7

    def test_fifo_register_pops(self):
        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(2)
        reg_read(ctrl, I2sReg.FIFO)
        assert reg_read(ctrl, I2sReg.FIFO_LEVEL) == 1

    def test_non_word_access_rejected(self):
        ctrl = make_controller()
        with pytest.raises(BusProtocolError):
            ctrl.mmio_read(int(I2sReg.STATUS), 2)
        with pytest.raises(BusProtocolError):
            ctrl.mmio_write(int(I2sReg.CTRL), b"\x01")

    def test_unknown_register_rejected(self):
        ctrl = make_controller()
        with pytest.raises(BusProtocolError):
            ctrl.mmio_read(0x80, 4)
        with pytest.raises(BusProtocolError):
            ctrl.mmio_write(0x80, b"\x00" * 4)


class TestSignalIntegrity:
    def test_samples_survive_fifo(self):
        """Data clocked in equals data drained (no FIFO pressure)."""
        from repro.peripherals.audio import BufferSource

        expect = (np.arange(-50, 50) * 100).astype(np.int16)
        ctrl = make_controller(fifo_depth=128)
        wire(ctrl, source=BufferSource(expect))
        enable(ctrl)
        ctrl.capture(100)
        got = []
        while ctrl.fifo_level:
            sample = ctrl.pop_word() & 0xFFFF
            got.append(sample - 0x10000 if sample >= 0x8000 else sample)
        assert np.array_equal(np.array(got, dtype=np.int16), expect)
