"""Backpressure-aware multi-tenant cloud ingestion, device loop included.

Three layers, mirroring the architecture:

* the admission tier alone — token buckets, bounded tenant queues,
  deterministic ``Throttled`` verdicts, admission-time dedup, and the
  clock-driven commit loop (direct :class:`VoiceCloudService` tests);
* the device loop — a ``Throttled`` verdict opens a server-directed
  backpressure window (deferred deliveries with zero wire traffic),
  throttled payloads spill sealed, and the queue drains exactly-once
  after the window closes;
* the equivalence proof — with admission sized to never throttle, wire
  bytes, decisions and the clock are byte-identical to a legacy
  (``ingestion=None``) run, so pre-existing baselines stay pinned.

Plus the satellite regressions: the typed
:class:`~repro.errors.RelayExhaustedError` contract and the bounded
store-and-forward queue's fail-closed shedding and drain edge cases.
"""

import json

import pytest

from repro.cloud.service import (
    IngestionConfig,
    VoiceCloudService,
    tenant_shard,
)
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_HEARTBEAT, CMD_STATS
from repro.errors import (
    CryptoError,
    RelayDeliveryError,
    RelayError,
    RelayExhaustedError,
    RelayQueueFullError,
    RelayThrottledError,
)
from repro.obs.metrics import MetricsRegistry
from repro.relay.avs import AvsEvent
from repro.relay.queue import StoreForwardQueue
from repro.relay.relay import RetryPolicy
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.rng import SimRng
from tests.test_core_pipeline import MIXED, make_workload
from tests.test_relay_faults import BENIGN, FakeStorage, ScriptedFaults


def make_service(config, seed=5):
    clock = SimClock()
    metrics = MetricsRegistry()
    service = VoiceCloudService(
        SimRng(seed, "cloud"), clock=clock, metrics=metrics, ingestion=config
    )
    return service, clock, metrics


def send(service, transcript, dialog_id, attempt=1, device="dev-a"):
    """One plaintext Recognize straight at the service; parsed reply."""
    event = AvsEvent.recognize(
        transcript, dialog_id, attempt=attempt, device_id=device
    )
    return json.loads(service.plaintext_endpoint.receive(event.to_bytes()))


class TestIngestionConfig:
    def test_sizing_validated(self):
        with pytest.raises(ValueError):
            IngestionConfig(shards=0)
        with pytest.raises(ValueError):
            IngestionConfig(tenant_queue_depth=0)
        with pytest.raises(ValueError):
            IngestionConfig(bucket_capacity=0)
        with pytest.raises(ValueError):
            IngestionConfig(refill_cycles_per_token=-1)
        with pytest.raises(ValueError):
            IngestionConfig(admission_base_cycles=-5)

    def test_overload_profile_is_starved(self):
        config = IngestionConfig.overload()
        # One token, refilling on a seconds scale: far below the cadence
        # any simulated device offers, so throttling is guaranteed.
        assert config.bucket_capacity == 1
        assert config.refill_cycles_per_token >= 1_000_000_000

    def test_requires_a_clock(self):
        with pytest.raises(ValueError, match="clock"):
            VoiceCloudService(
                SimRng(1, "cloud"), ingestion=IngestionConfig()
            )

    def test_tenant_shard_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for device in ("", "dev-a", "dev-b", "device-0042"):
                first = tenant_shard(device, shards)
                assert 0 <= first < shards
                assert tenant_shard(device, shards) == first


class TestAdmissionVerdicts:
    """The admission tier alone, driven by a hand-advanced clock."""

    # Commit loop parked out of the way: these tests isolate admission.
    SLOW_DRAIN = IngestionConfig(
        shards=1,
        tenant_queue_depth=8,
        bucket_capacity=2,
        refill_cycles_per_token=1_000_000,
        service_cycles_per_record=10**12,
    )

    def test_tokens_admit_then_throttle(self):
        service, _, metrics = make_service(self.SLOW_DRAIN)
        assert send(service, "one", 1)["directive"] == "Response"
        assert send(service, "two", 2)["directive"] == "Response"
        verdict = send(service, "three", 3)
        assert verdict["directive"] == "Throttled"
        assert verdict["retryAfterCycles"] >= 1
        assert (service.accepted, service.throttled) == (2, 1)
        counters = metrics.counters("cloud.ingest")
        assert counters["cloud.ingest.accepted"] == 2
        assert counters["cloud.ingest.throttled"] == 1

    def test_accepted_reply_byte_identical_to_legacy(self):
        service, _, _ = make_service(self.SLOW_DRAIN)
        legacy = VoiceCloudService(SimRng(5, "cloud"))
        event = AvsEvent.recognize("hello there", 1, device_id="dev-a")
        assert (
            service.plaintext_endpoint.receive(event.to_bytes())
            == legacy.plaintext_endpoint.receive(event.to_bytes())
        )

    def test_retry_hint_covers_token_deficit(self):
        service, _, _ = make_service(self.SLOW_DRAIN)
        send(service, "one", 1)
        send(service, "two", 2)
        verdict = send(service, "three", 3)
        # Empty bucket: the hint must at least span one full refill.
        assert verdict["retryAfterCycles"] >= (
            self.SLOW_DRAIN.refill_cycles_per_token
        )

    def test_refill_restores_admission(self):
        service, clock, _ = make_service(self.SLOW_DRAIN)
        send(service, "one", 1)
        send(service, "two", 2)
        assert send(service, "three", 3)["directive"] == "Throttled"
        clock.advance(
            self.SLOW_DRAIN.refill_cycles_per_token, CycleDomain.IDLE
        )
        assert send(service, "three", 3, attempt=2)["directive"] == "Response"

    def test_throttled_event_never_registers_for_dedup(self):
        """A throttled event must not poison its own later re-send."""
        service, clock, _ = make_service(self.SLOW_DRAIN)
        send(service, "one", 1)
        send(service, "two", 2)
        assert send(service, "spike", 7)["directive"] == "Throttled"
        clock.advance(
            self.SLOW_DRAIN.refill_cycles_per_token, CycleDomain.IDLE
        )
        send(service, "spike", 7, attempt=2)
        assert service.duplicates_suppressed == 0
        service.flush()
        assert service.received_transcripts.count("spike") == 1

    def test_admitted_uncommitted_retry_is_suppressed(self):
        """Dedup keys register at admission, not commit: a reconnecting
        device retrying an admitted-but-pending event must not make the
        commit loop record the decision twice."""
        service, _, metrics = make_service(self.SLOW_DRAIN)
        send(service, "pending", 9)
        assert service.pending_depth() == 1
        reply = send(service, "pending", 9, attempt=2)
        assert reply["directive"] == "Response"
        assert service.duplicates_suppressed == 1
        assert service.accepted == 1
        assert service.pending_depth() == 1
        assert metrics.counters()["cloud.ingest.deduped"] == 1
        service.flush()
        assert service.received_transcripts == ["pending"]

    def test_full_tenant_queue_throttles_despite_tokens(self):
        config = IngestionConfig(
            shards=1,
            tenant_queue_depth=1,
            bucket_capacity=100,
            refill_cycles_per_token=1,
            service_cycles_per_record=10**12,
        )
        service, _, _ = make_service(config)
        assert send(service, "one", 1)["directive"] == "Response"
        assert send(service, "two", 2)["directive"] == "Throttled"

    def test_tenants_are_isolated(self):
        """One tenant's spike cannot starve another's admission."""
        config = IngestionConfig(
            shards=2,
            tenant_queue_depth=8,
            bucket_capacity=1,
            refill_cycles_per_token=10**12,
            service_cycles_per_record=10**12,
        )
        service, _, _ = make_service(config)
        send(service, "a1", 1, device="dev-a")
        assert (
            send(service, "a2", 2, device="dev-a")["directive"] == "Throttled"
        )
        assert (
            send(service, "b1", 1, device="dev-b")["directive"] == "Response"
        )

    def test_drain_commits_as_the_clock_advances(self):
        config = IngestionConfig(
            shards=1,
            tenant_queue_depth=100,
            bucket_capacity=100,
            refill_cycles_per_token=1,
            service_cycles_per_record=1_000,
        )
        service, clock, metrics = make_service(config)
        send(service, "a", 1)
        assert service.received_transcripts == []  # admitted, not committed
        clock.advance(2_500, CycleDomain.IDLE)
        send(service, "b", 2)  # arrival drives the lazy drain loop
        assert service.received_transcripts == ["a"]
        assert service.flush() == 1
        assert service.received_transcripts == ["a", "b"]
        assert service.committed == 2
        assert metrics.counters()["cloud.ingest.committed"] == 2
        assert metrics.gauges()["cloud.ingest.queue_depth"] == 1.0

    def test_commit_round_robins_across_tenants(self):
        """No tenant starves behind a noisy neighbour's backlog."""
        config = IngestionConfig(
            shards=1,
            tenant_queue_depth=100,
            bucket_capacity=100,
            refill_cycles_per_token=1,
            service_cycles_per_record=10**12,
        )
        service, _, _ = make_service(config)
        send(service, "a1", 1, device="dev-a")
        send(service, "a2", 2, device="dev-a")
        send(service, "b1", 1, device="dev-b")
        service.flush()
        assert service.received_transcripts == ["a1", "b1", "a2"]

    def test_admission_latency_observed_per_accept(self):
        service, _, metrics = make_service(self.SLOW_DRAIN)
        send(service, "one", 1)
        send(service, "two", 2)
        send(service, "three", 3)  # throttled: no admission sample
        hist = metrics.histogram("cloud.ingest.admission_cycles")
        assert hist.count == 2
        assert hist.quantile(0.0) >= self.SLOW_DRAIN.admission_base_cycles


class TestDeviceBackpressure:
    """The full TA↔cloud loop under the ``overload`` profile."""

    def _overloaded(self, provisioned, seed, **pipeline_kwargs):
        platform = IotPlatform.create(
            seed=seed, ingestion=IngestionConfig.overload()
        )
        pipeline = SecurePipeline(
            platform, provisioned.bundle, **pipeline_kwargs
        )
        return platform, pipeline

    def test_overload_throttles_into_sealed_queue(self, provisioned):
        platform, pipeline = self._overloaded(provisioned, seed=431)
        run = pipeline.process(make_workload(provisioned, BENIGN * 3))

        statuses = [r.relay_status for r in run.results]
        assert statuses == ["sent"] + ["throttled"] * 5
        assert run.lost_count() == 0 and run.shed_count() == 0
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["sent"] == 1
        assert stats["throttled"] == 1        # one verdict on the wire...
        assert stats["throttle_deferred"] == 4  # ...then the window holds
        assert stats["retries"] == 0  # backpressure burns no retry budget
        assert stats["queue_depth"] == 5
        assert platform.cloud.throttled == 1

    def test_deferred_throttle_sends_no_wire_bytes(self, provisioned):
        platform, pipeline = self._overloaded(provisioned, seed=432)
        workload = make_workload(provisioned, BENIGN * 2)
        net = platform.supplicant.net
        assert pipeline.process_item(workload.items[0]).relay_status == "sent"
        # The Throttled verdict itself is a wire round trip...
        second = pipeline.process_item(workload.items[1])
        assert second.relay_status == "throttled"
        frames_after_verdict = len(net.wire_log)
        # ...but while the window holds, deliveries defer locally.
        for item in workload.items[2:]:
            assert pipeline.process_item(item).relay_status == "throttled"
        assert len(net.wire_log) == frames_after_verdict
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["throttle_deferred"] == 2

    def test_throttle_queue_drain_round_trip_exactly_once(self, provisioned):
        """The acceptance round trip: overload throttles decisions into
        the sealed queue; once the server-directed window passes, drains
        re-send them and the cloud records every decision exactly once."""
        platform, pipeline = self._overloaded(provisioned, seed=433)
        run = pipeline.process(make_workload(provisioned, BENIGN + BENIGN[:1]))
        assert [r.relay_status for r in run.results] == [
            "sent", "throttled", "throttled",
        ]

        clock = platform.machine.clock
        drained_total = 0
        for _ in range(2):  # one token per window: two drains to empty
            clock.advance(12_000_000_000, CycleDomain.IDLE)
            directive = pipeline.session.invoke(CMD_HEARTBEAT)
            assert directive["directive"] == "Ack"
            stats = pipeline.session.invoke(CMD_STATS)["relay"]
            drained_total = stats["drained"]
        assert drained_total == 2
        assert stats["queue_depth"] == 0

        platform.cloud.flush()
        received = platform.cloud.received_transcripts
        assert sorted(received) == sorted(r.payload for r in run.results)
        # Exactly once, keyed by dialog id (transcripts may repeat).
        dialog_ids = [r.dialog_id for r in platform.cloud.received]
        assert len(dialog_ids) == len(set(dialog_ids)) == 3
        assert platform.cloud.duplicates_suppressed == 0
        # Drained re-sends advertise their full attempt history: the
        # verdict-throttled payload burned one wire attempt before
        # spilling (so its re-send is attempt 2); the deferred one never
        # reached the wire (its re-send is attempt 1, its first ever).
        attempts = sorted(r.attempt for r in platform.cloud.received)
        assert attempts == [1, 1, 2]

    def test_bounded_queue_sheds_fail_closed_under_overload(self, provisioned):
        platform, pipeline = self._overloaded(
            provisioned, seed=434, queue_max_depth=1
        )
        run = pipeline.process(make_workload(provisioned, BENIGN * 2))
        statuses = [r.relay_status for r in run.results]
        assert statuses == ["sent", "throttled", "shed", "shed"]
        # Nothing is ever lost silently: every loss is an accounted shed.
        assert run.lost_count() == run.shed_count() == 2
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["shed"] == 2
        assert stats["queue_depth"] == 1
        metrics = platform.machine.obs.metrics
        assert metrics.counters()["relay.queue.rejected"] == 2

    def test_retry_of_admitted_event_deduped_at_ingestion(self, provisioned):
        """At-least-once wire, exactly-once commit — now through the
        admission tier: the first attempt was admitted (key registered,
        record still pending) and only the reply was corrupted, so the
        retry must dedup against the *pending* record."""
        platform = IotPlatform.create(
            seed=435, ingestion=IngestionConfig.unthrottled()
        )
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])
        platform.supplicant.net.set_fault_injector(ScriptedFaults(["corrupt"]))
        result = pipeline.process_item(workload.items[1])
        assert result.relay_status == "sent"
        assert result.relay_attempts == 2
        assert platform.cloud.duplicates_suppressed == 1
        platform.cloud.flush()
        assert platform.cloud.received_transcripts.count(result.payload) == 1

    def test_heartbeat_reports_throttled_window(self, provisioned):
        platform, pipeline = self._overloaded(provisioned, seed=436)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])
        pipeline.process_item(workload.items[1])  # opens the window
        directive = pipeline.session.invoke(CMD_HEARTBEAT)
        assert directive["directive"] == "error"
        assert directive["reason"] == "throttled"
        assert directive["retry_after_cycles"] >= 1
        assert not pipeline.session.closed


class TestBackpressureDisabledByteIdentity:
    """Acceptance: admission always-accept == legacy, byte for byte."""

    def _run_once(self, provisioned, ingestion):
        platform = IotPlatform.create(seed=437, ingestion=ingestion)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        run = pipeline.process(make_workload(provisioned, MIXED))
        platform.cloud.flush()
        return {
            "decisions": [
                (
                    r.transcript,
                    r.sensitive_predicted,
                    r.forwarded,
                    r.payload,
                    r.relay_status,
                    r.relay_attempts,
                    r.latency_cycles,
                )
                for r in run.results
            ],
            "wire": list(platform.supplicant.net.wire_log),
            "final_cycle": platform.machine.clock.now,
            "cloud": platform.cloud.received_transcripts,
        }

    def test_unthrottled_ingestion_matches_legacy_exactly(self, provisioned):
        legacy = self._run_once(provisioned, None)
        admitted = self._run_once(provisioned, IngestionConfig.unthrottled())
        assert legacy == admitted
        assert legacy["wire"]  # the comparison actually saw traffic


class TestRelayExhausted:
    """Satellite: the typed exhaustion contract of RelayModule._deliver."""

    def test_exception_carries_attempts_and_backoff(self):
        exc = RelayExhaustedError("gone", attempts=4, backoff_cycles=321)
        assert isinstance(exc, RelayDeliveryError)
        assert exc.attempts == 4
        assert exc.backoff_cycles == 321
        assert "gone" in str(exc)

    def test_throttled_is_not_exhaustion(self):
        exc = RelayThrottledError(retry_after_cycles=9, attempts=1)
        assert isinstance(exc, RelayDeliveryError)
        assert not isinstance(exc, RelayExhaustedError)
        assert exc.retry_after_cycles == 9

    def test_deliver_raises_typed_exhaustion(self):
        """Total outage: every attempt burns backoff, and the raised
        error accounts for all of it — the regression the satellite
        pins, because callers budget on these two numbers."""
        from repro.errors import TeeCommunicationError
        from repro.relay.relay import RelayModule

        class DeadLinkCtx:
            """Minimal TaContext stand-in: every RPC finds the link down."""

            def __init__(self):
                self.metrics = MetricsRegistry()
                self.cycles = 0
                costs = type(
                    "Costs", (), {
                        "crypto_cycles_per_byte": 0.0,
                        "handshake_cycles": 100,
                    },
                )()
                machine = type("Machine", (), {"costs": costs})()
                self._os = type("Os", (), {"machine": machine})()

            def now(self):
                return self.cycles

            def span(self, name, category="", **fields):
                import contextlib

                return contextlib.nullcontext()

            def compute(self, cycles):
                self.cycles += int(cycles)

            def rpc(self, service, method, *args):
                raise TeeCommunicationError("link down")

            def log(self, name, **fields):
                pass

        ctx = DeadLinkCtx()
        relay = RelayModule(
            ctx, "host", 443, pinned_server_public=b"\x00" * 32,
            rng=SimRng(9, "relay"),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RelayExhaustedError) as excinfo:
            relay.send_transcript("probe payload")
        assert excinfo.value.attempts == 3
        assert excinfo.value.backoff_cycles > 0
        assert relay.stats["failed"] == 1
        assert relay.stats["retries"] == 2
        assert relay.stats["backoff_cycles"] == excinfo.value.backoff_cycles
        assert ctx.metrics.counters()["relay.failed"] == 1

    def test_exhaustion_accounted_end_to_end(self, provisioned):
        """The spill path surfaces the exhaustion accounting: attempts
        on the result, failed/retries/backoff in the relay stats."""
        platform = IotPlatform.create(seed=438)
        pipeline = SecurePipeline(
            platform, provisioned.bundle,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        platform.supplicant.net._endpoints.clear()
        workload = make_workload(provisioned, BENIGN[:1])
        result = pipeline.process_item(workload.items[0])
        assert result.relay_status == "queued"
        assert result.relay_attempts == 3
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["failed"] == 1
        assert stats["retries"] == 2
        assert stats["backoff_cycles"] > 0


class CorruptibleStorage(FakeStorage):
    """FakeStorage whose reads can be forced to fail unsealing."""

    def __init__(self):
        super().__init__()
        self.corrupt = set()

    def get(self, name):
        if name in self.corrupt:
            raise CryptoError(f"unseal failed: {name}")
        return super().get(name)


class TestBoundedQueue:
    """Satellite: bounded depth, fail-closed shedding, drain edges."""

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            StoreForwardQueue(FakeStorage(), max_depth=0)

    def test_full_queue_refuses_the_newest(self):
        store = FakeStorage()
        queue = StoreForwardQueue(store, max_depth=2)
        queue.enqueue("a")
        queue.enqueue("b")
        with pytest.raises(RelayQueueFullError) as excinfo:
            queue.enqueue("c")
        assert excinfo.value.depth == 2
        assert queue.rejected == 1
        # Fail-closed means deterministic: the accounted entries stay,
        # nothing was evicted and nothing partial hit storage.
        assert queue.names == ["relayq/00000000", "relayq/00000001"]
        assert len(store.blobs) == 2

    def test_rejection_preserves_fifo_drain(self):
        queue = StoreForwardQueue(FakeStorage(), max_depth=2)
        queue.enqueue("a")
        queue.enqueue("b")
        with pytest.raises(RelayQueueFullError):
            queue.enqueue("c")
        sent = []
        assert queue.drain(lambda p, m: sent.append(p)) == 2
        assert sent == ["a", "b"]

    def test_mid_drain_refailure_preserves_fifo(self):
        """The network dying again mid-drain must not reorder: the
        failed entry stays at the head and the next drain resumes there."""
        store = FakeStorage()
        queue = StoreForwardQueue(store)
        for payload in ("a", "b", "c"):
            queue.enqueue(payload)

        def dies_at_b(payload, meta):
            if payload == "b":
                raise RelayError("link died mid-drain")

        assert queue.drain(dies_at_b) == 1
        assert queue.names == ["relayq/00000001", "relayq/00000002"]
        sent = []
        assert queue.drain(lambda p, m: sent.append(p)) == 2
        assert sent == ["b", "c"]
        assert store.blobs == {}

    def test_corrupt_head_pins_the_queue(self):
        """An unsealable head entry stops the drain without being lost:
        it stays at depth (surfaced by the queue-depth SLO) and a later
        clean read drains it in order."""
        store = CorruptibleStorage()
        queue = StoreForwardQueue(store)
        first = queue.enqueue("a")
        queue.enqueue("b")
        store.corrupt.add(first)
        sent = []
        assert queue.drain(lambda p, m: sent.append(p)) == 0
        assert sent == []
        assert queue.names == [first, "relayq/00000001"]
        # Transient corruption clears: FIFO order still holds.
        store.corrupt.clear()
        assert queue.drain(lambda p, m: sent.append(p)) == 2
        assert sent == ["a", "b"]

    def test_drained_resends_dedup_idempotent_at_new_service(self):
        """A drained re-send carries the original dialog id and attempt
        count, so even a *re*-drained payload (reply lost after a first
        successful drain) commits exactly once at the ingestion tier."""
        service, _, _ = make_service(
            IngestionConfig(
                shards=1,
                tenant_queue_depth=100,
                bucket_capacity=100,
                refill_cycles_per_token=1,
                service_cycles_per_record=10**12,
            )
        )

        def resend(payload, meta):
            reply = send(
                service,
                payload,
                meta["dialog_id"],
                attempt=int(meta["attempts"]) + 1,
                device="dev-a",
            )
            if reply["directive"] == "Throttled":
                raise RelayThrottledError(
                    retry_after_cycles=reply["retryAfterCycles"], attempts=1
                )

        queue = StoreForwardQueue(FakeStorage())
        queue.enqueue("spilled", meta={"dialog_id": 11, "attempts": 2})
        assert queue.drain(resend) == 1
        # The drain's reply was lost: the payload spills and drains again.
        requeued = StoreForwardQueue(FakeStorage())
        requeued.enqueue("spilled", meta={"dialog_id": 11, "attempts": 3})
        assert requeued.drain(resend) == 1
        assert service.duplicates_suppressed == 1
        assert service.accepted == 1
        service.flush()
        assert service.received_transcripts == ["spilled"]
