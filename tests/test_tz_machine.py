"""Unit tests: composed machine, CPU worlds, secure monitor."""

import pytest

from repro.errors import SecureAccessViolation, SmcError, WorldStateError
from repro.sim.clock import CycleDomain
from repro.tz.machine import MachineConfig, TrustZoneMachine
from repro.tz.monitor import SmcFunction
from repro.tz.worlds import World


class TestMemoryMap:
    def test_default_regions_present(self, machine):
        names = {r.name for r in machine.memory.regions()}
        assert {"dram_ns", "shmem", "dram_secure", "secure_heap", "mmio"} <= names

    def test_boot_world_is_normal(self, machine):
        assert machine.world() is World.NORMAL

    def test_secure_regions_protected_at_boot(self, machine):
        for name in ("dram_secure", "secure_heap"):
            region = machine.memory.region(name)
            with pytest.raises(SecureAccessViolation):
                machine.memory.read(region.base, 4, World.NORMAL)

    def test_config_sizes_respected(self):
        config = MachineConfig(secure_heap_bytes=1024 * 1024)
        machine = TrustZoneMachine(config)
        assert machine.secure_heap.total_bytes == 1024 * 1024


class TestCpuWorlds:
    def test_execute_charges_current_world(self, machine):
        machine.cpu.execute(100)
        assert machine.clock.cycles_in(CycleDomain.NORMAL_CPU) == 100
        assert machine.clock.cycles_in(CycleDomain.SECURE_CPU) == 0

    def test_require_world(self, machine):
        machine.cpu.require_world(World.NORMAL)  # no raise
        with pytest.raises(WorldStateError):
            machine.cpu.require_world(World.SECURE)

    def test_world_other(self):
        assert World.NORMAL.other is World.SECURE
        assert World.SECURE.other is World.NORMAL


class TestSecureMonitor:
    def test_smc_runs_handler_in_secure_world(self, machine):
        seen = {}

        def handler():
            seen["world"] = machine.cpu.world
            return "ok"

        machine.monitor.register(SmcFunction.CALL_WITH_ARG, handler)
        result = machine.monitor.smc(SmcFunction.CALL_WITH_ARG)
        assert result == "ok"
        assert seen["world"] is World.SECURE
        assert machine.cpu.world is World.NORMAL  # restored

    def test_smc_restores_world_on_handler_exception(self, machine):
        def handler():
            raise RuntimeError("boom")

        machine.monitor.register(SmcFunction.CALL_WITH_ARG, handler)
        with pytest.raises(RuntimeError):
            machine.monitor.smc(SmcFunction.CALL_WITH_ARG)
        assert machine.cpu.world is World.NORMAL

    def test_unknown_smc_rejected(self, machine):
        with pytest.raises(SmcError):
            machine.monitor.smc(SmcFunction.ENABLE_SHM_CACHE)

    def test_duplicate_registration_rejected(self, machine):
        machine.monitor.register(SmcFunction.CALL_WITH_ARG, lambda: None)
        with pytest.raises(SmcError):
            machine.monitor.register(SmcFunction.CALL_WITH_ARG, lambda: None)

    def test_smc_from_secure_world_rejected(self, machine):
        machine.monitor.register(SmcFunction.CALL_WITH_ARG, lambda: None)
        machine.cpu._set_world(World.SECURE)
        with pytest.raises(WorldStateError):
            machine.monitor.smc(SmcFunction.CALL_WITH_ARG)

    def test_smc_charges_monitor_cycles(self, machine):
        machine.monitor.register(SmcFunction.CALL_WITH_ARG, lambda: None)
        machine.monitor.smc(SmcFunction.CALL_WITH_ARG)
        # Two transitions (enter + exit), each a full switch cost.
        expect = 2 * machine.costs.full_world_switch_cycles()
        assert machine.clock.cycles_in(CycleDomain.MONITOR) == expect

    def test_smc_counts_switches(self, machine):
        machine.monitor.register(SmcFunction.CALL_WITH_ARG, lambda: None)
        machine.monitor.smc(SmcFunction.CALL_WITH_ARG)
        assert machine.cpu.switch_count == 2
        assert machine.monitor.smc_count == 1

    def test_rpc_leg_runs_in_normal_world(self, machine):
        seen = {}

        def handler():
            return machine.monitor.secure_call_to_normal(
                lambda: seen.setdefault("world", machine.cpu.world)
            )

        machine.monitor.register(SmcFunction.CALL_WITH_ARG, handler)
        machine.monitor.smc(SmcFunction.CALL_WITH_ARG)
        assert seen["world"] is World.NORMAL

    def test_rpc_from_normal_world_rejected(self, machine):
        with pytest.raises(WorldStateError):
            machine.monitor.secure_call_to_normal(lambda: None)


class TestSecurePeripheral:
    def test_claiming_requires_secure_world(self, machine):
        region = machine.memory.region("mmio")
        with pytest.raises(SecureAccessViolation):
            machine.secure_peripheral(region)

    def test_claimed_region_blocked_from_normal(self, machine):
        region = machine.memory.region("mmio")
        machine.cpu._set_world(World.SECURE)
        machine.secure_peripheral(region)
        machine.cpu._set_world(World.NORMAL)
        with pytest.raises(SecureAccessViolation):
            machine.memory.read(region.base, 4, World.NORMAL)


class TestSummary:
    def test_summary_keys(self, machine):
        summary = machine.summary()
        assert {"cycles", "world_switches", "smc_calls",
                "tzasc_violations"} <= set(summary)
