"""Unit tests: filter policies and bundle accounting."""

import pytest

from repro.core.filter import (
    REDACTED_PLACEHOLDER,
    FilterPolicy,
    SensitiveFilter,
)
from repro.errors import PolicyError


@pytest.fixture
def trained_filter(provisioned):
    return provisioned.bundle.filter


class TestSensitiveFilter:
    def test_benign_passes_through(self, trained_filter):
        decision = trained_filter.apply("what is the weather like today")
        assert not decision.sensitive
        assert decision.forwarded
        assert decision.payload == "what is the weather like today"
        assert not decision.blocked

    def test_sensitive_dropped(self, trained_filter):
        decision = trained_filter.apply(
            "the password for the email is four two seven one"
        )
        assert decision.sensitive
        assert not decision.forwarded
        assert decision.payload is None
        assert decision.blocked

    def test_probability_reported(self, trained_filter):
        decision = trained_filter.apply("my diabetes has been getting worse lately")
        assert 0.0 <= decision.probability <= 1.0
        assert decision.probability >= trained_filter.threshold

    def test_redact_policy(self, provisioned):
        f = SensitiveFilter(
            provisioned.bundle.filter.classifier,
            provisioned.bundle.filter.tokenizer,
            policy=FilterPolicy.REDACT,
        )
        decision = f.apply("the password for the email is four two seven one")
        assert decision.forwarded
        assert decision.payload == REDACTED_PLACEHOLDER

    def test_hash_policy(self, provisioned):
        f = SensitiveFilter(
            provisioned.bundle.filter.classifier,
            provisioned.bundle.filter.tokenizer,
            policy=FilterPolicy.HASH,
        )
        a = f.apply("the password for the email is four two seven one")
        b = f.apply("my social security number is nine eight three five")
        assert a.payload.startswith("hashed:")
        assert b.payload.startswith("hashed:")
        assert a.payload != b.payload
        # Original words absent from the hash payload.
        assert "password" not in a.payload

    def test_threshold_validation(self, provisioned):
        with pytest.raises(PolicyError):
            SensitiveFilter(
                provisioned.bundle.filter.classifier,
                provisioned.bundle.filter.tokenizer,
                threshold=0.0,
            )

    def test_threshold_tradeoff(self, provisioned):
        """Lower threshold blocks at least as much as a higher one."""
        clf = provisioned.bundle.filter.classifier
        tok = provisioned.bundle.filter.tokenizer
        texts = [u.text for u in provisioned.test_corpus.utterances[:50]]
        strict = SensitiveFilter(clf, tok, threshold=0.05)
        lax = SensitiveFilter(clf, tok, threshold=0.95)
        blocked_strict = sum(strict.apply(t).sensitive for t in texts)
        blocked_lax = sum(lax.apply(t).sensitive for t in texts)
        assert blocked_strict >= blocked_lax


class TestFilterBundleAccounting:
    def test_model_size_includes_asr(self, provisioned):
        bundle = provisioned.bundle
        assert bundle.model_size_bytes > bundle.classifier_size()

    def test_inference_macs_positive(self, provisioned):
        assert provisioned.bundle.inference_macs() > 0

    def test_asr_macs_scale_with_audio(self, provisioned):
        bundle = provisioned.bundle
        assert bundle.asr_macs(32_000) > bundle.asr_macs(16_000)

    def test_end_to_end_accuracy(self, provisioned):
        """Provisioned bundle classifies held-out utterances well."""
        bundle = provisioned.bundle
        correct = 0
        sample = provisioned.test_corpus.utterances[:80]
        for u in sample:
            decision = bundle.filter.apply(u.text)
            correct += decision.sensitive == u.sensitive
        assert correct / len(sample) > 0.9
