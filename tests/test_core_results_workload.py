"""Unit tests: workloads and run-result aggregation."""

import numpy as np
import pytest

from repro.core.results import PipelineRunResult, UtteranceResult
from repro.core.workload import UtteranceWorkload, WorkloadItem
from repro.ml.dataset import Corpus, SensitiveCategory, Utterance
from repro.sim.clock import CycleDomain


def utt(text="hello", sensitive=False):
    category = (
        SensitiveCategory.CREDENTIALS if sensitive else SensitiveCategory.MUSIC
    )
    return Utterance(text=text, category=category)


def result(
    sensitive=False, predicted=None, forwarded=None, latency=1000,
    energy=1.0, peripheral=0,
):
    predicted = sensitive if predicted is None else predicted
    forwarded = (not predicted) if forwarded is None else forwarded
    u = utt(sensitive=sensitive)
    return UtteranceResult(
        utterance=u,
        transcript=u.text,
        sensitive_predicted=predicted,
        forwarded=forwarded,
        payload=u.text if forwarded else None,
        latency_cycles=latency,
        energy_mj=energy,
        domain_cycles={CycleDomain.PERIPHERAL: peripheral},
    )


class TestWorkload:
    def test_from_corpus_renders_pcm(self, vocoder):
        corpus = Corpus([utt("play some jazz"), utt("tell me a joke")])
        workload = UtteranceWorkload.from_corpus(corpus, vocoder)
        assert len(workload) == 2
        for item in workload:
            assert item.pcm.dtype == np.int16
            assert item.frames == len(item.pcm) > 0

    def test_totals(self, vocoder):
        corpus = Corpus([utt("play some jazz"), utt("what time is it")])
        workload = UtteranceWorkload.from_corpus(corpus, vocoder)
        assert workload.total_frames == sum(i.frames for i in workload)
        assert workload.max_frames == max(i.frames for i in workload)

    def test_empty_workload(self):
        workload = UtteranceWorkload(items=[])
        assert workload.max_frames == 0
        assert workload.total_frames == 0
        assert workload.utterances == []

    def test_ground_truth_order_preserved(self, vocoder):
        texts = ["play some jazz", "tell me a joke", "what time is it"]
        corpus = Corpus([utt(t) for t in texts])
        workload = UtteranceWorkload.from_corpus(corpus, vocoder)
        assert [u.text for u in workload.utterances] == texts


class TestRunResult:
    def test_latency_stats(self):
        run = PipelineRunResult(pipeline="x")
        run.results = [result(latency=l) for l in (100, 200, 300)]
        assert run.mean_latency_cycles() == 200
        assert run.p95_latency_cycles() >= 200

    def test_empty_run(self):
        run = PipelineRunResult(pipeline="x")
        assert run.mean_latency_cycles() == 0.0
        assert run.p95_latency_cycles() == 0.0
        assert run.classifier_accuracy() == 0.0
        assert run.summary()["utterances"] == 0

    def test_processing_latency_subtracts_peripheral(self):
        run = PipelineRunResult(pipeline="x")
        run.results = [result(latency=1000, peripheral=800)]
        assert run.processing_latency_cycles()[0] == 200

    def test_decision_counts(self):
        run = PipelineRunResult(pipeline="x")
        run.results = [
            result(sensitive=True),   # blocked
            result(sensitive=False),  # forwarded
            result(sensitive=False),  # forwarded
        ]
        assert run.forwarded_count() == 2
        assert run.blocked_count() == 1

    def test_accuracy_against_ground_truth(self):
        run = PipelineRunResult(pipeline="x")
        run.results = [
            result(sensitive=True, predicted=True),
            result(sensitive=False, predicted=True),  # false positive
        ]
        assert run.classifier_accuracy() == 0.5

    def test_energy_total(self):
        run = PipelineRunResult(pipeline="x")
        run.results = [result(energy=1.5), result(energy=2.5)]
        assert run.total_energy_mj() == pytest.approx(4.0)

    def test_summary_schema(self):
        run = PipelineRunResult(pipeline="x")
        run.results = [result()]
        assert {
            "pipeline", "utterances", "mean_latency_cycles",
            "p95_latency_cycles", "mean_processing_cycles",
            "total_latency_cycles", "total_energy_mj", "forwarded",
            "accuracy", "sent", "queued", "throttled", "shed",
            "degraded", "relay_attempts",
        } == set(run.summary())

    def test_redacted_counts_as_blocked(self):
        run = PipelineRunResult(pipeline="x")
        r = UtteranceResult(
            utterance=utt(sensitive=True),
            transcript="secret text",
            sensitive_predicted=True,
            forwarded=True,
            payload="redacted by privacy filter",
            latency_cycles=10,
            energy_mj=0.1,
        )
        run.results = [r]
        assert run.forwarded_count() == 1
        assert run.blocked_count() == 1  # payload != transcript
