"""System-level security properties: the paper's claims, asserted.

Each test pits an attack model from the threat model (compromised OS,
memory scanner, wire eavesdropper, curious cloud) against both pipeline
configurations and asserts the claimed asymmetry: the attack succeeds
against the baseline and fails against the secure design.
"""

import numpy as np
import pytest

from repro.cloud.auditor import LeakAuditor
from repro.core.baseline import BaselinePipeline
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.kernel.attacks import (
    BufferSnoopAttack,
    MemoryScanner,
    WireEavesdropper,
)
from tests.test_core_pipeline import MIXED, make_workload


def run_with_snooping(pipeline, workload, machine):
    """Process a workload with a buffer snoop after every utterance."""
    snoop = BufferSnoopAttack(machine)
    captures, violations = [], [0]

    def attack(p):
        result = snoop.run(p.attack_targets())
        captures.extend(result.captured)
        violations[0] += result.violations

    run = pipeline.process(workload, after_each=attack)
    return run, captures, violations[0]


@pytest.fixture
def secure_attacked(provisioned):
    platform = IotPlatform.create(seed=51)
    pipeline = SecurePipeline(platform, provisioned.bundle)
    workload = make_workload(provisioned, MIXED)
    run, captures, violations = run_with_snooping(
        pipeline, workload, platform.machine
    )
    return platform, workload, run, captures, violations


@pytest.fixture
def baseline_attacked(provisioned):
    platform = IotPlatform.create(seed=51)
    pipeline = BaselinePipeline(platform, provisioned.bundle.asr, use_tls=True)
    workload = make_workload(provisioned, MIXED)
    run, captures, violations = run_with_snooping(
        pipeline, workload, platform.machine
    )
    return platform, workload, run, captures, violations


class TestBufferSnooping:
    def test_baseline_attacker_reads_audio(self, baseline_attacked, provisioned):
        platform, workload, _, captures, violations = baseline_attacked
        assert violations == 0
        assert captures
        auditor = LeakAuditor(
            workload.utterances, reference_asr=provisioned.bundle.asr
        )
        auditor.decode_device_captures(captures)
        report = auditor.report(platform.cloud.received_transcripts)
        assert report.device_leak_rate == 1.0

    def test_secure_attacker_faults(self, secure_attacked, provisioned):
        platform, workload, _, captures, violations = secure_attacked
        assert captures == []
        assert violations > 0
        auditor = LeakAuditor(
            workload.utterances, reference_asr=provisioned.bundle.asr
        )
        auditor.decode_device_captures(captures)
        report = auditor.report(platform.cloud.received_transcripts)
        assert report.device_leak_rate == 0.0

    def test_violations_logged_for_audit(self, secure_attacked):
        platform, _, _, _, _ = secure_attacked
        assert platform.machine.trace.count("tz.fault") > 0


class TestMemoryScanning:
    def test_scanner_finds_pcm_in_baseline(self, provisioned):
        platform = IotPlatform.create(seed=52)
        pipeline = BaselinePipeline(platform, provisioned.bundle.asr)
        workload = make_workload(provisioned, MIXED[:2])
        pipeline.process(workload)
        # Scan for a distinctive PCM fragment of the last utterance.
        needle = workload.items[-1].pcm[:16].astype("<i2").tobytes()
        scanner = MemoryScanner(platform.machine, charge_scan=False)
        result = scanner.scan(needle)
        assert result.succeeded

    def test_scanner_blind_in_secure_design(self, provisioned):
        platform = IotPlatform.create(seed=52)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:2])
        pipeline.process(workload)
        needle = workload.items[-1].pcm[:16].astype("<i2").tobytes()
        scanner = MemoryScanner(platform.machine, charge_scan=False)
        result = scanner.scan(needle)
        assert not result.succeeded
        assert result.violations > 0  # secure regions refused the probe

    def test_recon_shows_fewer_readable_regions_in_secure_design(
        self, provisioned
    ):
        platform = IotPlatform.create(seed=53)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:1])
        pipeline.process(workload)  # PTA INIT claims the I2S MMIO window
        scanner = MemoryScanner(platform.machine)
        readable = scanner.readable_regions()
        assert "dram_secure" not in readable
        assert "secure_heap" not in readable
        assert "i2s_mmio" not in readable
        assert "dram_ns" in readable


class TestWireAndCloud:
    def test_secure_wire_is_ciphertext(self, secure_attacked, provisioned):
        platform, workload, _, _, _ = secure_attacked
        eaves = WireEavesdropper(platform.supplicant.net)
        needles = [u.text.encode() for u in workload.utterances]
        assert eaves.plaintext_hits(needles) == 0

    def test_cloud_leakage_asymmetry(self, provisioned):
        """The headline claim: sensitive cloud leakage 100% -> 0%."""

        def leak_rate(pipeline_cls, **kwargs):
            platform = IotPlatform.create(seed=54)
            if pipeline_cls is SecurePipeline:
                pipeline = SecurePipeline(platform, provisioned.bundle)
            else:
                pipeline = BaselinePipeline(
                    platform, provisioned.bundle.asr, **kwargs
                )
            workload = make_workload(provisioned, MIXED)
            pipeline.process(workload)
            auditor = LeakAuditor(workload.utterances)
            return auditor.report(platform.cloud.received_transcripts)

        secure_report = leak_rate(SecurePipeline)
        baseline_report = leak_rate(BaselinePipeline, use_tls=True)
        assert baseline_report.cloud_leak_rate == 1.0
        assert secure_report.cloud_leak_rate == 0.0
        # And utility is preserved, not bought by blocking everything.
        assert secure_report.utility_rate == 1.0

    def test_model_at_rest_is_sealed(self, provisioned):
        """Persisted model weights are unreadable to the normal world."""
        platform = IotPlatform.create(seed=55)
        from repro.tz.worlds import World

        weights = provisioned.bundle.filter.classifier.serialize()[:256]
        platform.machine.cpu._set_world(World.SECURE)
        try:
            platform.tee.storage.put("classifier", weights)
        finally:
            platform.machine.cpu._set_world(World.NORMAL)
        stored = platform.supplicant.fs.files["tee/objects/classifier"]
        assert weights[:64] not in stored


class TestTcbReductionClaim:
    def test_record_task_needs_under_half_the_driver(self):
        """Paper: 'just part of a large driver code base could be used'."""
        from repro.drivers.i2s_driver import I2sDriver
        from repro.tcb.analyze import TcbAnalyzer
        from tests.test_tcb import build_rig, trace_record_task

        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze([session], task="record")
        assert plan.report.loc_kept < I2sDriver.total_loc() / 2
