"""Burn-rate SLOs, snapshot rings and weighted adaptive sampling.

The three data-model contracts behind ``repro health --burn-rate`` and
``repro fleet --sample-rate``:

* the registry's snapshot ring — prefix-filtered cumulative state per
  cycle stamp — survives doc round trips and merges associatively and
  commutatively, so a sharded fleet's burn rates are byte-identical to
  the sequential run's;
* multi-window burn-rate evaluation: bad-event extraction per rule
  shape, window selection, the firing conjunction (fast AND slow), and
  the NO-DATA verdict on unusable windows;
* systematic 1-in-k sampling with weight ``k``: an exact weighting law
  (the weighted histogram equals the unsampled histogram of the kept
  subsequence scaled by ``k``), ``k=1`` as a byte-identity, and the
  rank-window unbiasedness bound for merged weighted quantiles.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.health import (
    FAST_WINDOW_DIVISOR,
    SloRule,
    default_slo_rules,
    evaluate_burn_rates,
)
from repro.obs.metrics import (
    BucketHistogram,
    MetricsRegistry,
    RegistrySnapshot,
    merge_snapshot_rings,
)

FREQ = 1.0e9  # 1 GHz keeps cycle<->second arithmetic readable


def ring_doc(registry: MetricsRegistry) -> str:
    return json.dumps(
        [s.to_doc() for s in registry.snapshots], sort_keys=True
    )


class TestSnapshotRing:
    def test_snapshot_captures_prefixed_metrics_only(self):
        reg = MetricsRegistry()
        reg.inc("fleet.utterances", 2)
        reg.observe("fleet.e2e_latency_cycles", 100.0)
        reg.inc("pipeline.stage.calls", 9)  # not a snapshot prefix
        reg.record_snapshot(1000)
        (snap,) = reg.snapshots
        assert snap.cycle == 1000
        assert snap.counters == {"fleet.utterances": 2}
        assert set(snap.hists) == {"fleet.e2e_latency_cycles"}

    def test_doc_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("fleet.utterances", 3)
        reg.observe("tee.restart_cycles", 5.0)
        reg.record_snapshot(77)
        (snap,) = reg.snapshots
        back = RegistrySnapshot.from_doc(snap.to_doc())
        assert back.to_doc() == snap.to_doc()

    def test_delta_is_pointwise_and_clamped(self):
        reg = MetricsRegistry()
        reg.inc("fleet.relay.sent", 4)
        reg.record_snapshot(10)
        reg.inc("fleet.relay.sent", 5)
        reg.record_snapshot(20)
        older, newer = reg.snapshots
        delta = newer.delta(older)
        assert delta.counters["fleet.relay.sent"] == 5
        # Reversed order clamps at zero instead of going negative.
        assert older.delta(newer).counters["fleet.relay.sent"] == 0

    def test_quiet_metric_reads_zero_delta_not_missing(self):
        reg = MetricsRegistry()
        reg.inc("fleet.relay.queued", 0)
        reg.record_snapshot(10)
        reg.record_snapshot(20)
        older, newer = reg.snapshots
        assert newer.delta(older).counters["fleet.relay.queued"] == 0

    def test_ring_trimmed_to_capacity(self):
        reg = MetricsRegistry(snapshot_capacity=3)
        reg.inc("fleet.utterances", 1)
        for cycle in range(1, 6):
            reg.record_snapshot(cycle)
        assert [s.cycle for s in reg.snapshots] == [3, 4, 5]

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry()
        reg.enabled = False
        reg.inc("fleet.utterances", 1)
        reg.record_snapshot(10)
        assert reg.snapshots == []

    def test_registry_doc_round_trip_carries_ring(self):
        reg = MetricsRegistry()
        reg.inc("fleet.utterances", 1)
        reg.record_snapshot(5)
        back = MetricsRegistry.from_doc(reg.to_doc())
        assert ring_doc(back) == ring_doc(reg)


def _device_registry(sent: list[int], stamp_step: int) -> MetricsRegistry:
    """A registry whose ring records one snapshot per entry of ``sent``."""
    reg = MetricsRegistry()
    cycle = 0
    for n in sent:
        reg.inc("fleet.relay.forwarded", 1)
        reg.inc("fleet.relay.sent", n)
        cycle += stamp_step
        reg.record_snapshot(cycle)
    return reg


class TestRingMerge:
    def test_merge_is_commutative(self):
        a = _device_registry([1, 1, 0], 100)
        b = _device_registry([0, 1], 150)
        ab = merge_snapshot_rings(a.snapshots, b.snapshots)
        ba = merge_snapshot_rings(b.snapshots, a.snapshots)
        assert [s.to_doc() for s in ab] == [s.to_doc() for s in ba]

    def test_merge_is_associative(self):
        a = _device_registry([1, 0, 1, 1], 100)
        b = _device_registry([1], 250)
        c = _device_registry([0, 1], 90)
        left = merge_snapshot_rings(merge_snapshot_rings(a.snapshots,
                                                         b.snapshots),
                                    c.snapshots)
        right = merge_snapshot_rings(a.snapshots,
                                     merge_snapshot_rings(b.snapshots,
                                                          c.snapshots))
        assert [s.to_doc() for s in left] == [s.to_doc() for s in right]

    def test_shorter_ring_pads_with_its_last_snapshot(self):
        a = _device_registry([1, 1, 1], 100)
        b = _device_registry([2], 100)
        merged = merge_snapshot_rings(a.snapshots, b.snapshots)
        assert len(merged) == 3
        # b's final (only) cumulative state rides along in every later
        # index — a finished device keeps contributing its totals.
        assert [s.counters["fleet.relay.sent"] for s in merged] == [3, 4, 5]

    def test_registry_merge_merges_rings(self):
        a = _device_registry([1, 1], 100)
        b = _device_registry([1, 0], 100)
        a.merge(b)
        assert [s.counters["fleet.relay.sent"] for s in a.snapshots] == [2, 3]


def _ratio_rule(budget: float = 60.0) -> SloRule:
    return SloRule(
        name="relay_success", metric="fleet.relay.sent", op=">=",
        threshold=0.9, denominator="fleet.relay.forwarded",
        budget_per_hour=budget,
    )


class TestBurnRates:
    def test_healthy_stream_does_not_fire(self):
        reg = _device_registry([1] * 40, int(90 * FREQ))
        (burn,) = evaluate_burn_rates(
            reg, [_ratio_rule()], window_hours=1.0, freq_hz=FREQ
        )
        assert not burn.firing and not burn.no_data
        assert burn.bad_slow == 0 and burn.burn_slow == 0.0
        assert burn.fast_window_hours == pytest.approx(
            1.0 / FAST_WINDOW_DIVISOR
        )

    def test_brownout_fires_both_windows(self):
        # 40 events, one per 90 simulated seconds; the last 12 all fail:
        # 24 bad/hour in the slow half-hour window and 48 bad/hour in
        # the 150 s fast window, both past a 10/hour budget.
        sent = [1] * 28 + [0] * 12
        reg = _device_registry(sent, int(90 * FREQ))
        (burn,) = evaluate_burn_rates(
            reg, [_ratio_rule(budget=10.0)], window_hours=0.5, freq_hz=FREQ
        )
        assert burn.firing
        assert burn.bad_slow > 0 and burn.bad_fast > 0
        assert burn.burn_fast >= burn.burn_slow > 1.0

    def test_slow_only_burn_does_not_fire(self):
        # Failures early in the window, clean recovery at the tail: the
        # slow window still burns, the fast window is quiet — the
        # multi-window conjunction must hold the alarm.
        sent = [1] * 10 + [0] * 20 + [1] * 10
        reg = _device_registry(sent, int(90 * FREQ))
        (burn,) = evaluate_burn_rates(
            reg, [_ratio_rule(budget=10.0)], window_hours=1.0, freq_hz=FREQ
        )
        assert burn.burn_slow > 1.0
        assert burn.burn_fast == 0.0
        assert not burn.firing

    def test_single_snapshot_is_no_data(self):
        reg = _device_registry([1], int(90 * FREQ))
        (burn,) = evaluate_burn_rates(
            reg, [_ratio_rule()], window_hours=1.0, freq_hz=FREQ
        )
        assert burn.no_data and not burn.firing

    def test_unbudgeted_and_gauge_rules_skipped(self):
        reg = _device_registry([1] * 4, int(90 * FREQ))
        rules = [
            SloRule(name="nb", metric="fleet.relay.sent", op="<=",
                    threshold=10.0),  # no budget
            SloRule(name="depth", metric="fleet.relay.queue_depth",
                    op="<=", threshold=4.0, budget_per_hour=1.0),  # gauge
        ]
        burns = evaluate_burn_rates(reg, rules, window_hours=1.0,
                                    freq_hz=FREQ)
        assert [b.rule.name for b in burns] == ["depth"]
        assert burns[0].no_data

    def test_default_rules_carry_budgets(self):
        budgeted = {r.name for r in default_slo_rules()
                    if r.budget_per_hour is not None}
        assert budgeted == {"p99_latency", "relay_success", "shed_rate"}

    def test_invalid_window_rejected(self):
        reg = _device_registry([1], int(90 * FREQ))
        with pytest.raises(ValueError):
            evaluate_burn_rates(reg, [_ratio_rule()], window_hours=0.0,
                                freq_hz=FREQ)

    def test_quantile_rule_counts_over_threshold_observations(self):
        rule = SloRule(name="p99_latency", metric="lat", op="<=",
                       threshold=100.0, quantile=0.99, budget_per_hour=5.0)
        reg = MetricsRegistry()
        cycle = 0
        for value in [10.0, 10.0, 5000.0, 10.0, 5000.0, 5000.0]:
            reg.observe("lat", value)
            cycle += int(90 * FREQ)
            reg.record_snapshot(cycle, prefixes=("lat",))
        (burn,) = evaluate_burn_rates(reg, [rule], window_hours=1.0,
                                      freq_hz=FREQ)
        assert burn.bad_slow == 3
        assert burn.firing  # ~24 bad/hour in both windows >> 5/hour

    def test_merged_ring_burn_identical_to_either_fold_order(self):
        devices = [
            _device_registry([1, 0, 1], int(80 * FREQ)),
            _device_registry([0, 0], int(120 * FREQ)),
            _device_registry([1] * 5, int(60 * FREQ)),
        ]
        def fold(order):
            merged = MetricsRegistry()
            for reg in order:
                merged.merge(MetricsRegistry.from_doc(reg.to_doc()))
            burns = evaluate_burn_rates(merged, [_ratio_rule()],
                                        window_hours=0.5, freq_hz=FREQ)
            return json.dumps([b.to_doc() for b in burns], sort_keys=True)
        assert fold(devices) == fold(list(reversed(devices)))


class TestWeightedSampling:
    def test_systematic_one_in_k_keeps_phase_zero(self):
        reg = MetricsRegistry()
        reg.set_sampling(3)
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]:
            reg.observe("lat", v)
        hist = reg.histogram("lat")
        # Kept: indices 0, 3, 6 -> values 1, 4, 7, each weight 3.
        assert hist.count == 9
        assert hist.total == pytest.approx(3 * (1.0 + 4.0 + 7.0))

    def test_sampling_rate_one_is_identity(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.set_sampling(1)
        for v in [5.0, 2.0, 9.0, 0.0]:
            a.observe("lat", v)
            b.observe("lat", v)
        assert json.dumps(a.to_doc(), sort_keys=True) == \
            json.dumps(b.to_doc(), sort_keys=True)

    def test_weighted_observe_matches_scaled_subsequence(self):
        # The exact weighting law: sampling at 1-in-k then weighting by
        # k produces the same bucket state as observing the kept
        # subsequence k times each.
        values = [3.0, 14.0, 0.0, 999.0, 7.5, 7.5, 61.0]
        k = 2
        sampled = BucketHistogram("lat")
        for v in values[::k]:
            sampled.observe(v, weight=k)
        repeated = BucketHistogram("lat", max_samples=0)
        for v in values[::k]:
            for _ in range(k):
                repeated.observe(v)
        strip = lambda doc: {k_: v for k_, v in doc.items()
                             if k_ != "max_samples"}
        assert strip(sampled.to_doc()) == strip(repeated.to_doc())

    def test_invalid_rates_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.set_sampling(0)
        with pytest.raises(ValueError):
            BucketHistogram("x").observe(1.0, weight=0)


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1e9,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=40),
        min_size=1, max_size=4,
    ),
    k=st.integers(min_value=1, max_value=8),
    q=st.sampled_from([0.5, 0.9, 0.99]),
)
def test_property_weighted_merged_quantile_rank_window(data, k, q):
    """Unbiasedness of the weighted merge, as an exact rank bound.

    Sort each device's stream, sample it 1-in-k with weight k, merge the
    weighted histograms across devices.  The merged quantile estimate
    must lie within one bucket (``gamma`` relative error) of the value
    window spanned by the true quantile's rank ±2k per device — the
    worst-case rank drift systematic sampling can introduce.  With k=1
    the window collapses and the estimate is within one bucket of the
    exact quantile.
    """
    streams = [sorted(values) for values in data]
    merged = BucketHistogram("lat")
    for stream in streams:
        for v in stream[::k]:
            merged.observe(v, weight=k)
    estimate = merged.quantile(q)

    full = sorted(v for stream in streams for v in stream)
    n = len(full)
    target = max(1, math.ceil(q * n))
    drift = 2 * k * len(streams)
    lo = full[max(0, target - 1 - drift)]
    hi = full[min(n - 1, target - 1 + drift)]
    gamma = merged.gamma
    assert lo / gamma <= estimate <= max(hi * gamma, gamma)

    # Rates stay unbiased: the weighted count covers every event, over-
    # counting by at most k-1 per device stream.
    assert n <= merged.count <= n + len(streams) * (k - 1)
