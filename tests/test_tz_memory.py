"""Unit tests: physical memory, TZASC, allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAddressError, SecureAccessViolation
from repro.sim.clock import SimClock
from repro.sim.trace import TraceLog
from repro.tz.costs import CostModel
from repro.tz.memory import (
    MemoryAllocator,
    MemoryRegion,
    PhysicalMemory,
    SecurityAttr,
    Tzasc,
)
from repro.tz.worlds import World


def make_memory() -> PhysicalMemory:
    return PhysicalMemory(SimClock(), TraceLog(), CostModel())


class TestRegions:
    def test_contains(self):
        r = MemoryRegion("r", 0x1000, 0x100, SecurityAttr.NONSECURE)
        assert r.contains(0x1000)
        assert r.contains(0x10FF)
        assert not r.contains(0x1100)
        assert r.contains(0x10F0, 0x10)
        assert not r.contains(0x10F0, 0x11)

    def test_overlap_detection(self):
        mem = make_memory()
        mem.add_region(MemoryRegion("a", 0x1000, 0x100, SecurityAttr.NONSECURE))
        with pytest.raises(ValueError):
            mem.add_region(MemoryRegion("b", 0x10FF, 0x10, SecurityAttr.NONSECURE))

    def test_adjacent_regions_allowed(self):
        mem = make_memory()
        mem.add_region(MemoryRegion("a", 0x1000, 0x100, SecurityAttr.NONSECURE))
        mem.add_region(MemoryRegion("b", 0x1100, 0x100, SecurityAttr.NONSECURE))
        assert len(mem.regions()) == 2

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion("r", 0, 0, SecurityAttr.NONSECURE)
        with pytest.raises(ValueError):
            MemoryRegion("r", -4, 16, SecurityAttr.NONSECURE)

    def test_unmapped_access_faults(self):
        mem = make_memory()
        with pytest.raises(InvalidAddressError):
            mem.read(0xDEAD_0000, 4, World.NORMAL)

    def test_region_lookup_by_name(self):
        mem = make_memory()
        mem.add_region(MemoryRegion("a", 0x0, 0x10, SecurityAttr.NONSECURE))
        assert mem.region("a").base == 0
        with pytest.raises(InvalidAddressError):
            mem.region("nope")


class TestTzascEnforcement:
    def _mem(self):
        mem = make_memory()
        mem.add_region(MemoryRegion("ns", 0x1000, 0x100, SecurityAttr.NONSECURE))
        mem.add_region(MemoryRegion("s", 0x2000, 0x100, SecurityAttr.SECURE))
        return mem

    def test_normal_world_reads_nonsecure(self):
        mem = self._mem()
        mem.write(0x1000, b"hello", World.NORMAL)
        assert mem.read(0x1000, 5, World.NORMAL) == b"hello"

    def test_normal_world_blocked_from_secure_read(self):
        mem = self._mem()
        with pytest.raises(SecureAccessViolation):
            mem.read(0x2000, 4, World.NORMAL)

    def test_normal_world_blocked_from_secure_write(self):
        mem = self._mem()
        with pytest.raises(SecureAccessViolation):
            mem.write(0x2000, b"x", World.NORMAL)

    def test_secure_world_reads_everything(self):
        mem = self._mem()
        mem.write(0x1000, b"ns", World.SECURE)
        mem.write(0x2000, b"s!", World.SECURE)
        assert mem.read(0x1000, 2, World.SECURE) == b"ns"
        assert mem.read(0x2000, 2, World.SECURE) == b"s!"

    def test_violation_counted_and_traced(self):
        mem = self._mem()
        with pytest.raises(SecureAccessViolation):
            mem.read(0x2000, 4, World.NORMAL)
        assert mem.violation_count == 1
        assert mem.trace.count("tz.fault") == 1

    def test_violation_leaves_data_intact(self):
        mem = self._mem()
        mem.write(0x2000, b"secret", World.SECURE)
        with pytest.raises(SecureAccessViolation):
            mem.write(0x2000, b"mallet", World.NORMAL)
        assert mem.read(0x2000, 6, World.SECURE) == b"secret"


class TestTzascReprogramming:
    def test_secure_world_can_reprogram(self):
        mem = make_memory()
        region = mem.add_region(
            MemoryRegion("p", 0x1000, 0x100, SecurityAttr.NONSECURE)
        )
        mem.tzasc.reprogram(region, SecurityAttr.SECURE, World.SECURE)
        with pytest.raises(SecureAccessViolation):
            mem.read(0x1000, 4, World.NORMAL)

    def test_normal_world_cannot_reprogram(self):
        mem = make_memory()
        region = mem.add_region(
            MemoryRegion("p", 0x1000, 0x100, SecurityAttr.SECURE)
        )
        with pytest.raises(SecureAccessViolation):
            mem.tzasc.reprogram(region, SecurityAttr.NONSECURE, World.NORMAL)
        # Still secure afterwards.
        with pytest.raises(SecureAccessViolation):
            mem.read(0x1000, 4, World.NORMAL)

    def test_attr_of_tracks_reprogramming(self):
        tzasc = Tzasc()
        region = MemoryRegion("p", 0, 16, SecurityAttr.NONSECURE)
        tzasc.register(region)
        assert tzasc.attr_of(region) is SecurityAttr.NONSECURE
        tzasc.reprogram(region, SecurityAttr.SECURE, World.SECURE)
        assert tzasc.attr_of(region) is SecurityAttr.SECURE


class TestCycleCharging:
    def test_reads_cost_cycles(self):
        mem = make_memory()
        mem.add_region(MemoryRegion("ns", 0x0, 0x1000, SecurityAttr.NONSECURE))
        before = mem.clock.now
        mem.read(0x0, 256, World.NORMAL)
        assert mem.clock.now > before

    def test_secure_traffic_costs_more(self):
        costs = CostModel()
        assert costs.mem_copy_cycles(4096, secure=True) > costs.mem_copy_cycles(
            4096, secure=False
        )

    def test_larger_transfers_cost_more(self):
        costs = CostModel()
        assert costs.mem_copy_cycles(65536, False) > costs.mem_copy_cycles(64, False)


class TestAllocator:
    def _alloc(self, size=0x1000) -> MemoryAllocator:
        return MemoryAllocator(
            MemoryRegion("heap", 0x8000, size, SecurityAttr.NONSECURE)
        )

    def test_alloc_returns_in_region(self):
        a = self._alloc()
        addr = a.alloc(100)
        assert 0x8000 <= addr < 0x9000

    def test_alloc_alignment(self):
        a = self._alloc()
        assert a.alloc(1) % 64 == 0

    def test_distinct_allocations_disjoint(self):
        a = self._alloc()
        x = a.alloc(128)
        y = a.alloc(128)
        assert abs(x - y) >= 128

    def test_exhaustion_raises(self):
        a = self._alloc(size=256)
        a.alloc(256)
        with pytest.raises(MemoryError):
            a.alloc(64)

    def test_free_enables_reuse(self):
        a = self._alloc(size=256)
        addr = a.alloc(256)
        a.free(addr)
        assert a.alloc(256) == addr

    def test_double_free_rejected(self):
        a = self._alloc()
        addr = a.alloc(64)
        a.free(addr)
        with pytest.raises(ValueError):
            a.free(addr)

    def test_usage_accounting(self):
        a = self._alloc(size=1024)
        a.alloc(128)
        assert a.used_bytes == 128
        assert a.free_bytes == 1024 - 128

    def test_bad_sizes(self):
        a = self._alloc()
        with pytest.raises(ValueError):
            a.alloc(0)
        with pytest.raises(ValueError):
            a.alloc(-5)

    @given(st.lists(st.integers(min_value=1, max_value=300), max_size=20))
    def test_property_allocations_never_overlap(self, sizes):
        a = MemoryAllocator(
            MemoryRegion("heap", 0, 64 * 1024, SecurityAttr.NONSECURE)
        )
        spans = []
        for size in sizes:
            addr = a.alloc(size)
            aligned = (size + 63) // 64 * 64
            for base, length in spans:
                assert addr + aligned <= base or base + length <= addr
            spans.append((addr, aligned))
