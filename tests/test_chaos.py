"""Chaos engineering: secure-world faults, supervision, fail-closed.

Covers the recovery contract layer by layer:

* :class:`SecureFaultConfig` / :class:`SecureFaultInjector` — validated
  rates, per-kind RNG streams, and draw-for-draw determinism;
* determinism under chaos — a (seed, config) pair replays the identical
  fault sequence, restart count and decision stream, and an all-zero
  config is byte-identical to a run with no injector at all;
* recovery — a scripted mid-run panic restarts the TA, restores from
  sealed checkpoints, and preserves every committed decision exactly
  once (the cloud sees no duplicates and loses nothing);
* fail-closed — when the TA stays dead past every budget, utterances
  degrade to suppressed-as-sensitive and nothing new reaches the wire;
* the gated ``recovery_time`` SLO and health-alert routing through the
  TA's relay (delivered, or sealed in the store-and-forward queue).
"""

import json

import pytest

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_PROCESS, RELAY_QUEUED, RELAY_SENT
from repro.errors import TeeTargetDead
from repro.ml.dataset import UtteranceGenerator
from repro.core.workload import UtteranceWorkload
from repro.obs.health import HealthMonitor, SloRule, default_slo_rules
from repro.obs.metrics import MetricsRegistry
from repro.optee.params import Params, Value
from repro.optee.supervise import SupervisorPolicy
from repro.relay.alerts import build_alert_doc, route_health_alert
from repro.sim.faults import (
    SECURE_FAULT_KINDS,
    FaultConfig,
    SecureFaultConfig,
    SecureFaultInjector,
)
from repro.sim.rng import SimRng

CHAOS_SEED = 1007  # same pair as benchmarks/bench_t12_chaos.py: the


# chaos profile injects a TA panic *and* a storage corruption on the
# restart's checkpoint restore, so one run exercises the whole path.


def _workload(bundle, n=6, seed=311, sensitive_fraction=0.5):
    corpus = UtteranceGenerator(SimRng(seed, "chaos-test")).generate(
        n, sensitive_fraction=sensitive_fraction
    )
    return UtteranceWorkload.from_corpus(corpus, bundle.vocoder)


def _run(provisioned, *, seed=311, n=6, secure_faults=None, supervise=False,
         network_faults=None):
    platform = IotPlatform.create(
        seed=seed, secure_faults=secure_faults, network_faults=network_faults,
    )
    pipeline = SecurePipeline(
        platform, provisioned.bundle,
        supervisor=SupervisorPolicy() if supervise else None,
    )
    try:
        run = pipeline.process(_workload(provisioned.bundle, n=n, seed=seed))
    finally:
        pipeline.close()
    return platform, pipeline, run


def _decision_bytes(platform, run) -> bytes:
    """Every decision-relevant field, serialized for byte comparison."""
    doc = {
        "results": [
            {
                "transcript": r.transcript,
                "sensitive": r.sensitive_predicted,
                "forwarded": r.forwarded,
                "payload": r.payload,
                "relay_status": r.relay_status,
                "relay_attempts": r.relay_attempts,
                "degraded": r.degraded,
                "latency_cycles": r.latency_cycles,
                "energy_mj": r.energy_mj,
            }
            for r in run.results
        ],
        "cloud": platform.cloud.received_transcripts,
        "final_cycle": platform.machine.clock.now,
    }
    return json.dumps(doc, sort_keys=True).encode()


class ScriptedInjector:
    """Test double: fires a fault kind at exact draw indices.

    Presents the same ``fires``/``corrupt``/``counts``/``draws`` surface
    as :class:`SecureFaultInjector` but is fully scripted, so a test can
    panic the TA at precisely one hook crossing with no seed hunting.
    """

    def __init__(self, script=None, always=None):
        self.script = {k: set(v) for k, v in (script or {}).items()}
        self.always = set(always or ())
        self.draws = {k: 0 for k in SECURE_FAULT_KINDS}
        self.counts = {k: 0 for k in SECURE_FAULT_KINDS}

    def fires(self, kind):
        idx = self.draws[kind]
        self.draws[kind] += 1
        hit = kind in self.always or idx in self.script.get(kind, ())
        if hit:
            self.counts[kind] += 1
        return hit

    def corrupt(self, payload):
        if not payload:
            return payload
        out = bytearray(payload)
        out[0] ^= 0xFF
        return bytes(out)

    def summary(self):
        return {"counts": dict(self.counts), "draws": dict(self.draws)}


class TestSecureFaultConfig:
    def test_zero_config_is_disabled(self):
        assert not SecureFaultConfig().enabled

    def test_any_rate_enables(self):
        assert SecureFaultConfig(dma_rate=0.01).enabled

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            SecureFaultConfig(ta_panic_rate=1.5)
        with pytest.raises(ValueError):
            SecureFaultConfig(storage_rate=-0.1)

    def test_chaos_profile_scales_with_intensity(self):
        full, half = SecureFaultConfig.chaos(), SecureFaultConfig.chaos(0.5)
        for kind in SECURE_FAULT_KINDS:
            assert getattr(half, f"{kind}_rate") == pytest.approx(
                getattr(full, f"{kind}_rate") / 2
            )
        assert not SecureFaultConfig.chaos(0.0).enabled

    def test_chaos_intensity_validated(self):
        with pytest.raises(ValueError):
            SecureFaultConfig.chaos(intensity=2.0)


class TestSecureFaultInjector:
    def _sequence(self, seed, config, kind="ta_panic", n=200):
        inj = SecureFaultInjector(config, SimRng(seed, "t"))
        return [inj.fires(kind) for _ in range(n)]

    def test_same_seed_same_fault_sequence(self):
        config = SecureFaultConfig.chaos()
        assert self._sequence(7, config) == self._sequence(7, config)
        assert True in self._sequence(7, config, n=500)

    def test_different_seed_different_stream(self):
        config = SecureFaultConfig(ta_panic_rate=0.5)
        assert self._sequence(1, config, n=64) != self._sequence(2, config, n=64)

    def test_zero_rate_kinds_never_draw(self):
        inj = SecureFaultInjector(
            SecureFaultConfig(ta_panic_rate=0.5), SimRng(9, "t")
        )
        for kind in SECURE_FAULT_KINDS:
            for _ in range(10):
                inj.fires(kind)
        assert inj.draws["ta_panic"] == 10
        for kind in SECURE_FAULT_KINDS:
            if kind != "ta_panic":
                assert inj.draws[kind] == 0, kind

    def test_kind_streams_are_independent(self):
        # Interleaving storage draws must not shift which invoke panics.
        config = SecureFaultConfig(ta_panic_rate=0.3, storage_rate=0.3)
        plain = SecureFaultInjector(config, SimRng(11, "t"))
        mixed = SecureFaultInjector(config, SimRng(11, "t"))
        a = [plain.fires("ta_panic") for _ in range(100)]
        b = []
        for _ in range(100):
            mixed.fires("storage")
            b.append(mixed.fires("ta_panic"))
        assert a == b

    def test_corrupt_flips_exactly_one_byte(self):
        inj = SecureFaultInjector(
            SecureFaultConfig(storage_rate=1.0), SimRng(3, "t")
        )
        blob = bytes(range(64))
        out = inj.corrupt(blob)
        diffs = [i for i in range(64) if out[i] != blob[i]]
        assert len(diffs) == 1
        assert out[diffs[0]] == blob[diffs[0]] ^ 0xFF
        assert inj.corrupt(b"") == b""


class TestChaosDeterminism:
    def test_chaos_run_is_reproducible(self, provisioned):
        """Same (seed, config): identical faults, restarts and decisions."""
        runs = [
            _run(provisioned, seed=CHAOS_SEED, n=10,
                 secure_faults=SecureFaultConfig.chaos(), supervise=True)
            for _ in range(2)
        ]
        (pa, la, ra), (pb, lb, rb) = runs
        assert pa.machine.secure_faults.summary() == \
            pb.machine.secure_faults.summary()
        assert sum(pa.machine.secure_faults.counts.values()) > 0
        assert la.supervisor.summary() == lb.supervisor.summary()
        assert la.supervisor.restarts >= 1
        assert _decision_bytes(pa, ra) == _decision_bytes(pb, rb)

    def test_all_zero_config_installs_no_injector(self, provisioned):
        platform, _, _ = _run(
            provisioned, n=2, secure_faults=SecureFaultConfig()
        )
        assert platform.machine.secure_faults is None

    def test_all_zero_config_is_byte_identical_to_off(self, provisioned):
        """Rates all 0 == chaos absent: the injector must cost nothing."""
        off = _run(provisioned, n=4, secure_faults=None)
        zero = _run(provisioned, n=4, secure_faults=SecureFaultConfig())
        assert _decision_bytes(off[0], off[2]) == \
            _decision_bytes(zero[0], zero[2])

    def test_supervised_clean_run_preserves_decisions(self, provisioned):
        """Supervision changes costs (checkpoints), never decisions."""
        _, _, plain = _run(provisioned, n=4)
        platform, pipeline, sup = _run(provisioned, n=4, supervise=True)
        assert pipeline.supervisor.restarts == 0
        assert sup.degraded_count() == 0
        for got, want in zip(sup.results, plain.results):
            assert got.transcript == want.transcript
            assert got.sensitive_predicted == want.sensitive_predicted
            assert got.forwarded == want.forwarded
            assert got.payload == want.payload
        counters = platform.machine.obs.metrics.counters()
        assert counters["tee.checkpoints"] == 4


class TestRecovery:
    def _supervised(self, provisioned, seed=311):
        platform = IotPlatform.create(seed=seed)
        pipeline = SecurePipeline(
            platform, provisioned.bundle, supervisor=SupervisorPolicy()
        )
        return platform, pipeline

    def test_scripted_panic_recovers_and_preserves_decisions(
        self, provisioned
    ):
        """One panic mid-run: restart, restore, same decisions, no dupes."""
        clean_platform, _, clean = _run(provisioned, n=6)
        clean_cloud = list(clean_platform.cloud.received_transcripts)

        platform, pipeline = self._supervised(provisioned)
        # Installed after boot so draw 0 is the first utterance's invoke
        # hook: the panic lands exactly on utterance 3's CMD_PROCESS.
        platform.machine.secure_faults = ScriptedInjector(
            script={"ta_panic": {2}}
        )
        try:
            run = pipeline.process(_workload(provisioned.bundle, n=6))
        finally:
            pipeline.close()

        assert pipeline.supervisor.restarts == 1
        assert pipeline.supervisor.panics_seen == 1
        assert run.degraded_count() == 0
        for got, want in zip(run.results, clean.results):
            assert got.transcript == want.transcript
            assert got.sensitive_predicted == want.sensitive_predicted
            assert got.forwarded == want.forwarded
            assert got.payload == want.payload
        # Exactly-once: the restarted TA neither replayed a committed
        # forward (no duplicates) nor dropped one (no gaps).
        assert platform.cloud.received_transcripts == clean_cloud
        # CMD_STATS stays cumulative across the restart: the fresh relay
        # module's window must not shadow the restored lifetime counts.
        assert run.relay_stats["sent"] == run.sent_count()
        counters = platform.machine.obs.metrics.counters()
        assert counters["tee.panics"] == 1
        assert counters["tee.restarts"] == 1
        assert counters["tee.reaped"] == 1
        names = {e.name for e in platform.machine.trace.events("optee.ta")}
        assert "checkpoint_restored" in names

    def test_full_chaos_profile_tolerates_corrupt_checkpoint(
        self, provisioned
    ):
        """The T12 pair: restore survives a corrupted generation."""
        platform, pipeline, run = _run(
            provisioned, seed=CHAOS_SEED, n=10,
            secure_faults=SecureFaultConfig.chaos(), supervise=True,
        )
        assert pipeline.supervisor.restarts >= 1
        assert run.lost_count() == 0
        names = [e.name for e in platform.machine.trace.events("optee.ta")]
        assert "checkpoint_invalid" in names   # generation a: corrupted read
        assert "checkpoint_restored" in names  # ...generation b still good

    def test_replay_guard_returns_committed_record(self, provisioned):
        """Re-invoking the checkpointed seq must not re-decide or re-send."""
        platform, pipeline = self._supervised(provisioned)
        try:
            run = pipeline.process(_workload(provisioned.bundle, n=3))
            sent_before = list(platform.cloud.received_transcripts)
            record = pipeline.session.invoke(
                CMD_PROCESS, Params.of(Value(a=1, b=pipeline._seq))
            )
        finally:
            pipeline.close()
        last = run.results[-1]
        assert record["transcript"] == last.transcript
        assert record["forwarded"] == last.forwarded
        assert record["payload"] == last.payload
        assert platform.cloud.received_transcripts == sent_before
        counters = platform.machine.obs.metrics.counters()
        assert counters["tee.replays_suppressed"] == 1


class TestFailClosed:
    def test_permanent_death_degrades_and_leaks_nothing(self, provisioned):
        """TA dead past every budget: suppress, mark degraded, ship nothing."""
        platform = IotPlatform.create(seed=311)
        pipeline = SecurePipeline(
            platform, provisioned.bundle, supervisor=SupervisorPolicy()
        )
        workload = _workload(provisioned.bundle, n=6)
        healthy = UtteranceWorkload(items=list(workload)[:3])
        doomed = UtteranceWorkload(items=list(workload)[3:])
        try:
            before = pipeline.process(healthy)
            wire_before = len(platform.supplicant.net.wire_log)
            cloud_before = list(platform.cloud.received_transcripts)
            platform.machine.secure_faults = ScriptedInjector(
                always={"ta_panic"}
            )
            after = pipeline.process(doomed)
        finally:
            pipeline.close()  # must not raise on a dead TA

        assert before.degraded_count() == 0
        assert after.degraded_count() == 3
        for r in after.results:
            assert r.degraded and r.sensitive_predicted
            assert not r.forwarded
            assert r.payload is None
            assert r.relay_status == "suppressed"
        # Fail-closed means fail-*silent* to the outside world: nothing
        # new on the wire (eavesdropper's vantage), nothing at the cloud,
        # and no raw transcript bytes anywhere in the captured traffic.
        assert len(platform.supplicant.net.wire_log) == wire_before
        assert platform.cloud.received_transcripts == cloud_before
        joined = b"".join(platform.supplicant.net.wire_log)
        for item in doomed:
            assert item.utterance.text.encode() not in joined
        # Stats collection degrades instead of raising.
        assert after.stage_cycles == {}
        counters = platform.machine.obs.metrics.counters()
        assert counters["tee.degraded_utterances"] == 3
        assert pipeline.supervisor.degraded_invokes >= 3

    def test_reap_panicked_releases_heap(self, provisioned):
        platform = IotPlatform.create(seed=311)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        item = list(_workload(provisioned.bundle, n=1))[0]
        pipeline.process_item(item)
        used_live = platform.tee.heap.used_bytes
        assert used_live > 0
        platform.machine.secure_faults = ScriptedInjector(always={"ta_panic"})
        with pytest.raises(TeeTargetDead):
            pipeline.session.invoke(CMD_PROCESS, Params.of(Value(a=item.frames)))
        assert platform.tee.heap.used_bytes == used_live  # leaked until reaped
        assert platform.tee.reap_panicked(pipeline.ta_uuid)
        assert platform.tee.heap.used_bytes < used_live
        assert not platform.tee.reap_panicked(pipeline.ta_uuid)  # idempotent
        pipeline.client.close()


class TestRecoverySlo:
    def _rule(self):
        return next(
            r for r in default_slo_rules() if r.name == "recovery_time"
        )

    def test_gated_when_no_restarts_happened(self):
        reg = MetricsRegistry()
        ev = self._rule().evaluate(reg)
        assert ev.ok and ev.gated
        assert ev.to_doc()["gated"] is True
        report = HealthMonitor(reg, [self._rule()]).evaluate()
        assert report.ok
        assert "gated" in report.table()

    def test_evaluated_once_restarts_exist(self):
        reg = MetricsRegistry()
        reg.inc("tee.restarts")
        reg.observe("tee.recovery_cycles", 5.0e8)  # 250 ms: over budget
        ev = self._rule().evaluate(reg)
        assert not ev.ok and not ev.gated

    def test_fast_recovery_passes(self):
        reg = MetricsRegistry()
        reg.inc("tee.restarts")
        reg.observe("tee.recovery_cycles", 200_000.0)
        assert self._rule().evaluate(reg).ok

    def test_budget_knob(self):
        rules = default_slo_rules(recovery_budget_cycles=100.0)
        rule = next(r for r in rules if r.name == "recovery_time")
        reg = MetricsRegistry()
        reg.inc("tee.restarts")
        reg.observe("tee.recovery_cycles", 200.0)
        assert not rule.evaluate(reg).ok


class TestAlertRouting:
    def _failing_report(self):
        reg = MetricsRegistry()
        reg.inc("errors", 9)
        rules = [SloRule("errs", metric="errors", op="<=", threshold=1)]
        return HealthMonitor(reg, rules).evaluate()

    def test_alert_doc_schema(self):
        doc = build_alert_doc(self._failing_report(), device_id="dut")
        assert doc["kind"] == "health_alert"
        assert doc["device"] == "dut"
        assert doc["ok"] is False
        assert doc["rules"][0]["rule"] == "errs"
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_violation_routes_through_relay_to_cloud(self, provisioned):
        platform, pipeline, _ = _run(provisioned, n=1)
        outcome = route_health_alert(
            platform, pipeline.ta_uuid, self._failing_report(),
            device_id="dut",
        )
        assert outcome["status"] == RELAY_SENT
        alert = platform.cloud.alerts[-1]
        assert alert["kind"] == "health_alert" and alert["device"] == "dut"
        counters = platform.machine.obs.metrics.counters()
        assert counters["tee.alerts_sent"] == 1

    def test_alert_queued_on_outage_and_drained_after(self, provisioned):
        platform = IotPlatform.create(
            seed=311, network_faults=FaultConfig(refuse_rate=1.0)
        )
        pipeline = SecurePipeline(platform, provisioned.bundle)
        try:
            outcome = route_health_alert(
                platform, pipeline.ta_uuid, self._failing_report(),
                device_id="dut",
            )
            assert outcome["status"] == RELAY_QUEUED
            assert platform.cloud.alerts == []
            counters = platform.machine.obs.metrics.counters()
            assert counters["tee.alerts_queued"] == 1
            # The network heals; the next successful forward drains the
            # sealed queue and the alert arrives via the kind dispatch.
            platform.supplicant.net.set_fault_injector(None)
            workload = _workload(
                provisioned.bundle, n=2, sensitive_fraction=0.0
            )
            pipeline.process(workload)
        finally:
            pipeline.close()
        assert [a["device"] for a in platform.cloud.alerts] == ["dut"]
