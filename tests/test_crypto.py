"""Unit + property tests: KDF, AEAD, DH."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aead import StreamAead
from repro.crypto.dh import MODP_GROUP_14, DhKeyPair
from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract, hmac_sha256
from repro.errors import AuthenticationFailure, CryptoError


class TestKdf:
    def test_hkdf_rfc5869_case1(self):
        """RFC 5869 test case 1 (SHA-256)."""
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_expand_lengths(self):
        prk = hkdf_extract(b"salt", b"ikm")
        for n in (1, 31, 32, 33, 64, 100):
            assert len(hkdf_expand(prk, b"i", n)) == n

    def test_expand_too_long(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"0" * 32, b"", 256 * 32)

    def test_derive_key_labels_independent(self):
        assert derive_key(b"master", "a") != derive_key(b"master", "b")

    def test_hmac_known_answer(self):
        # RFC 4231 test case 2.
        out = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert out.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )


class TestAead:
    def test_round_trip(self):
        aead = StreamAead(b"k" * 32)
        nonce = b"n" * 12
        sealed = aead.seal(nonce, b"attack at dawn", aad=b"hdr")
        assert aead.open(nonce, sealed, aad=b"hdr") == b"attack at dawn"

    def test_ciphertext_differs_from_plaintext(self):
        aead = StreamAead(b"k" * 32)
        sealed = aead.seal(b"n" * 12, b"attack at dawn")
        assert b"attack at dawn" not in sealed

    def test_tamper_detected(self):
        aead = StreamAead(b"k" * 32)
        sealed = bytearray(aead.seal(b"n" * 12, b"payload"))
        sealed[0] ^= 1
        with pytest.raises(AuthenticationFailure):
            aead.open(b"n" * 12, bytes(sealed))

    def test_wrong_aad_detected(self):
        aead = StreamAead(b"k" * 32)
        sealed = aead.seal(b"n" * 12, b"payload", aad=b"a")
        with pytest.raises(AuthenticationFailure):
            aead.open(b"n" * 12, sealed, aad=b"b")

    def test_wrong_key_detected(self):
        sealed = StreamAead(b"k" * 32).seal(b"n" * 12, b"payload")
        with pytest.raises(AuthenticationFailure):
            StreamAead(b"j" * 32).open(b"n" * 12, sealed)

    def test_wrong_nonce_detected(self):
        aead = StreamAead(b"k" * 32)
        sealed = aead.seal(b"n" * 12, b"payload")
        with pytest.raises(AuthenticationFailure):
            aead.open(b"m" * 12, sealed)

    def test_truncated_blob_rejected(self):
        aead = StreamAead(b"k" * 32)
        with pytest.raises(AuthenticationFailure):
            aead.open(b"n" * 12, b"short")

    def test_bad_nonce_length(self):
        aead = StreamAead(b"k" * 32)
        with pytest.raises(CryptoError):
            aead.seal(b"short", b"x")

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            StreamAead(b"tiny")

    @given(st.binary(max_size=512), st.binary(max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, plaintext, aad):
        aead = StreamAead(b"property-key-0123456789abcdef!!")
        nonce = b"\x01" * 12
        assert aead.open(nonce, aead.seal(nonce, plaintext, aad), aad) == plaintext


class TestDh:
    def test_shared_secret_agreement(self):
        alice = DhKeyPair.generate(b"a" * 32)
        bob = DhKeyPair.generate(b"b" * 32)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_different_peers_different_secrets(self):
        alice = DhKeyPair.generate(b"a" * 32)
        bob = DhKeyPair.generate(b"b" * 32)
        carol = DhKeyPair.generate(b"c" * 32)
        assert alice.shared_secret(bob.public) != alice.shared_secret(carol.public)

    def test_public_in_group(self):
        kp = DhKeyPair.generate(b"x" * 32)
        assert 2 <= kp.public <= MODP_GROUP_14 - 2

    def test_degenerate_peer_rejected(self):
        kp = DhKeyPair.generate(b"x" * 32)
        for bad in (0, 1, MODP_GROUP_14 - 1, MODP_GROUP_14):
            with pytest.raises(CryptoError):
                kp.shared_secret(bad)

    def test_insufficient_randomness_rejected(self):
        with pytest.raises(CryptoError):
            DhKeyPair.generate(b"short")

    def test_public_bytes_length(self):
        assert len(DhKeyPair.generate(b"x" * 32).public_bytes()) == 256
