"""Tests: wake-word gating — the accidental-activation defense."""

import pytest

from repro.cloud.auditor import LeakAuditor
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.wakeword import DEFAULT_WAKE_WORDS, GateDecision, WakeWordGate
from repro.core.workload import UtteranceWorkload
from repro.ml.dataset import UtteranceGenerator
from repro.sim.rng import SimRng


class TestGateUnit:
    def test_wake_word_detected_and_stripped(self):
        gate = WakeWordGate()
        decision = gate.check("alexa set a timer for ten minutes")
        assert decision.intended
        assert decision.command == "set a timer for ten minutes"

    def test_side_conversation_rejected(self):
        gate = WakeWordGate()
        decision = gate.check("did you hear what the doctor said")
        assert not decision.intended

    def test_wake_word_mid_sentence_does_not_trigger(self):
        gate = WakeWordGate()
        assert not gate.check("i think alexa is listening").intended

    def test_case_and_punctuation_insensitive(self):
        gate = WakeWordGate()
        assert gate.check("Alexa, play jazz!").intended

    def test_custom_wake_words(self):
        gate = WakeWordGate(wake_words=("jarvis",))
        assert gate.check("jarvis open the pod bay doors").intended
        assert not gate.check("alexa play jazz").intended

    def test_empty_wake_words_rejected(self):
        with pytest.raises(ValueError):
            WakeWordGate(wake_words=())

    def test_empty_transcript(self):
        assert not WakeWordGate().check("").intended


@pytest.fixture(scope="module")
def gated_setup(provisioned):
    """A gated bundle plus a mixed addressed/overheard workload."""
    bundle = provisioned.bundle
    corpus = UtteranceGenerator(SimRng(17, "household")).generate(
        16, sensitive_fraction=0.5, addressed_fraction=0.5,
    )
    workload = UtteranceWorkload.from_corpus(corpus, bundle.vocoder)
    return bundle, workload


class TestGatedPipeline:
    def _run(self, bundle, workload, gate):
        original_gate = bundle.gate
        bundle.gate = gate
        try:
            platform = IotPlatform.create(seed=501)
            pipeline = SecurePipeline(platform, bundle)
            run = pipeline.process(workload)
        finally:
            bundle.gate = original_gate
        return platform, run

    def test_overheard_conversations_never_sent(self, gated_setup):
        bundle, workload = gated_setup
        platform, run = self._run(bundle, workload, WakeWordGate())
        overheard = [r for r in run.results if not r.utterance.addressed]
        assert overheard, "workload must contain side conversations"
        assert all(not r.forwarded for r in overheard)
        sensitive = [r for r in run.results if r.utterance.sensitive]
        assert all(not r.forwarded for r in sensitive)

    def test_addressed_benign_still_delivered(self, gated_setup):
        bundle, workload = gated_setup
        platform, run = self._run(bundle, workload, WakeWordGate())
        addressed_benign = [
            u for u in workload.utterances if u.addressed and not u.sensitive
        ]
        assert len(platform.cloud.received_transcripts) == len(addressed_benign)

    def test_without_gate_accidental_benign_leaks(self, gated_setup):
        """The counterfactual: content filtering alone cannot stop the
        2019-style incident — overheard *benign* chat sails through."""
        bundle, workload = gated_setup
        platform, run = self._run(bundle, workload, None)
        report = LeakAuditor(workload.utterances).report(
            platform.cloud.received_transcripts
        )
        assert report.accidental_leak_rate > 0.0

    def test_gate_classifies_command_without_wake_word(self, gated_setup):
        """The wake word must be stripped before classification, so the
        classifier sees exactly what it was trained on."""
        bundle, workload = gated_setup
        platform, run = self._run(bundle, workload, WakeWordGate())
        for result in run.results:
            if result.utterance.addressed:
                # Content decision matches the ground-truth label.
                assert result.sensitive_predicted == result.utterance.sensitive

    def test_vocoder_covers_wake_words(self, provisioned):
        for word in DEFAULT_WAKE_WORDS:
            provisioned.bundle.vocoder.render(word)  # no raise
