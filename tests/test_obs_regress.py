"""Unit tests: the perf-regression gate."""

import copy
import json

import pytest

from repro.obs.regress import (
    BASELINE_PATH,
    Tolerance,
    compare_profiles,
    load_profile_doc,
)


def profile_doc(cycles=1_000_000, switches=10, energy=5.0):
    """A minimal two-stage profile document in profile.json shape."""
    return {
        "seed": 7,
        "utterances": 4,
        "mode": "batch",
        "stages": [
            {"pipeline": "secure", "stage": "asr",
             "total_cycles": cycles, "world_switches": switches,
             "energy_mj": energy},
            {"pipeline": "secure", "stage": "relay",
             "total_cycles": cycles // 2, "world_switches": switches,
             "energy_mj": energy / 2},
        ],
        "pipelines": {
            "secure": {"total_cycles": cycles * 2,
                       "world_switches": switches * 2,
                       "energy_mj": energy * 2},
        },
    }


class TestTolerance:
    def test_limit_combines_rel_and_abs(self):
        tol = Tolerance(rel=0.10, abs=100)
        assert tol.limit(1_000) == pytest.approx(1_200)

    def test_abs_floor_protects_zero_baselines(self):
        assert Tolerance(rel=0.10, abs=4).limit(0) == 4


class TestCompareProfiles:
    def test_identical_profiles_pass(self):
        report = compare_profiles(profile_doc(), profile_doc())
        assert report.passed
        assert {r.status for r in report.rows} == {"ok"}

    def test_improvement_passes(self):
        report = compare_profiles(
            current=profile_doc(cycles=500_000), baseline=profile_doc()
        )
        assert report.passed
        assert "improved" in {r.status for r in report.rows}

    def test_regression_fails_and_names_the_stage(self):
        report = compare_profiles(
            current=profile_doc(cycles=2_000_000), baseline=profile_doc()
        )
        assert not report.passed
        bad = report.failures
        assert all(r.status == "regressed" for r in bad)
        assert ("secure", "asr") in {(r.pipeline, r.stage) for r in bad}
        assert "FAIL" in report.table()

    def test_within_tolerance_passes(self):
        report = compare_profiles(
            current=profile_doc(cycles=1_050_000),  # +5% < 10% budget
            baseline=profile_doc(),
        )
        assert report.passed

    def test_missing_stage_fails(self):
        current = profile_doc()
        current["stages"] = [current["stages"][0]]  # relay vanished
        report = compare_profiles(current, profile_doc())
        assert not report.passed
        assert {r.stage for r in report.failures} == {"relay"}
        assert all(r.status == "missing" for r in report.failures)

    def test_new_stage_passes(self):
        current = profile_doc()
        current["stages"].append(
            {"pipeline": "secure", "stage": "vad",
             "total_cycles": 99, "world_switches": 0, "energy_mj": 0.1}
        )
        report = compare_profiles(current, profile_doc())
        assert report.passed
        assert "new" in {r.status for r in report.rows}

    def test_custom_tolerances(self):
        tight = {"total_cycles": Tolerance(rel=0.0, abs=0)}
        report = compare_profiles(
            current=profile_doc(cycles=1_000_001),
            baseline=profile_doc(),
            stage_tolerances=tight,
            pipeline_tolerances=tight,
        )
        assert not report.passed

    def test_table_collapses_in_budget_rows(self):
        report = compare_profiles(profile_doc(), profile_doc())
        assert "within budget" in report.table()
        full = report.table(only_interesting=False)
        assert "within budget" not in full
        assert "PASS" in full

    def test_delta_pct(self):
        report = compare_profiles(
            current=profile_doc(cycles=1_100_000), baseline=profile_doc()
        )
        asr = next(
            r for r in report.rows
            if r.stage == "asr" and r.metric == "total_cycles"
        )
        assert asr.delta_pct == pytest.approx(10.0)

    def test_doc_round_trips_through_json(self):
        doc = compare_profiles(profile_doc(), profile_doc()).to_doc()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["passed"] is True


class TestCommittedBaseline:
    def test_baseline_is_committed_and_well_formed(self):
        assert BASELINE_PATH.exists(), (
            "CI perf-gate needs benchmarks/baselines/profile_baseline.json"
        )
        doc = load_profile_doc(BASELINE_PATH)
        assert doc["stages"], doc
        assert "pipelines" in doc
        # The gate re-measures with the baseline's own parameters; these
        # must be present for measurement-for-measurement comparison.
        assert {"seed", "utterances", "mode"} <= set(doc)

    def test_baseline_compares_clean_against_itself(self):
        doc = load_profile_doc(BASELINE_PATH)
        report = compare_profiles(copy.deepcopy(doc), doc)
        assert report.passed
