"""Integration tests: the baseline pipeline and secure-vs-baseline trends."""

import pytest

from repro.core.baseline import BaselinePipeline
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from tests.test_core_pipeline import MIXED, make_workload


@pytest.fixture
def baseline_run(provisioned):
    platform = IotPlatform.create(seed=41)
    pipeline = BaselinePipeline(platform, provisioned.bundle.asr, use_tls=True)
    workload = make_workload(provisioned, MIXED)
    run = pipeline.process(workload)
    return platform, pipeline, workload, run


class TestBaselineBehaviour:
    def test_everything_reaches_cloud(self, baseline_run):
        platform, _, workload, run = baseline_run
        assert run.forwarded_count() == len(workload)
        assert len(platform.cloud.received_transcripts) == len(workload)

    def test_transcripts_correct(self, baseline_run):
        _, _, _, run = baseline_run
        for result in run.results:
            assert result.transcript == result.utterance.text

    def test_no_world_switches(self, baseline_run):
        platform, _, _, _ = baseline_run
        assert platform.machine.cpu.switch_count == 0
        assert platform.machine.monitor.smc_count == 0

    def test_driver_buffers_normal_world_readable(self, baseline_run):
        platform, pipeline, _, _ = baseline_run
        from repro.tz.worlds import World

        for addr, size in pipeline.attack_targets():
            platform.machine.memory.read(addr, size, World.NORMAL)  # no raise

    def test_tls_baseline_encrypts_wire(self, baseline_run):
        platform, _, workload, _ = baseline_run
        wire = b"".join(platform.supplicant.net.wire_log)
        assert b"password" not in wire

    def test_plaintext_variant_leaks_wire(self, provisioned):
        platform = IotPlatform.create(seed=42)
        pipeline = BaselinePipeline(
            platform, provisioned.bundle.asr, use_tls=False
        )
        workload = make_workload(provisioned, MIXED)
        pipeline.process(workload)
        wire = b"".join(platform.supplicant.net.wire_log)
        assert b"password" in wire

    def test_normal_world_filter_variant(self, provisioned):
        platform = IotPlatform.create(seed=43)
        pipeline = BaselinePipeline(
            platform, provisioned.bundle.asr, bundle=provisioned.bundle
        )
        workload = make_workload(provisioned, MIXED)
        run = pipeline.process(workload)
        # Filtering works functionally (but offers no OS-compromise defense).
        assert run.forwarded_count() < len(workload)
        assert pipeline.name == "baseline+nw-filter"


class TestSecureVsBaselineTrends:
    """The trade-off shapes the paper anticipates (Sections III & V)."""

    @pytest.fixture
    def both_runs(self, provisioned):
        p_secure = IotPlatform.create(seed=44)
        secure = SecurePipeline(p_secure, provisioned.bundle)
        run_secure = secure.process(make_workload(provisioned, MIXED))

        p_base = IotPlatform.create(seed=44)
        base = BaselinePipeline(p_base, provisioned.bundle.asr, use_tls=True)
        run_base = base.process(make_workload(provisioned, MIXED))
        return run_secure, run_base

    def test_secure_is_slower(self, both_runs):
        run_secure, run_base = both_runs
        secure_proc = run_secure.processing_latency_cycles().mean()
        base_proc = run_base.processing_latency_cycles().mean()
        assert secure_proc > base_proc

    def test_overhead_is_bounded(self, both_runs):
        """Slower, but not absurdly so — switches are thousands of cycles."""
        run_secure, run_base = both_runs
        ratio = (
            run_secure.processing_latency_cycles().mean()
            / run_base.processing_latency_cycles().mean()
        )
        assert 1.0 < ratio < 3.0

    def test_secure_costs_more_energy(self, both_runs):
        run_secure, run_base = both_runs
        assert run_secure.total_energy_mj() > run_base.total_energy_mj()

    def test_summaries_have_shared_schema(self, both_runs):
        run_secure, run_base = both_runs
        assert set(run_secure.summary()) == set(run_base.summary())
