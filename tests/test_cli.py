"""Unit tests: the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for command in ("demo", "privacy", "profile", "trace", "fleet",
                        "health", "compare", "tcb", "models", "info",
                        "analyze"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_profile_options(self):
        args = build_parser().parse_args(
            ["profile", "--utterances", "4", "--continuous",
             "--output", "out.json"]
        )
        assert args.utterances == 4
        assert args.continuous
        assert args.output == "out.json"

    def test_profile_output_defaults_to_repo_root(self):
        # None means "resolve against the repo checkout", not the CWD.
        assert build_parser().parse_args(["profile"]).output is None

    def test_fleet_options(self):
        args = build_parser().parse_args(
            ["fleet", "--devices", "3", "--metrics-out", "m.txt"]
        )
        assert args.devices == 3
        assert args.metrics_out == "m.txt"

    def test_health_fault_profile_choices(self):
        args = build_parser().parse_args(
            ["health", "--fault-profile", "lossy"]
        )
        assert args.fault_profile == "lossy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["health", "--fault-profile", "chaos"])

    def test_compare_baseline_default_is_committed_path(self):
        args = build_parser().parse_args(["compare"])
        assert args.baseline.endswith("profile_baseline.json")

    def test_trace_format_choices(self):
        args = build_parser().parse_args(["trace", "--format", "chrome"])
        assert args.format == "chrome"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--format", "xml"])

    def test_seed_option(self):
        args = build_parser().parse_args(["demo", "--seed", "99"])
        assert args.seed == 99

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "dram_secure" in out
        assert "world switch" in out

    def test_tcb(self, capsys):
        assert main(["tcb"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "full driver" in out
        assert "dead TCB" in out

    def test_analyze_clean_with_baseline(self, capsys):
        assert main(["analyze", "--fail-on-new"]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_analyze_json_report(self, capsys, tmp_path):
        import json

        report = tmp_path / "analysis.json"
        assert main(["analyze", "--format", "json",
                     "--output", str(report)]) == 0
        doc = json.loads(report.read_text())
        assert doc["new"] == []
        assert json.loads(capsys.readouterr().out) == doc

    def test_analyze_no_baseline_reports_accepted_findings(self, capsys):
        # Without the baseline the accepted W002 findings count as new.
        assert main(["analyze", "--no-baseline", "--fail-on-new"]) == 1
        assert "W002" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--utterances", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "forwarded" in out
        assert "world switches" in out

    def test_privacy(self, capsys):
        assert main(["privacy", "--utterances", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "secure (ours)" in out
        assert "100%" in out and "0%" in out

    def test_profile(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "profile.json"
        assert main(["profile", "--utterances", "2", "--seed", "5",
                     "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "secure pipeline" in out
        assert "baseline pipeline" in out
        for stage in ("capture", "asr", "classify", "relay"):
            assert stage in out
        doc = json.loads(out_path.read_text())
        assert {r["pipeline"] for r in doc["stages"]} == {
            "secure", "baseline",
        }
        for row in doc["stages"]:
            assert row["p50_cycles"] <= row["p95_cycles"]

    def test_trace_jsonl(self, capsys):
        import json

        assert main(["trace", "--utterances", "2", "--seed", "5",
                     "--category", "stage.secure"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines()
                 if l.startswith("{")]
        assert lines
        docs = [json.loads(l) for l in lines]
        assert all(d["category"] == "stage.secure" for d in docs)
        assert {d["name"] for d in docs} >= {"capture", "asr"}

    def test_trace_chrome(self, capsys):
        import json

        assert main(["trace", "--utterances", "2", "--seed", "5",
                     "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_fleet(self, capsys, tmp_path):
        import json

        out = tmp_path / "fleet.json"
        metrics = tmp_path / "fleet.openmetrics"
        assert main(["fleet", "--devices", "2", "--utterances", "2",
                     "--seed", "5", "--output", str(out),
                     "--metrics-out", str(metrics)]) == 0
        text = capsys.readouterr().out
        assert "relay success" in text
        doc = json.loads(out.read_text())
        assert len(doc["devices"]) == 2
        assert doc["fleet"]["latency_hist"]["count"] == (
            doc["fleet"]["utterances"]
        )
        om = metrics.read_text()
        assert om.endswith("# EOF\n")
        assert "repro_fleet_e2e_latency_cycles_count" in om

    def test_health_violation_exits_nonzero_and_dumps(self, capsys, tmp_path):
        import json

        dump = tmp_path / "flight.jsonl"
        # A 1 ns latency budget cannot hold: the rule fires, the flight
        # recorder dumps, and the exit code goes nonzero for alerting.
        assert main(["health", "--utterances", "2", "--seed", "5",
                     "--latency-budget-ms", "0.000001",
                     "--dump", str(dump)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "flight recorder" in out
        docs = [json.loads(l) for l in dump.read_text().splitlines()]
        assert {d["name"] for d in docs} >= {"capture", "asr"}

    def test_compare_exit_codes(self, capsys, tmp_path):
        import json

        from repro.obs.regress import BASELINE_PATH

        # Baseline vs itself: pass.
        current = tmp_path / "current.json"
        doc = json.loads(BASELINE_PATH.read_text())
        current.write_text(json.dumps(doc))
        assert main(["compare", "--current", str(current)]) == 0
        assert "PASS" in capsys.readouterr().out
        # Doctored: every stage 10x over budget -> fail.
        for row in doc["stages"]:
            row["total_cycles"] *= 10
        current.write_text(json.dumps(doc))
        out_json = tmp_path / "gate.json"
        assert main(["compare", "--current", str(current),
                     "--output", str(out_json)]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert json.loads(out_json.read_text())["passed"] is False
        # Missing baseline -> distinct exit code.
        assert main(["compare", "--baseline",
                     str(tmp_path / "nope.json")]) == 2

    def test_trace_events(self, capsys):
        assert main(["trace", "--utterances", "2", "--seed", "5",
                     "--events", "--category", "tz.smc", "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert '"category": "tz.smc"' in out


class TestTeardown:
    def test_demo_closes_pipeline(self, capsys, monkeypatch):
        import repro

        real = repro.build_demo_pipeline
        built = {}

        def capture(**kwargs):
            secure, workload, platform = real(**kwargs)
            built["pipeline"], built["platform"] = secure, platform
            return secure, workload, platform

        monkeypatch.setattr(repro, "build_demo_pipeline", capture)
        assert main(["demo", "--utterances", "2", "--seed", "5"]) == 0
        pipeline, platform = built["pipeline"], built["platform"]
        assert pipeline.session.closed
        assert platform.tee.ta_instance(pipeline.ta_uuid) is None

    def test_trace_closes_pipeline(self, capsys, monkeypatch):
        import repro

        real = repro.build_demo_pipeline
        built = {}

        def capture(**kwargs):
            secure, workload, platform = real(**kwargs)
            built["pipeline"], built["platform"] = secure, platform
            return secure, workload, platform

        monkeypatch.setattr(repro, "build_demo_pipeline", capture)
        assert main(["trace", "--utterances", "2", "--seed", "5"]) == 0
        pipeline, platform = built["pipeline"], built["platform"]
        assert pipeline.session.closed
        assert platform.tee.ta_instance(pipeline.ta_uuid) is None

    def test_privacy_closes_both_pipelines(self, capsys, monkeypatch):
        from repro.core.baseline import BaselinePipeline
        from repro.core.pipeline import SecurePipeline

        closed = []
        for cls in (SecurePipeline, BaselinePipeline):
            orig = cls.close

            def wrapper(self, _orig=orig, _name=cls.__name__):
                closed.append(_name)
                return _orig(self)

            monkeypatch.setattr(cls, "close", wrapper)
        assert main(["privacy", "--utterances", "4", "--seed", "5"]) == 0
        assert closed.count("SecurePipeline") == 1
        assert closed.count("BaselinePipeline") == 1


class TestHealthExitCodes:
    """The documented contract: 0 ok, 1 violation/burn/stall, 2 NO DATA."""

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["health", "--help"])
        text = capsys.readouterr().out
        assert "exit codes" in text
        assert "NO DATA" in text
        for flag in ("--burn-rate", "--window-hours", "--trace-ids",
                     "--trace-only"):
            assert flag in text

    def test_burn_rate_without_history_is_no_data_exit_2(self, capsys):
        # One utterance stamps a single snapshot: burn windows need two,
        # so the verdict is NO DATA (2), distinct from a violation (1).
        assert main(["health", "--utterances", "1", "--seed", "5",
                     "--burn-rate", "--window-hours", "1.0",
                     "--dump", ""]) == 2
        out = capsys.readouterr().out
        assert "NO DATA" in out

    def test_burn_rate_clean_run_exits_0(self, capsys):
        assert main(["health", "--utterances", "3", "--seed", "5",
                     "--burn-rate", "--window-hours", "0.0001",
                     "--dump", ""]) == 0
        out = capsys.readouterr().out
        assert "burn:p99_latency" in out
        assert "burn:relay_success" in out

    def test_fleet_sampling_and_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["fleet", "--sample-rate", "auto", "--traces", "t.jsonl",
             "--trace-chrome", "c.json"]
        )
        assert args.sample_rate == "auto"
        assert args.traces == "t.jsonl"
        assert args.trace_chrome == "c.json"

    def test_fleet_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            main(["fleet", "--devices", "1", "--utterances", "1",
                  "--sample-rate", "never"])
