"""Unit tests: the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for command in ("demo", "privacy", "tcb", "models", "info"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_seed_option(self):
        args = build_parser().parse_args(["demo", "--seed", "99"])
        assert args.seed == 99

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "dram_secure" in out
        assert "world switch" in out

    def test_tcb(self, capsys):
        assert main(["tcb"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "full driver" in out

    def test_demo(self, capsys):
        assert main(["demo", "--utterances", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "forwarded" in out
        assert "world switches" in out

    def test_privacy(self, capsys):
        assert main(["privacy", "--utterances", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "secure (ours)" in out
        assert "100%" in out and "0%" in out
