"""Unit tests: TA-from-TA isolation (paper §II's second guarantee)."""

import pytest

from repro.errors import TeeAccessDenied
from repro.optee.os import OpTeeOs
from repro.optee.params import Params, Value
from repro.optee.supplicant import TeeSupplicant
from repro.optee.ta import TrustedApplication
from repro.tz.monitor import SmcFunction

SECRET = b"ta-alpha's private key material!"


class AlphaTa(TrustedApplication):
    """Holds a secret in its heap; leaks its address (a logging bug)."""

    NAME = "ta.alpha"
    leaked_addr = 0  # the 'leak' other TAs learn the address from

    def on_create(self, ctx):
        addr = ctx.store_bytes(SECRET)
        type(self).leaked_addr = addr

    def on_invoke(self, session, cmd, params):
        if cmd == 1:  # read own secret back — legitimate
            return self.ctx.load_bytes(type(self).leaked_addr, len(SECRET))
        return super().on_invoke(session, cmd, params)


class MaliciousTa(TrustedApplication):
    """A co-resident TA trying to read alpha's secret."""

    NAME = "ta.mallory"

    def on_invoke(self, session, cmd, params):
        if cmd == 1:  # try the cross-TA read
            return self.ctx.load_bytes(AlphaTa.leaked_addr, len(SECRET))
        if cmd == 2:  # try a cross-TA write
            self.ctx.write_bytes(AlphaTa.leaked_addr, b"corrupted!")
            return None
        if cmd == 3:  # own allocations still work
            addr = self.ctx.store_bytes(b"mallory's own data")
            return self.ctx.load_bytes(addr, 18)
        return super().on_invoke(session, cmd, params)


@pytest.fixture
def stack(machine):
    tee = OpTeeOs(machine)
    tee.attach_supplicant(TeeSupplicant(machine))
    tee.install_ta(AlphaTa)
    tee.install_ta(MaliciousTa)
    return machine, tee


def call(machine, op, **kw):
    return machine.monitor.smc(SmcFunction.CALL_WITH_ARG, {"op": op, **kw})


def open_both(machine):
    alpha_sid = call(machine, "open_session", uuid=AlphaTa().uuid,
                     params=Params())
    mallory_sid = call(machine, "open_session", uuid=MaliciousTa().uuid,
                       params=Params())
    return alpha_sid, mallory_sid


class TestTaIsolation:
    def test_own_heap_accessible(self, stack):
        machine, _ = stack
        alpha_sid, _ = open_both(machine)
        assert call(machine, "invoke", session=alpha_sid, cmd=1,
                    params=Params()) == SECRET

    def test_cross_ta_read_denied(self, stack):
        machine, _ = stack
        _, mallory_sid = open_both(machine)
        with pytest.raises(TeeAccessDenied):
            call(machine, "invoke", session=mallory_sid, cmd=1,
                 params=Params())

    def test_cross_ta_write_denied_and_secret_intact(self, stack):
        machine, _ = stack
        alpha_sid, mallory_sid = open_both(machine)
        with pytest.raises(TeeAccessDenied):
            call(machine, "invoke", session=mallory_sid, cmd=2,
                 params=Params())
        assert call(machine, "invoke", session=alpha_sid, cmd=1,
                    params=Params()) == SECRET

    def test_mallory_own_allocations_unaffected(self, stack):
        machine, _ = stack
        _, mallory_sid = open_both(machine)
        assert call(machine, "invoke", session=mallory_sid, cmd=3,
                    params=Params()) == b"mallory's own data"

    def test_violation_is_traced(self, stack):
        machine, _ = stack
        _, mallory_sid = open_both(machine)
        with pytest.raises(TeeAccessDenied):
            call(machine, "invoke", session=mallory_sid, cmd=1,
                 params=Params())
        events = machine.trace.events("optee.isolation")
        assert len(events) == 1
        assert events[0].data["ta"] == "ta.mallory"

    def test_freed_memory_not_readable(self, stack):
        """Even the owner loses access after free (use-after-free guard)."""
        machine, tee = stack
        alpha_sid, _ = open_both(machine)
        instance = tee.ta_instance(AlphaTa().uuid)
        from repro.tz.worlds import World

        machine.cpu._set_world(World.SECURE)
        try:
            addr = instance.ctx.store_bytes(b"transient")
            instance.ctx.free(addr)
            with pytest.raises(TeeAccessDenied):
                instance.ctx.load_bytes(addr, 9)
        finally:
            machine.cpu._set_world(World.NORMAL)
