"""Unit tests: I²S driver — state machine, capture, mixer, build stripping."""

import numpy as np
import pytest

from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DeviceStateError, DriverError
from repro.peripherals.audio import BufferSource, ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.tz.memory import MemoryRegion, SecurityAttr


@pytest.fixture
def rig(machine):
    """Machine + wired controller + kernel-hosted driver."""
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    mic = DigitalMicrophone(ToneSource(), fmt=controller.format)
    I2sBus(controller, mic)
    host = KernelDriverHost(machine)
    driver = I2sDriver(host, controller, region)
    return machine, driver, mic, controller


def open_capture(driver, chunk=64):
    driver.probe()
    driver.pcm_open_capture(chunk)
    driver.trigger_start()


class TestStateMachine:
    def test_initial_state(self, rig):
        _, driver, _, _ = rig
        assert driver.state == "unbound"

    def test_probe_transitions_to_idle(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        assert driver.state == "idle"

    def test_double_probe_rejected(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        with pytest.raises(DeviceStateError):
            driver.probe()

    def test_read_before_start_rejected(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        driver.pcm_open_capture(64)
        with pytest.raises(DeviceStateError):
            driver.read_chunk()

    def test_open_requires_idle(self, rig):
        _, driver, _, _ = rig
        with pytest.raises(DeviceStateError):
            driver.pcm_open_capture(64)

    def test_stop_requires_capturing(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        with pytest.raises(DeviceStateError):
            driver.trigger_stop()

    def test_full_cycle_returns_to_idle(self, rig):
        _, driver, _, _ = rig
        open_capture(driver)
        driver.read_chunk()
        driver.trigger_stop()
        driver.pcm_close()
        assert driver.state == "idle"

    def test_close_while_capturing_stops_first(self, rig):
        _, driver, _, _ = rig
        open_capture(driver)
        driver.pcm_close()
        assert driver.state == "idle"

    def test_remove_releases_everything(self, rig):
        machine, driver, _, _ = rig
        open_capture(driver)
        driver.remove()
        assert driver.state == "unbound"
        assert machine.ns_allocator.used_bytes == 0

    def test_suspend_resume(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        driver.suspend()
        assert driver.state == "suspended"
        driver.resume()
        assert driver.state == "idle"

    def test_suspend_while_capturing_rejected(self, rig):
        _, driver, _, _ = rig
        open_capture(driver)
        with pytest.raises(DeviceStateError):
            driver.suspend()


class TestCapture:
    def test_read_chunk_length(self, rig):
        _, driver, _, _ = rig
        open_capture(driver, chunk=200)
        assert len(driver.read_chunk()) == 200

    def test_captured_signal_matches_source(self, rig):
        _, driver, mic, _ = rig
        expect = (np.arange(64) * 100 - 3200).astype(np.int16)
        mic.swap_source(BufferSource(expect))
        open_capture(driver, chunk=64)
        got = driver.read_chunk()
        assert np.array_equal(got, expect)

    def test_buffer_holds_last_chunk(self, rig):
        machine, driver, mic, _ = rig
        expect = (np.arange(32) + 1).astype(np.int16)
        mic.swap_source(BufferSource(expect))
        open_capture(driver, chunk=32)
        driver.read_chunk()
        from repro.tz.worlds import World

        raw = machine.memory.read(driver._buf_addr, 64, World.NORMAL)
        assert np.array_equal(np.frombuffer(raw, dtype="<i2"), expect)

    def test_chunk_larger_than_fifo_works(self, rig):
        """Capture interleaves FIFO fills and drains, so chunk > depth is fine."""
        _, driver, _, controller = rig
        open_capture(driver, chunk=controller.fifo_depth * 4)
        pcm = driver.read_chunk()
        assert len(pcm) == controller.fifo_depth * 4

    def test_pointer_tracks_frames(self, rig):
        _, driver, _, _ = rig
        open_capture(driver, chunk=64)
        driver.read_chunk()
        driver.read_chunk()
        assert driver.pcm_pointer() >= 128


class TestMixer:
    def test_volume_scales_samples(self, rig):
        _, driver, mic, _ = rig
        mic.swap_source(BufferSource(np.full(64, 1000, dtype=np.int16)))
        open_capture(driver, chunk=64)
        driver.set_volume(50)
        assert driver.read_chunk()[0] == 500

    def test_mute_zeroes(self, rig):
        _, driver, _, _ = rig
        open_capture(driver)
        driver.set_mute(True)
        assert not np.any(driver.read_chunk())

    def test_volume_range(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        with pytest.raises(DriverError):
            driver.set_volume(201)
        with pytest.raises(DriverError):
            driver.set_volume(-1)

    def test_volume_boost_clips(self, rig):
        _, driver, mic, _ = rig
        mic.swap_source(BufferSource(np.full(64, 30000, dtype=np.int16)))
        open_capture(driver, chunk=64)
        driver.set_volume(200)
        assert driver.read_chunk().max() == 32767

    def test_mixer_enumerate(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        assert "Capture Volume" in driver.mixer_enumerate()


class TestEncode:
    def test_pcm16(self, rig):
        _, driver, _, _ = rig
        open_capture(driver, chunk=32)
        pcm = driver.read_chunk()
        assert len(driver.encode_chunk(pcm, "pcm16")) == 64

    def test_mulaw(self, rig):
        _, driver, _, _ = rig
        open_capture(driver, chunk=32)
        pcm = driver.read_chunk()
        assert len(driver.encode_chunk(pcm, "mulaw")) == 32

    def test_unknown_codec(self, rig):
        _, driver, _, _ = rig
        open_capture(driver, chunk=32)
        with pytest.raises(DriverError):
            driver.encode_chunk(driver.read_chunk(), "opus")


class TestPlaybackAndDuplex:
    def test_playback_path(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        driver.pcm_open_playback(64)
        n = driver.write_chunk(np.zeros(64, dtype=np.int16))
        assert n == 64
        driver.pcm_close_playback()
        assert driver.state == "idle"

    def test_duplex(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        driver.duplex_start(64)
        assert driver.state == "duplex"
        driver.duplex_stop()
        assert driver.state == "idle"


class TestDebugAndIrq:
    def test_dump_registers(self, rig):
        _, driver, _, _ = rig
        open_capture(driver)
        dump = driver.dump_registers()
        assert {"ctrl", "status", "fifo_level"} <= set(dump)

    def test_selftest(self, rig):
        _, driver, _, _ = rig
        driver.probe()
        assert driver.selftest()

    def test_irq_spurious(self, rig):
        _, driver, _, _ = rig
        open_capture(driver)
        assert driver.irq_handler() == "spurious"


class TestCompiledOut:
    def test_stripped_function_raises(self, rig):
        machine, _, _, controller = rig
        region = machine.memory.region("i2s_mmio")
        driver = I2sDriver(
            KernelDriverHost(machine), controller, region,
            compiled_out=frozenset({"suspend", "_save_context"}),
        )
        driver.probe()
        with pytest.raises(DriverError, match="compiled out"):
            driver.suspend()

    def test_stripped_internal_function_raises(self, rig):
        machine, _, _, controller = rig
        region = machine.memory.region("i2s_mmio")
        driver = I2sDriver(
            KernelDriverHost(machine), controller, region,
            compiled_out=frozenset({"_pll_configure"}),
        )
        with pytest.raises(DriverError, match="compiled out"):
            driver.probe()  # probe -> clk_enable -> _pll_configure

    def test_loc_accounting(self, rig):
        machine, _, _, controller = rig
        region = machine.memory.region("i2s_mmio")
        full = I2sDriver.total_loc()
        driver = I2sDriver(
            KernelDriverHost(machine), controller, region,
            compiled_out=frozenset({"suspend"}),
        )
        assert driver.compiled_loc() == full - 58  # suspend's loc

    def test_functions_metadata(self):
        functions = I2sDriver.functions()
        assert len(functions) > 40
        assert functions["read_chunk"].entry_point
        assert not functions["_pll_configure"].entry_point
        subsystems = {f.subsystem for f in functions.values()}
        assert {"pcm", "clock", "power", "mixer", "tx", "debug"} <= subsystems
