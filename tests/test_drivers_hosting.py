"""Unit tests: driver hosting — world-dependent buffer security, camera driver."""

import numpy as np
import pytest

from repro.drivers.camera_driver import CameraDriver
from repro.drivers.conformance import (
    run_capture_conformance,
    run_mixer_conformance,
)
from repro.drivers.hosting import KernelDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DeviceStateError, DriverError, SecureAccessViolation
from repro.peripherals.camera import Camera, SyntheticScene
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.peripherals.audio import ToneSource
from repro.sim.rng import SimRng
from repro.tz.memory import MemoryRegion, SecurityAttr
from repro.tz.worlds import World


class TestKernelHost:
    def test_buffers_in_nonsecure_dram(self, machine):
        host = KernelDriverHost(machine)
        addr = host.alloc_buffer(256)
        region = machine.dram_ns
        assert region.base <= addr < region.end
        # Anyone in the normal world can read it.
        machine.memory.read(addr, 256, World.NORMAL)

    def test_world_is_normal(self, machine):
        assert KernelDriverHost(machine).world is World.NORMAL

    def test_cannot_touch_secure_memory(self, machine):
        host = KernelDriverHost(machine)
        with pytest.raises(SecureAccessViolation):
            host.read_mem(machine.dram_secure.base, 4)


class TestSecureHost:
    def _secure_host(self, machine):
        from repro.drivers.hosting import SecureDriverHost
        from repro.optee.os import OpTeeOs
        from repro.optee.pta import PseudoTa, PtaContext

        tee = OpTeeOs(machine)
        pta = PseudoTa()
        ctx = PtaContext(tee, pta)
        return SecureDriverHost(ctx)

    def test_buffers_in_secure_carveout(self, machine):
        host = self._secure_host(machine)
        addr = host.alloc_buffer(256)
        region = machine.dram_secure
        assert region.base <= addr < region.end
        # Normal world cannot read it.
        with pytest.raises(SecureAccessViolation):
            machine.memory.read(addr, 256, World.NORMAL)

    def test_world_is_secure(self, machine):
        assert self._secure_host(machine).world is World.SECURE

    def test_accesses_require_secure_cpu_state(self, machine):
        from repro.errors import WorldStateError

        host = self._secure_host(machine)
        addr = host.alloc_buffer(64)
        with pytest.raises(WorldStateError):
            host.write_mem(addr, b"x")  # CPU is in normal world
        machine.cpu._set_world(World.SECURE)
        try:
            host.write_mem(addr, b"x")
            assert host.read_mem(addr, 1) == b"x"
        finally:
            machine.cpu._set_world(World.NORMAL)


class TestCameraDriver:
    @pytest.fixture
    def camera_rig(self, machine):
        camera = Camera(SyntheticScene(SimRng(5)), width=16, height=12)
        driver = CameraDriver(KernelDriverHost(machine), camera)
        return machine, driver, camera

    def test_lifecycle(self, camera_rig):
        _, driver, _ = camera_rig
        driver.probe()
        driver.stream_on()
        frame = driver.capture_frame()
        assert frame.shape == (12, 16)
        driver.stream_off()
        driver.remove()
        assert driver.state == "unbound"

    def test_capture_requires_streaming(self, camera_rig):
        _, driver, _ = camera_rig
        driver.probe()
        with pytest.raises(DeviceStateError):
            driver.capture_frame()

    def test_exposure_applied(self, camera_rig):
        _, driver, _ = camera_rig
        driver.probe()
        driver.stream_on()
        driver.set_exposure(100)  # 2x gain
        bright = driver.capture_frame().mean()
        driver.set_exposure(25)  # 0.5x gain
        dark = driver.capture_frame().mean()
        assert bright > dark

    def test_exposure_range(self, camera_rig):
        _, driver, _ = camera_rig
        driver.probe()
        with pytest.raises(DriverError):
            driver.set_exposure(101)

    def test_frame_lands_in_host_buffer(self, camera_rig):
        machine, driver, camera = camera_rig
        driver.probe()
        driver.stream_on()
        frame = driver.capture_frame()
        raw = machine.memory.read(
            driver._buf_addr, camera.frame_bytes, World.NORMAL
        )
        assert raw == frame.tobytes()

    def test_formats(self, camera_rig):
        _, driver, _ = camera_rig
        driver.probe()
        assert driver.enumerate_formats() == ["GREY8"]


def _audio_rig(machine):
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
    return controller, region


class TestConformance:
    def test_full_driver_passes(self, machine):
        controller, region = _audio_rig(machine)
        driver = I2sDriver(KernelDriverHost(machine), controller, region)
        driver.probe()
        report = run_capture_conformance(driver)
        assert report.passed, report.failed_checks() or report.failure

    def test_mixer_conformance(self, machine):
        controller, region = _audio_rig(machine)
        driver = I2sDriver(KernelDriverHost(machine), controller, region)
        driver.probe()
        report = run_mixer_conformance(driver)
        assert report.passed

    def test_overstripped_build_fails_conformance(self, machine):
        controller, region = _audio_rig(machine)
        driver = I2sDriver(
            KernelDriverHost(machine), controller, region,
            compiled_out=frozenset({"_drain_fifo_pio"}),
        )
        driver.probe()
        report = run_capture_conformance(driver)
        assert not report.passed
        assert report.failure is not None and "compiled out" in report.failure

    def test_report_lists_failed_checks(self, machine):
        controller, region = _audio_rig(machine)
        driver = I2sDriver(KernelDriverHost(machine), controller, region)
        # Not probed: state is 'unbound', so the first check fails and
        # open raises.
        report = run_capture_conformance(driver)
        assert not report.passed
        assert "state_idle" in report.checks
