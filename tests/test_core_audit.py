"""Unit + integration tests: the security audit report."""

import pytest

from repro.core.audit import audit_machine
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.errors import SecureAccessViolation
from repro.kernel.attacks import BufferSnoopAttack
from repro.tz.worlds import World
from tests.test_core_pipeline import MIXED, make_workload


class TestCleanRun:
    def test_unattacked_run_is_clean(self, provisioned):
        platform = IotPlatform.create(seed=201)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        pipeline.process(make_workload(provisioned, MIXED[:2]))
        report = audit_machine(platform.machine, platform.supplicant)
        assert not report.compromised_indicators
        assert report.world_switches > 0
        assert report.smc_calls > 0
        assert report.bytes_on_wire > 0
        assert "clean" in report.render()

    def test_counters_match_machine(self, provisioned):
        platform = IotPlatform.create(seed=202)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        pipeline.process(make_workload(provisioned, MIXED[:1]))
        report = audit_machine(platform.machine, platform.supplicant)
        assert report.world_switches == platform.machine.cpu.switch_count
        assert report.smc_calls == platform.machine.monitor.smc_count


class TestAttackedRun:
    def test_attack_leaves_evidence(self, provisioned):
        platform = IotPlatform.create(seed=203)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        snoop = BufferSnoopAttack(platform.machine)
        pipeline.process(
            make_workload(provisioned, MIXED[:3]),
            after_each=lambda p: snoop.run(p.attack_targets()),
        )
        report = audit_machine(platform.machine, platform.supplicant)
        assert report.compromised_indicators
        assert len(report.violations) > 0
        assert report.violations_by_region  # attributed to regions
        assert "ATTENTION" in report.render()

    def test_violation_records_attributed(self, machine):
        with pytest.raises(SecureAccessViolation):
            machine.memory.read(machine.dram_secure.base + 64, 8, World.NORMAL)
        with pytest.raises(SecureAccessViolation):
            machine.memory.write(machine.secure_heap_region.base, b"x",
                                 World.NORMAL)
        report = audit_machine(machine)
        assert report.violations_by_region == {
            "dram_secure": 1, "secure_heap": 1,
        }
        reads = [v for v in report.violations if not v.write]
        writes = [v for v in report.violations if v.write]
        assert len(reads) == 1 and len(writes) == 1
        assert reads[0].address == machine.dram_secure.base + 64

    def test_panic_counted(self, provisioned):
        platform = IotPlatform.create(seed=204)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:2])
        original = provisioned.bundle.asr.transcribe
        provisioned.bundle.asr.transcribe = lambda pcm: (
            (_ for _ in ()).throw(RuntimeError("crash"))
        )
        try:
            from repro.errors import TeeTargetDead

            with pytest.raises(TeeTargetDead):
                pipeline.process_item(workload.items[0])
        finally:
            provisioned.bundle.asr.transcribe = original
        report = audit_machine(platform.machine, platform.supplicant)
        assert report.ta_panics == 1
        assert report.compromised_indicators
