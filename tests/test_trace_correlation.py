"""End-to-end trace correlation: device spans -> relay -> queue -> cloud.

The tentpole contract: with ``collect_traces`` on, every utterance gets
a deterministic ``trace_id`` (``<device>/u<seq>``, derived from the TA's
own utterance counter — no ambient RNG), and that id is visible on the
device's spans, the AVS events the relay ships, the sealed
store-and-forward queue entries, the cloud's records, and health
alerts.  With it off, nothing carries an id and the wire bytes are the
historical ones.  Either way, decisions are byte-identical — tracing is
telemetry, not behaviour.
"""

import json

import pytest

from repro.obs.export import fleet_chrome_trace, fleet_trace_jsonl
from repro.obs.fleet import (
    DeviceSpec,
    FleetReport,
    simulate_device_runtime,
)
from repro.relay.avs import AvsEvent


def _spec(device_id="d00", seed=1007, utterances=4, profile="clean"):
    return DeviceSpec(device_id=device_id, seed=seed, utterances=utterances,
                      sensitive_fraction=0.25, fault_profile=profile)


@pytest.fixture(scope="module")
def traced(provisioned):
    """One traced clean-network device run (shared: ~seconds)."""
    return simulate_device_runtime(
        _spec(), provisioned.bundle, collect_traces=True
    )


@pytest.fixture(scope="module")
def untraced(provisioned):
    return simulate_device_runtime(_spec(), provisioned.bundle)


class TestTraceIds:
    def test_cloud_records_carry_device_scoped_ids(self, traced):
        records = traced.platform.cloud.received
        assert records, "clean run must deliver transcripts"
        for rec in records:
            assert rec.trace_id.startswith("d00/u")

    def test_ids_are_sequential_per_utterance(self, traced):
        spans = traced.machine.obs.tracer.spans
        tids = []
        for sp in spans:
            if sp.trace_id and sp.trace_id not in tids:
                tids.append(sp.trace_id)
        assert tids == [f"d00/u{i + 1:05d}" for i in range(len(tids))]
        assert len(tids) == traced.report.summary["utterances"]

    def test_pipeline_stages_share_the_utterance_id(self, traced):
        spans = traced.machine.obs.tracer.spans
        by_tid = {}
        for sp in spans:
            if sp.trace_id:
                by_tid.setdefault(sp.trace_id, set()).add(sp.name)
        stages = by_tid["d00/u00001"]
        assert {"capture", "asr", "classify", "filter"} <= stages

    def test_untraced_run_has_no_ids_anywhere(self, untraced):
        assert all(
            not sp.trace_id for sp in untraced.machine.obs.tracer.spans
        )
        assert all(
            rec.trace_id == "" for rec in untraced.platform.cloud.received
        )
        assert untraced.report.trace_spans == []

    def test_decisions_byte_identical_traced_or_not(self, traced, untraced):
        keys = ("utterances", "accuracy", "forwarded", "sent", "queued",
                "degraded", "relay_attempts")
        decide = lambda rt: json.dumps(
            {
                "summary": {k: rt.report.summary[k] for k in keys},
                "transcripts": rt.platform.cloud.received_transcripts,
            },
            sort_keys=True,
        )
        assert decide(traced) == decide(untraced)


class TestWireBytes:
    def test_trace_id_omitted_when_empty(self):
        plain = AvsEvent.recognize("hi", 1).to_bytes()
        assert b"traceId" not in plain
        stamped = AvsEvent.recognize("hi", 1, trace_id="d00/u00001")
        assert stamped.payload["traceId"] == "d00/u00001"
        # Round trip through the wire encoding keeps the id.
        back = AvsEvent.from_bytes(stamped.to_bytes())
        assert back.payload["traceId"] == "d00/u00001"

    def test_alert_event_carries_trace_id(self):
        ev = AvsEvent.alert("{}", 2, trace_id="d01/u00002")
        assert ev.payload["traceId"] == "d01/u00002"
        assert b"traceId" not in AvsEvent.alert("{}", 2).to_bytes()


class TestQueueCorrelation:
    def test_queued_entries_keep_trace_id_through_drain(self, provisioned):
        # A lossy network forces spills into the sealed queue; once the
        # run ends, any still-queued metadata must carry the trace id so
        # a later drain re-sends under the original identity.
        runtime = simulate_device_runtime(
            _spec(device_id="dq", seed=1013, utterances=6, profile="lossy"),
            provisioned.bundle, collect_traces=True,
        )
        delivered = [r for r in runtime.platform.cloud.received
                     if r.trace_id]
        assert all(r.trace_id.startswith("dq/u") for r in delivered)
        # Everything the cloud saw from this device is trace-stamped —
        # including drained re-sends, which restore the id from the
        # sealed entry's metadata.
        assert delivered == runtime.platform.cloud.received

    def test_reserved_meta_key_rejected(self, platform):
        from repro.optee.storage import SecureStorage
        from repro.relay.queue import StoreForwardQueue

        queue = StoreForwardQueue(SecureStorage(platform.tee))
        with pytest.raises(ValueError):
            queue.enqueue("payload-bytes", meta={"payload": "clobber"})


class TestFleetTimelineExport:
    def test_jsonl_rows_carry_device_and_trace(self, traced):
        report = FleetReport(seed=1, devices=[traced.report])
        lines = fleet_trace_jsonl(report).splitlines()
        assert lines
        for line in lines:
            doc = json.loads(line)
            assert doc["device"] == "d00"
            assert doc["attrs"]["trace_id"].startswith("d00/u")

    def test_chrome_trace_one_track_per_device(self, traced):
        report = FleetReport(seed=1, devices=[traced.report])
        doc = json.loads(fleet_chrome_trace(report))
        events = doc["traceEvents"]
        names = [e for e in events if e["ph"] == "M"]
        assert [e["args"]["name"] for e in names] == ["d00"]
        xs = [e for e in events if e["ph"] == "X"]
        assert xs and all(e["tid"] == 1 for e in xs)
        assert all(e["dur"] >= 0 for e in xs)

    def test_empty_fleet_exports_cleanly(self):
        empty = FleetReport(seed=1)
        assert fleet_trace_jsonl(empty) == ""
        doc = json.loads(fleet_chrome_trace(empty))
        assert doc["traceEvents"] == []


class TestHealthAlertCorrelation:
    def test_violation_report_names_offending_trace(self, provisioned):
        from repro.obs.health import (
            FlightRecorder,
            HealthMonitor,
            SloRule,
        )
        from repro.relay.alerts import build_alert_doc

        recorder = FlightRecorder(capacity=64)
        runtime = simulate_device_runtime(
            _spec(device_id="dh", seed=1019, utterances=3),
            provisioned.bundle, recorder=recorder, collect_traces=True,
        )
        monitor = HealthMonitor(
            runtime.report.registry,
            rules=[SloRule(name="p99_latency",
                           metric="fleet.e2e_latency_cycles",
                           op="<=", threshold=1.0, quantile=0.99)],
            recorder=recorder,
        )
        report = monitor.evaluate(trace_only=True)
        assert not report.ok
        assert report.offending_trace.startswith("dh/u")
        # trace_only narrows the dump to the offending utterance.
        for line in report.flight_dump.splitlines():
            doc = json.loads(line)
            assert doc["attrs"]["trace_id"] == report.offending_trace
        alert = build_alert_doc(report, device_id="dh")
        assert alert["trace_id"] == report.offending_trace
