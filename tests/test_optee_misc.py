"""Unit tests: UUIDs, secure heap, supplicant services."""

import pytest

from repro.errors import TeeCommunicationError, TeeOutOfMemory
from repro.optee.heap import SecureHeap
from repro.optee.supplicant import TeeSupplicant
from repro.optee.uuid import TaUuid
from repro.tz.memory import MemoryAllocator, MemoryRegion, SecurityAttr


class TestTaUuid:
    def test_from_name_stable(self):
        assert TaUuid.from_name("x") == TaUuid.from_name("x")

    def test_from_name_distinct(self):
        assert TaUuid.from_name("x") != TaUuid.from_name("y")

    def test_canonical_form(self):
        uuid = TaUuid.from_name("demo")
        parts = str(uuid).split("-")
        assert [len(p) for p in parts] == [8, 4, 4, 4, 12]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            TaUuid("not-a-uuid")
        with pytest.raises(ValueError):
            TaUuid("zzzzzzzz-0000-0000-0000-000000000000")

    def test_bytes(self):
        assert len(TaUuid.from_name("demo").bytes) == 16

    def test_ordering_and_hash(self):
        a = TaUuid.from_name("a")
        b = TaUuid.from_name("b")
        assert len({a, b, TaUuid.from_name("a")}) == 2
        assert (a < b) or (b < a)


class TestSecureHeap:
    def _heap(self, size=4096) -> SecureHeap:
        return SecureHeap(
            MemoryAllocator(MemoryRegion("sh", 0, size, SecurityAttr.SECURE))
        )

    def test_alloc_free(self):
        heap = self._heap()
        addr = heap.alloc(100, owner="ta.x")
        assert heap.used_bytes > 0
        heap.free(addr)
        assert heap.used_bytes == 0

    def test_out_of_memory_translated(self):
        heap = self._heap(size=256)
        with pytest.raises(TeeOutOfMemory):
            heap.alloc(512)
        assert heap.failed_allocs == 1

    def test_high_water_mark(self):
        heap = self._heap()
        a = heap.alloc(1024)
        heap.free(a)
        heap.alloc(128)
        assert heap.high_water_bytes >= 1024

    def test_usage_by_owner(self):
        heap = self._heap()
        heap.alloc(128, owner="ta.a")
        heap.alloc(256, owner="ta.b")
        heap.alloc(128, owner="ta.a")
        usage = heap.usage_by_owner()
        assert usage["ta.a"] == 256
        assert usage["ta.b"] == 256

    def test_would_fit(self):
        heap = self._heap(size=256)
        assert heap.would_fit(128)
        assert not heap.would_fit(512)


class TestSupplicantServices:
    def test_fs_operations(self, machine):
        sup = TeeSupplicant(machine)
        assert sup.fs.call("write", "a/b", b"data") == 4
        assert sup.fs.call("read", "a/b") == b"data"
        assert sup.fs.call("exists", "a/b")
        assert sup.fs.call("list", "a/") == ["a/b"]
        sup.fs.call("delete", "a/b")
        assert not sup.fs.call("exists", "a/b")

    def test_fs_read_missing(self, machine):
        sup = TeeSupplicant(machine)
        with pytest.raises(TeeCommunicationError):
            sup.fs.call("read", "ghost")

    def test_net_requires_endpoint(self, machine):
        sup = TeeSupplicant(machine)
        with pytest.raises(TeeCommunicationError):
            sup.net.call("send", "nowhere", 1, b"x")

    def test_net_delivers_and_logs(self, machine):
        sup = TeeSupplicant(machine)

        class Echo:
            def receive(self, payload):
                return payload[::-1]

        sup.net.register_endpoint("h", 1, Echo())
        assert sup.net.call("send", "h", 1, b"abc") == b"cba"
        assert sup.net.wire_log == [b"abc"]
        assert sup.net.bytes_sent == 3

    def test_time_service(self, machine):
        sup = TeeSupplicant(machine)
        t0 = sup.time.call("now")
        machine.cpu.execute(2_000_000)
        assert sup.time.call("now") > t0

    def test_unknown_service(self, machine):
        sup = TeeSupplicant(machine)
        with pytest.raises(TeeCommunicationError):
            sup.handle("quantum", "entangle")

    def test_handle_requires_normal_world(self, machine):
        from repro.errors import WorldStateError
        from repro.tz.worlds import World

        sup = TeeSupplicant(machine)
        machine.cpu._set_world(World.SECURE)
        try:
            with pytest.raises(WorldStateError):
                sup.handle("fs", "exists", "x")
        finally:
            machine.cpu._set_world(World.NORMAL)

    def test_custom_service_registration(self, machine):
        sup = TeeSupplicant(machine)

        class Fancy:
            def call(self, method, *args):
                return (method, args)

        sup.register_service("fancy", Fancy())
        assert sup.handle("fancy", "go", 1) == ("go", (1,))
