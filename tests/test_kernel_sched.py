"""Unit tests: kernel processes and the round-robin scheduler."""

import pytest

from repro.errors import KernelError
from repro.kernel.sched import Process, ProcessState, Scheduler, busy_loop
from repro.sim.clock import CycleDomain


class TestScheduler:
    def test_single_process_runs_to_completion(self, machine):
        sched = Scheduler(machine)
        p = sched.spawn("worker", busy_loop(250_000))
        sched.run()
        assert p.state is ProcessState.DONE
        assert p.cpu_cycles == 250_000

    def test_round_robin_interleaves(self, machine):
        sched = Scheduler(machine, time_slice_cycles=10_000)
        a = sched.spawn("a", busy_loop(50_000, chunk=50_000))
        b = sched.spawn("b", busy_loop(50_000, chunk=50_000))
        sched.run()
        # Both ran in multiple slices (preempted), not back to back.
        assert a.slices_run >= 5 and b.slices_run >= 5

    def test_context_switches_charged(self, machine):
        sched = Scheduler(machine)
        sched.spawn("a", busy_loop(100_000))
        before = machine.clock.cycles_in(CycleDomain.NORMAL_CPU)
        sched.run()
        elapsed = machine.clock.cycles_in(CycleDomain.NORMAL_CPU) - before
        # Work + at least one context switch worth of overhead.
        assert elapsed > 100_000
        assert sched.context_switches >= 1

    def test_crashing_process_contained(self, machine):
        def crasher(process):
            yield 10_000
            raise RuntimeError("segfault")

        sched = Scheduler(machine)
        bad = sched.spawn("bad", crasher)
        good = sched.spawn("good", busy_loop(30_000))
        sched.run()
        assert bad.state is ProcessState.FAULTED
        assert isinstance(bad.exception, RuntimeError)
        assert good.state is ProcessState.DONE

    def test_slice_budget_guard(self, machine):
        def forever(process):
            while True:
                yield 1_000

        sched = Scheduler(machine)
        sched.spawn("spinner", forever)
        with pytest.raises(KernelError, match="budget"):
            sched.run(max_slices=10)

    def test_bad_time_slice(self, machine):
        with pytest.raises(KernelError):
            Scheduler(machine, time_slice_cycles=0)

    def test_stats(self, machine):
        sched = Scheduler(machine)
        sched.spawn("a", busy_loop(10_000))
        sched.run()
        stats = sched.stats()
        assert stats["a"]["state"] == "done"
        assert stats["a"]["cpu_cycles"] == 10_000


class TestContention:
    def test_background_load_delays_foreground(self, machine):
        """The contention effect the scheduler exists to show: the same
        foreground work takes longer wall-clock with competitors."""

        def run_with_load(background_procs):
            from repro.tz.machine import TrustZoneMachine

            m = TrustZoneMachine()
            sched = Scheduler(m, time_slice_cycles=20_000)
            fg = sched.spawn("fg", busy_loop(200_000))
            for i in range(background_procs):
                sched.spawn(f"bg{i}", busy_loop(200_000))
            start = m.clock.now
            sched.run()
            return m.clock.now - start, fg

        alone, _ = run_with_load(0)
        contended, fg = run_with_load(3)
        assert contended > 2 * alone
        assert fg.state is ProcessState.DONE

    def test_capture_as_process_with_attacker_process(self, machine):
        """Baseline capture and a snooping attacker as peer processes."""
        import numpy as np

        from repro.drivers.i2s_driver import I2sDriver
        from repro.kernel.attacks import BufferSnoopAttack
        from repro.kernel.kernel import I2sCharDevice, Kernel
        from repro.peripherals.audio import ToneSource
        from repro.peripherals.i2s import I2sBus, I2sController
        from repro.peripherals.microphone import DigitalMicrophone
        from repro.tz.memory import MemoryRegion, SecurityAttr

        region = machine.memory.add_region(
            MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                         SecurityAttr.NONSECURE, device=True)
        )
        controller = I2sController(machine.clock, machine.trace)
        machine.memory.attach_mmio("i2s_mmio", controller)
        I2sBus(controller,
               DigitalMicrophone(ToneSource(), fmt=controller.format))
        kernel = Kernel(machine)
        driver = I2sDriver(kernel.driver_host, controller, region)
        kernel.register_device("/dev/snd/i2s0", I2sCharDevice(driver))

        captured = {}

        def assistant(process):
            fd = kernel.sys_open("/dev/snd/i2s0")
            kernel.sys_ioctl(fd, "OPEN_CAPTURE", 128)
            kernel.sys_ioctl(fd, "START")
            yield 10_000  # stream stays open across scheduling points
            captured["pcm"] = np.frombuffer(
                kernel.sys_read(fd, 256 * 2), dtype="<i2"
            )
            yield 10_000  # ... and the attacker gets a turn here
            kernel.sys_ioctl(fd, "STOP")
            kernel.sys_ioctl(fd, "CLOSE_PCM")
            kernel.sys_close(fd)

        def malware(process):
            snoop = BufferSnoopAttack(machine)
            stolen = 0
            for _ in range(6):  # keep polling while the assistant works
                if driver._buf_addr is not None:
                    result = snoop.run(
                        [(driver._buf_addr, driver._buf_bytes)]
                    )
                    stolen += result.bytes_captured
                yield 5_000
            captured["stolen"] = stolen

        sched = Scheduler(machine)
        sched.spawn("assistant", assistant)
        sched.spawn("malware", malware)
        sched.run()
        assert len(captured["pcm"]) == 256
        # Malware-as-a-process reads the kernel driver's buffer: the
        # baseline threat, now with a realistic delivery vector.
        assert captured["stolen"] > 0
