"""Unit tests: tokenizer, dataset, losses, optimizers, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NotFittedError, VocabularyError
from repro.ml.dataset import Corpus, SensitiveCategory, Utterance, UtteranceGenerator
from repro.ml.layers import Parameter
from repro.ml.losses import cross_entropy
from repro.ml.metrics import BinaryMetrics, auc, confusion_matrix, roc_curve
from repro.ml.optim import Adam, Sgd
from repro.ml.tokenizer import WordTokenizer, normalize
from repro.sim.rng import SimRng


class TestNormalize:
    def test_lowercase_and_split(self):
        assert normalize("Hello, World!") == ["hello", "world"]

    def test_keeps_digits_and_apostrophes(self):
        assert normalize("it's 42") == ["it's", "42"]

    def test_empty(self):
        assert normalize("...") == []


class TestTokenizer:
    def test_requires_fit(self):
        tok = WordTokenizer()
        with pytest.raises(NotFittedError):
            tok.encode("hello")

    def test_fixed_length_with_padding(self):
        tok = WordTokenizer(max_len=6).fit(["a b c"])
        ids = tok.encode("a b")
        assert len(ids) == 6
        assert list(ids[2:]) == [tok.pad_id] * 4

    def test_truncation(self):
        tok = WordTokenizer(max_len=3).fit(["a b c d e"])
        assert len(tok.encode("a b c d e")) == 3

    def test_unknown_maps_to_unk(self):
        tok = WordTokenizer(max_len=4).fit(["known words only"])
        ids = tok.encode("unknown")
        assert ids[0] == tok.unk_id

    def test_round_trip(self):
        tok = WordTokenizer(max_len=8).fit(["the cat sat on the mat"])
        text = "the cat sat"
        assert tok.decode(tok.encode(text)) == text

    def test_vocab_capped(self):
        texts = [f"word{i}" for i in range(100)]
        tok = WordTokenizer().fit(texts, max_vocab=10)
        assert tok.vocab_size == 10

    def test_frequent_words_kept(self):
        tok = WordTokenizer().fit(["common common common rare"], max_vocab=3)
        assert tok.token_id("common") != tok.unk_id
        assert tok.token_id("rare") == tok.unk_id

    def test_batch_shape(self):
        tok = WordTokenizer(max_len=5).fit(["a b"])
        batch = tok.encode_batch(["a", "b", "a b"])
        assert batch.shape == (3, 5)

    def test_word_id_range_checked(self):
        tok = WordTokenizer().fit(["a"])
        with pytest.raises(VocabularyError):
            tok.word(9999)

    def test_bad_max_len(self):
        with pytest.raises(ValueError):
            WordTokenizer(max_len=0)

    @given(st.text(alphabet="abcdefgh ", min_size=0, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_encode_always_fixed_length(self, text):
        tok = WordTokenizer(max_len=7).fit(["a b c d e f g h"])
        assert len(tok.encode(text)) == 7


class TestDataset:
    def test_generation_is_deterministic(self):
        a = UtteranceGenerator(SimRng(5)).generate(50)
        b = UtteranceGenerator(SimRng(5)).generate(50)
        assert a.texts == b.texts

    def test_sensitive_fraction_respected(self):
        corpus = UtteranceGenerator(SimRng(5)).generate(
            400, sensitive_fraction=0.25
        )
        rate = sum(corpus.labels) / len(corpus)
        assert 0.15 < rate < 0.35

    def test_all_slots_filled(self):
        corpus = UtteranceGenerator(SimRng(5)).generate(300)
        assert not any("{" in t for t in corpus.texts)

    def test_category_label_consistency(self):
        for category in SensitiveCategory:
            utt = UtteranceGenerator(SimRng(1)).generate_one(category)
            assert utt.sensitive == category.sensitive

    def test_sensitive_categories(self):
        assert SensitiveCategory.HEALTH.sensitive
        assert SensitiveCategory.CREDENTIALS.sensitive
        assert not SensitiveCategory.WEATHER.sensitive
        assert not SensitiveCategory.TIMER.sensitive

    def test_split_partitions(self):
        corpus = UtteranceGenerator(SimRng(5)).generate(100)
        train, test = corpus.split(0.8, SimRng(6))
        assert len(train) == 80 and len(test) == 20
        assert sorted(train.texts + test.texts) == sorted(corpus.texts)

    def test_split_bad_fraction(self):
        corpus = UtteranceGenerator(SimRng(5)).generate(10)
        with pytest.raises(ValueError):
            corpus.split(1.0, SimRng(6))

    def test_by_category_counts(self):
        corpus = UtteranceGenerator(SimRng(5)).generate(200)
        assert sum(corpus.by_category().values()) == 200

    def test_pure_category_pools(self):
        corpus = UtteranceGenerator(SimRng(5)).generate(
            50, sensitive_fraction=1.0,
            categories=[SensitiveCategory.HEALTH, SensitiveCategory.WEATHER],
        )
        assert all(u.category is SensitiveCategory.HEALTH
                   for u in corpus.utterances)

    def test_template_texts_nonempty(self):
        assert len(UtteranceGenerator.all_template_texts()) > 50


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-3

    def test_uniform_prediction_log2(self):
        logits = np.zeros((4, 2), dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0, 1, 0, 1]))
        assert loss == pytest.approx(np.log(2), rel=1e-4)

    def test_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 2)).astype(np.float32)
        _, grad = cross_entropy(logits, np.array([0, 1, 1, 0, 1]))
        assert np.allclose(grad.sum(axis=1), 0, atol=1e-6)

    def test_numeric_gradient(self):
        from tests.test_ml_layers import numeric_grad

        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 2)).astype(np.float32)
        labels = np.array([0, 1, 0])
        _, grad = cross_entropy(logits, labels)
        numeric = numeric_grad(
            lambda: cross_entropy(logits, labels)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-3)

    def test_shape_mismatch(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            cross_entropy(np.zeros((2, 2), dtype=np.float32), np.array([0]))


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0], dtype=np.float32))

    def test_sgd_descends(self):
        p = self._quadratic_param()
        optimizer = Sgd([p], lr=0.1)
        for _ in range(100):
            p.zero_grad()
            p.grad[...] = 2 * p.value  # d/dx of x^2
            optimizer.step()
        assert np.abs(p.value).max() < 1e-3

    def test_sgd_momentum_descends(self):
        p = self._quadratic_param()
        optimizer = Sgd([p], lr=0.05, momentum=0.9)
        for _ in range(400):
            p.zero_grad()
            p.grad[...] = 2 * p.value
            optimizer.step()
        assert np.abs(p.value).max() < 1e-2

    def test_adam_descends(self):
        p = self._quadratic_param()
        optimizer = Adam([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            p.grad[...] = 2 * p.value
            optimizer.step()
        assert np.abs(p.value).max() < 1e-2

    def test_zero_grad(self):
        p = self._quadratic_param()
        p.grad[...] = 7
        Adam([p]).zero_grad()
        assert not np.any(p.grad)


class TestMetrics:
    def test_perfect(self):
        m = BinaryMetrics.from_predictions([1, 0, 1], [1, 0, 1])
        assert m.accuracy == m.precision == m.recall == m.f1 == 1.0

    def test_confusion_counts(self):
        m = BinaryMetrics.from_predictions([1, 1, 0, 0], [1, 0, 1, 0])
        assert (m.tp, m.fn, m.fp, m.tn) == (1, 1, 1, 1)
        assert m.accuracy == 0.5

    def test_degenerate_no_positives(self):
        m = BinaryMetrics.from_predictions([0, 0], [0, 0])
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0
        assert m.accuracy == 1.0

    def test_confusion_matrix(self):
        m = confusion_matrix([0, 1, 1, 0], [0, 1, 0, 1], 2)
        assert m[0, 0] == 1 and m[1, 1] == 1 and m[1, 0] == 1 and m[0, 1] == 1

    def test_roc_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, _ = roc_curve(y, scores)
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_roc_random_classifier(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        fpr, tpr, _ = roc_curve(y, scores)
        assert 0.45 < auc(fpr, tpr) < 0.55

    def test_roc_monotone(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 100)
        fpr, tpr, _ = roc_curve(y, rng.random(100))
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
