"""Smoke tests: the shipped examples must actually run.

Each example is executed as a subprocess (fresh interpreter, exactly the
way a user runs it) with output sanity checks.  The heavier examples get
generous timeouts; all are deterministic.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "BLOCKED" in out
        assert "forwarded" in out
        assert "cloud saw:" in out
        assert "TZASC violations" in out

    def test_tcb_minimization(self):
        out = run_example("tcb_minimization.py")
        assert "PASS" in out and "FAIL" not in out
        assert "record+volume+debug" in out
        assert "Per-subsystem breakdown" in out

    def test_camera_guard(self):
        out = run_example("camera_guard.py")
        assert "BLOCKED" in out
        assert "released" in out
        assert "never left the TEE" in out

    def test_smart_home_privacy(self):
        out = run_example("smart_home_privacy.py", timeout=300)
        assert "secure (ours, DROP)" in out
        assert "100%" in out and "0%" in out
        assert "0 contained sensitive content" in out

    @pytest.mark.slow
    def test_model_zoo(self):
        out = run_example("model_zoo.py", timeout=420)
        assert "transformer-int8" in out
        assert "secure heap budget" in out

    def test_continuous_assistant(self):
        out = run_example("continuous_assistant.py", timeout=300)
        assert "accepted: now at v2" in out
        assert "signature invalid" in out
        assert "rollback rejected" in out
        assert "VAD found" in out
