"""Unit + integration tests: TCB analysis and minimization."""

import pytest

from repro.drivers.conformance import run_capture_conformance
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DriverError
from repro.kernel.kernel import I2sCharDevice, Kernel
from repro.peripherals.audio import ToneSource
from repro.peripherals.i2s import I2sBus, I2sController
from repro.peripherals.microphone import DigitalMicrophone
from repro.tcb.analyze import TcbAnalyzer
from repro.tcb.callgraph import CallGraph
from repro.tcb.metrics import TcbReport
from repro.tcb.minimize import MinimizedBuild
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import MemoryRegion, SecurityAttr


def build_rig():
    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
    kernel = Kernel(machine)
    driver = I2sDriver(kernel.driver_host, controller, region)
    kernel.register_device("/dev/snd/i2s0", I2sCharDevice(driver))
    return machine, kernel, controller, region


def trace_record_task(kernel, with_encode=True):
    """Trace the paper's 'recording a sound' task."""
    kernel.tracer.start("record")
    fd = kernel.sys_open("/dev/snd/i2s0")
    kernel.sys_ioctl(fd, "OPEN_CAPTURE", 128)
    kernel.sys_ioctl(fd, "START")
    raw = kernel.sys_read(fd, 512)
    kernel.sys_ioctl(fd, "POINTER")
    if with_encode:
        device = kernel.device("/dev/snd/i2s0")
        import numpy as np

        device.driver.encode_chunk(np.frombuffer(raw, dtype="<i2").copy())
    kernel.sys_ioctl(fd, "STOP")
    kernel.sys_ioctl(fd, "CLOSE_PCM")
    kernel.sys_close(fd)
    return kernel.tracer.stop()


class TestCallGraph:
    def test_static_graph_has_all_functions(self):
        graph = CallGraph.static_of(I2sDriver)
        assert len(graph.nodes) == len(I2sDriver.functions())
        assert graph.edges == set()

    def test_dynamic_graph_subset_of_static(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        dynamic = CallGraph.dynamic_of(I2sDriver, [session])
        static = CallGraph.static_of(I2sDriver)
        assert set(dynamic.nodes) <= set(static.nodes)
        assert 0 < len(dynamic.nodes) < len(static.nodes)

    def test_roots_are_entry_points(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        dynamic = CallGraph.dynamic_of(I2sDriver, [session])
        assert "probe" in dynamic.roots()
        assert "_pll_configure" not in dynamic.roots()

    def test_reachability_closure(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        dynamic = CallGraph.dynamic_of(I2sDriver, [session])
        reachable = dynamic.reachable_from(dynamic.roots())
        assert "_drain_fifo_pio" in reachable  # via read_chunk
        assert reachable == set(dynamic.nodes)  # trace was complete

    def test_by_subsystem_grouping(self):
        graph = CallGraph.static_of(I2sDriver)
        groups = graph.by_subsystem()
        assert sum(len(v) for v in groups.values()) == len(graph.nodes)


class TestAnalyzer:
    def test_plan_keeps_observed_functions(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze([session], task="record")
        assert "read_chunk" in plan.keep
        assert "write_chunk" in plan.compiled_out
        assert plan.keep.isdisjoint(plan.compiled_out)
        assert plan.keep | plan.compiled_out == set(I2sDriver.functions())

    def test_meaningful_reduction(self):
        """The paper's core claim: one task needs a fraction of the driver."""
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze([session], task="record")
        assert plan.report.loc_reduction_pct > 30.0
        assert plan.report.function_reduction_pct > 30.0

    def test_always_keep_respected(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze(
            [session], task="record",
            always_keep=frozenset({"irq_handler", "_handle_overrun"}),
        )
        assert "irq_handler" in plan.keep

    def test_always_keep_typo_rejected(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        with pytest.raises(ValueError, match="unknown functions"):
            TcbAnalyzer(I2sDriver).analyze(
                [session], task="record", always_keep=frozenset({"irq_handlr"})
            )

    def test_union_of_tasks(self):
        _, kernel, _, _ = build_rig()
        record = trace_record_task(kernel)
        kernel.tracer.start("volume")
        fd = kernel.sys_open("/dev/snd/i2s0")
        kernel.sys_ioctl(fd, "SET_VOLUME", 60)
        kernel.sys_close(fd)
        volume = kernel.tracer.stop()

        analyzer = TcbAnalyzer(I2sDriver)
        plan_r = analyzer.analyze([record], task="record")
        plan_v = analyzer.analyze([volume], task="volume")
        union = analyzer.analyze_union([plan_r, plan_v])
        assert plan_r.keep <= union.keep
        assert plan_v.keep <= union.keep
        assert "set_volume" in union.keep


class TestReport:
    def test_report_totals(self):
        report = TcbReport.compute(I2sDriver, frozenset({"probe", "read_chunk"}))
        assert report.functions_kept == 2
        assert report.loc_kept == 96 + 88
        assert report.loc_total == I2sDriver.total_loc()

    def test_reduction_percentages(self):
        full = frozenset(I2sDriver.functions())
        assert TcbReport.compute(I2sDriver, full).loc_reduction_pct == 0.0
        assert TcbReport.compute(
            I2sDriver, frozenset()
        ).loc_reduction_pct == 100.0

    def test_rows_cover_all_subsystems(self):
        report = TcbReport.compute(I2sDriver, frozenset({"probe"}))
        subsystems = {r["subsystem"] for r in report.rows()}
        assert subsystems == {
            f.subsystem for f in I2sDriver.functions().values()
        }


class TestMinimizedBuild:
    def test_minimized_build_passes_conformance(self):
        """End-to-end: trace -> minimize -> the build still records."""
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze([session], task="record")
        build = MinimizedBuild(I2sDriver, plan)

        machine2, kernel2, controller2, region2 = build_rig()
        driver = build.instantiate(kernel2.driver_host, controller2, region2)
        driver.probe()
        report = run_capture_conformance(driver, chunk_frames=128)
        assert report.passed, report.failed_checks() or report.failure

    def test_minimized_build_rejects_unported_tasks(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze([session], task="record")
        build = MinimizedBuild(I2sDriver, plan)

        _, kernel2, controller2, region2 = build_rig()
        driver = build.instantiate(kernel2.driver_host, controller2, region2)
        driver.probe()
        with pytest.raises(DriverError, match="compiled out"):
            driver.pcm_open_playback(64)

    def test_build_validates_plan_driver(self):
        from repro.tcb.analyze import MinimizationPlan

        plan = MinimizationPlan(
            driver="other-driver", task="t",
            keep=frozenset(), compiled_out=frozenset(),
        )
        with pytest.raises(DriverError, match="plan is for driver"):
            MinimizedBuild(I2sDriver, plan)

    def test_build_validates_stray_exclusions(self):
        from repro.tcb.analyze import MinimizationPlan

        plan = MinimizationPlan(
            driver=I2sDriver.NAME, task="t",
            keep=frozenset(), compiled_out=frozenset({"not_a_function"}),
        )
        with pytest.raises(DriverError, match="does not declare"):
            MinimizedBuild(I2sDriver, plan)

    def test_build_size_properties(self):
        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze([session], task="record")
        build = MinimizedBuild(I2sDriver, plan)
        assert build.loc == plan.report.loc_kept
        assert build.functions == plan.report.functions_kept
