"""Normal-world client crash/restart chaos.

The client *application* dies mid-run — OOM-killed, segfaulted,
upgraded — losing its session object, its supervisor and its utterance
counter.  Nothing client-side runs cleanup; the kernel releases the TEE
driver fd (tearing down the non-keep-alive TA instance once its last
session drops) and reclaims shared memory.  Recovery must come from the
TA's sealed state alone: ``on_create`` restores the newest valid
checkpoint generation and the store-and-forward queue, ``CMD_RESUME``
tells the fresh client where committed state actually is, and replaying
the committed sequence is suppressed so nothing ever double-sends.

The restore path itself is then put under intensified fault pressure
(satellite 3): corrupted checkpoint generations and corrupted sealed
queue entries interleaved with the crash — recovery degrades gracefully
(older generation, pinned queue head) or fails closed, never silently.
"""

import pytest

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_HEARTBEAT, CMD_PROCESS, CMD_STATS
from repro.optee.params import Params, Value
from repro.optee.supervise import SupervisorPolicy
from repro.relay.relay import RetryPolicy
from repro.sim.faults import (
    ClientCrashConfig,
    ClientCrashInjector,
    SecureFaultConfig,
)
from repro.sim.rng import SimRng
from tests.test_core_pipeline import make_workload
from tests.test_relay_faults import BENIGN


def _tamper(platform, needle):
    """Flip one byte in every supplicant-fs blob whose path contains
    ``needle`` — the normal world corrupting sealed state at rest."""
    fs = platform.supplicant.fs
    paths = [p for p in fs.files if needle in p]
    assert paths, f"no sealed blob matching {needle!r}"
    for path in paths:
        blob = bytearray(fs.files[path])
        blob[len(blob) // 2] ^= 0xFF
        fs.files[path] = bytes(blob)
    return paths


class TestClientCrashConfig:
    def test_rate_validated(self):
        with pytest.raises(ValueError):
            ClientCrashConfig(rate=1.5)
        with pytest.raises(ValueError):
            ClientCrashConfig(rate=-0.1)
        with pytest.raises(ValueError):
            ClientCrashConfig(max_crashes=-1)

    def test_enabled_property(self):
        assert not ClientCrashConfig().enabled
        assert ClientCrashConfig(rate=0.1).enabled

    def test_chaos_profile(self):
        config = ClientCrashConfig.chaos()
        assert config.enabled
        assert config.max_crashes == 2

    def test_disabled_injector_never_draws(self):
        injector = ClientCrashInjector(ClientCrashConfig(), SimRng(3, "dev"))
        assert not any(injector.fires() for _ in range(50))
        assert injector.draws == 0

    def test_schedule_deterministic(self):
        def schedule():
            injector = ClientCrashInjector(
                ClientCrashConfig(rate=0.3), SimRng(7, "dev")
            )
            return [injector.fires() for _ in range(40)]

        first = schedule()
        assert first == schedule()
        assert any(first)

    def test_max_crashes_caps_the_run(self):
        injector = ClientCrashInjector(
            ClientCrashConfig(rate=1.0, max_crashes=2), SimRng(1, "dev")
        )
        fired = [injector.fires() for _ in range(10)]
        assert sum(fired) == 2
        assert fired[:2] == [True, True]


class TestCrashRecovery:
    """Crash mid-run, recover from sealed checkpoint + queue alone."""

    def _supervised(self, provisioned, seed, **kwargs):
        platform = IotPlatform.create(seed=seed)
        pipeline = SecurePipeline(
            platform, provisioned.bundle,
            supervisor=SupervisorPolicy(), **kwargs,
        )
        return platform, pipeline

    def test_mid_run_crash_loses_no_decision(self, provisioned):
        platform, pipeline = self._supervised(provisioned, seed=511)
        workload = make_workload(provisioned, BENIGN * 2)
        results = [pipeline.process_item(i) for i in workload.items[:2]]

        pipeline.crash_client()
        assert pipeline.session is None and pipeline.supervisor is None
        resume = pipeline.recover_client()
        assert resume["seq"] == 2  # both utterances committed pre-crash
        assert pipeline._seq == 2
        assert pipeline.client_restarts == 1

        results += [pipeline.process_item(i) for i in workload.items[2:]]
        assert [r.relay_status for r in results] == ["sent"] * 4
        # Exactly once at the cloud: every decision, no duplicates.
        received = platform.cloud.received
        assert sorted(r.transcript for r in received) == sorted(
            r.payload for r in results
        )
        dialog_ids = [(r.device_id, r.dialog_id) for r in received]
        assert len(dialog_ids) == len(set(dialog_ids)) == 4
        assert platform.cloud.duplicates_suppressed == 0
        metrics = platform.machine.obs.metrics.counters()
        assert metrics["client.crashes"] == 1
        assert metrics["client.restarts"] == 1
        assert metrics["tee.client_resumes"] == 1

    def test_replay_of_committed_seq_is_suppressed(self, provisioned):
        """A recovered client that re-submits the committed sequence gets
        the recorded decision back — the relay never runs again."""
        platform, pipeline = self._supervised(provisioned, seed=512)
        workload = make_workload(provisioned, BENIGN[:1])
        first = pipeline.process_item(workload.items[0])
        assert first.relay_status == "sent"

        pipeline.crash_client()
        pipeline.recover_client()
        replay = pipeline.session.invoke(
            CMD_PROCESS, Params.of(Value(a=workload.items[0].frames, b=1))
        )
        assert replay["transcript"] == first.transcript
        assert replay["payload"] == first.payload
        assert platform.cloud.received_transcripts == [first.payload]
        metrics = platform.machine.obs.metrics.counters()
        assert metrics["tee.replays_suppressed"] == 1

    def test_crash_with_queued_backlog_drains_after_recovery(self, provisioned):
        platform, pipeline = self._supervised(
            provisioned, seed=513,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        saved = dict(platform.supplicant.net._endpoints)
        platform.supplicant.net._endpoints.clear()
        workload = make_workload(provisioned, BENIGN)
        queued = pipeline.process_item(workload.items[0])
        assert queued.relay_status == "queued"

        pipeline.crash_client()
        resume = pipeline.recover_client()
        # The sealed backlog survived the dead instance.
        assert resume["queue_depth"] == 1

        platform.supplicant.net._endpoints.update(saved)
        assert pipeline.session.invoke(CMD_HEARTBEAT)["directive"] == "Ack"
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["queue_depth"] == 0
        assert stats["drained"] == 1
        assert platform.cloud.received_transcripts == [queued.payload]
        # The re-send advertised its pre-crash attempt history.
        assert platform.cloud.received[0].attempt == 3

    def test_dialog_cursor_restored_past_dead_instance(self, provisioned):
        """A fresh relay restarts its dialog counter at zero; the restore
        must advance it, or the cloud's dedup would eat new decisions."""
        platform, pipeline = self._supervised(provisioned, seed=514)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])
        first_dialog = platform.cloud.received[0].dialog_id

        pipeline.crash_client()
        resume = pipeline.recover_client()
        assert resume["dialog_cursor"] > first_dialog

        second = pipeline.process_item(workload.items[1])
        assert second.relay_status == "sent"
        dialogs = [r.dialog_id for r in platform.cloud.received]
        assert len(dialogs) == len(set(dialogs)) == 2
        assert platform.cloud.duplicates_suppressed == 0

    def test_unsupervised_recovery_restarts_from_zero(self, provisioned):
        """Without supervision there are no checkpoints: recovery works
        but resumes from scratch — the documented degraded contract."""
        platform = IotPlatform.create(seed=515)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])

        pipeline.crash_client()
        resume = pipeline.recover_client()
        assert resume["seq"] == 0
        assert pipeline._seq == 0
        # The pipeline still works after the restart.
        assert pipeline.process_item(workload.items[1]).relay_status == "sent"

    def test_double_crash_recovers_each_time(self, provisioned):
        platform, pipeline = self._supervised(provisioned, seed=516)
        workload = make_workload(provisioned, BENIGN * 2)
        results = []
        for index, item in enumerate(workload.items):
            if index in (1, 3):
                pipeline.crash_client()
                pipeline.recover_client()
            results.append(pipeline.process_item(item))
        assert pipeline.client_restarts == 2
        assert [r.relay_status for r in results] == ["sent"] * 4
        received = platform.cloud.received
        assert len(received) == 4
        assert len({(r.device_id, r.dialog_id) for r in received}) == 4


class TestRestoreChaos:
    """Satellite 3: intensified faults on the ``on_create`` restore path."""

    def _supervised(self, provisioned, seed, **kwargs):
        platform = IotPlatform.create(seed=seed)
        pipeline = SecurePipeline(
            platform, provisioned.bundle,
            supervisor=SupervisorPolicy(), **kwargs,
        )
        return platform, pipeline

    def test_corrupt_older_generation_restores_the_newer(self, provisioned):
        platform, pipeline = self._supervised(provisioned, seed=521)
        workload = make_workload(provisioned, BENIGN)
        for item in workload.items:
            pipeline.process_item(item)
        # A/B alternation: generation a holds seq 1, b holds seq 2.
        _tamper(platform, "ckpt/audio-filter/a")

        pipeline.crash_client()
        resume = pipeline.recover_client()
        assert resume["seq"] == 2  # the intact (newest) generation won
        invalid = [
            e for e in platform.machine.trace.events("optee.ta")
            if e.name == "checkpoint_invalid"
        ]
        assert len(invalid) == 1

    def test_corrupt_newest_generation_falls_back(self, provisioned):
        """Torn write on the newest checkpoint: restore adopts the older
        intact generation instead of failing — and nothing already at
        the cloud is lost."""
        platform, pipeline = self._supervised(provisioned, seed=522)
        workload = make_workload(provisioned, BENIGN)
        results = [pipeline.process_item(i) for i in workload.items]
        _tamper(platform, "ckpt/audio-filter/b")

        pipeline.crash_client()
        resume = pipeline.recover_client()
        assert resume["seq"] == 1  # fell back one committed generation
        assert sorted(platform.cloud.received_transcripts) == sorted(
            r.payload for r in results
        )

    def test_both_generations_corrupt_fails_closed_to_fresh(self, provisioned):
        """Total checkpoint loss: the TA restores nothing and restarts
        from sequence zero — degraded, explicit, and still functional."""
        platform, pipeline = self._supervised(provisioned, seed=523)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])
        _tamper(platform, "ckpt/audio-filter")

        pipeline.crash_client()
        resume = pipeline.recover_client()
        assert resume["seq"] == 0
        # Pre-crash commits are already at the cloud: nothing was lost.
        assert len(platform.cloud.received) == 1
        # And the recovered instance still processes utterances.
        assert pipeline.process_item(workload.items[1]).forwarded

    def test_corrupt_queue_head_pins_fail_closed(self, provisioned):
        """A corrupted sealed queue entry discovered during the
        post-restore drain stops the drain with the entry pinned at
        depth — surfaced by the queue-depth SLO, never silently lost."""
        platform, pipeline = self._supervised(
            provisioned, seed=524,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        saved = dict(platform.supplicant.net._endpoints)
        platform.supplicant.net._endpoints.clear()
        workload = make_workload(provisioned, BENIGN)
        for item in workload.items:
            assert pipeline.process_item(item).relay_status == "queued"

        pipeline.crash_client()
        _tamper(platform, "relayq/00000000")
        resume = pipeline.recover_client()
        assert resume["queue_depth"] == 2

        platform.supplicant.net._endpoints.update(saved)
        assert pipeline.session.invoke(CMD_HEARTBEAT)["directive"] == "Ack"
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        # Head unsealable: nothing drained, nothing deleted, depth holds.
        assert stats["drained"] == 0
        assert stats["queue_depth"] == 2
        qfiles = [p for p in platform.supplicant.fs.files if "relayq/" in p]
        assert len(qfiles) == 2

    def test_storage_chaos_crash_loop_never_loses_silently(self, provisioned):
        """The intensified profile: random storage faults *and* repeated
        client crashes.  The run must complete with every decision
        accounted — delivered, sealed in the queue, or an explicitly
        counted shed — and the cloud must hold every payload the device
        reported as sent."""
        platform = IotPlatform.create(
            seed=525,
            secure_faults=SecureFaultConfig(storage_rate=0.5),
        )
        pipeline = SecurePipeline(
            platform, provisioned.bundle, supervisor=SupervisorPolicy()
        )
        workload = make_workload(provisioned, BENIGN * 3)
        results = []
        for index, item in enumerate(workload.items):
            if index in (2, 4):
                pipeline.crash_client()
                pipeline.recover_client()
            results.append(pipeline.process_item(item))
        assert pipeline.client_restarts == 2
        accounted = {"sent", "queued", "throttled", "shed", "suppressed", ""}
        assert {r.relay_status for r in results} <= accounted
        sent = [r.payload for r in results if r.relay_status == "sent"]
        received = platform.cloud.received_transcripts
        for payload in sent:
            assert received.count(payload) >= 1
        # Fail-closed accounting: anything lost is an explicit shed.
        run_sheds = sum(1 for r in results if r.relay_status == "shed")
        rejected = platform.machine.obs.metrics.counters().get(
            "relay.queue.rejected", 0
        )
        assert run_sheds <= rejected
