"""Unit tests: OpenMetrics and JSONL registry exporters."""

import json

import pytest

from repro.obs.export import (
    _escape_label,
    registry_from_jsonl,
    sanitize_name,
    to_jsonl,
    to_openmetrics,
    unescape_label,
)
from repro.obs.metrics import MetricsRegistry


def populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("tz.smc", 3)
    reg.inc("relay.sent", 7)
    reg.set("relay.queue_depth", 2)
    for v in (0, 100, 1_000, 10_000):
        reg.observe("stage.secure.asr.cycles", v)
    return reg


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_name("tz.smc") == "tz_smc"

    def test_leading_digit_prefixed(self):
        assert sanitize_name("9lives")[0] == "_"

    def test_illegal_chars_replaced(self):
        assert sanitize_name("a-b c") == "a_b_c"


class TestOpenMetrics:
    def test_counters_gauges_histograms_rendered(self):
        text = to_openmetrics(populated())
        assert "# TYPE repro_tz_smc counter" in text
        assert "repro_tz_smc_total 3" in text
        assert "# TYPE repro_relay_queue_depth gauge" in text
        assert "repro_relay_queue_depth 2" in text
        assert "# TYPE repro_stage_secure_asr_cycles histogram" in text
        assert "repro_stage_secure_asr_cycles_count 4" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        text = to_openmetrics(populated())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_stage_secure_asr_cycles_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # le="+Inf" covers everything

    def test_labels_attached_to_every_sample(self):
        text = to_openmetrics(populated(), labels={"device": "d03"})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'device="d03"' in line, line

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("n")
        text = to_openmetrics(reg, labels={"host": 'a"b\\c'})
        assert 'host="a\\"b\\\\c"' in text

    def test_empty_registry_is_just_eof(self):
        assert to_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestJsonlRoundTrip:
    def test_snapshot_survives(self):
        reg = populated()
        back = registry_from_jsonl(to_jsonl(reg))
        assert back.snapshot() == reg.snapshot()

    def test_histogram_state_survives_not_just_summary(self):
        reg = populated()
        back = registry_from_jsonl(to_jsonl(reg))
        orig = reg.histogram("stage.secure.asr.cycles")
        copy = back.histogram("stage.secure.asr.cycles")
        assert copy.to_doc() == orig.to_doc()
        # ...so the rebuilt histogram still merges.
        merged = copy.merge(orig)
        assert merged.count == 8

    def test_lines_are_valid_json(self):
        for line in to_jsonl(populated()).splitlines():
            json.loads(line)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            registry_from_jsonl('{"kind": "mystery", "name": "x"}')

    def test_blank_lines_ignored(self):
        reg = registry_from_jsonl("\n\n" + to_jsonl(populated()) + "\n")
        assert reg.counter("tz.smc").value == 3


class TestLabelEscapeRoundTrip:
    """unescape_label must invert _escape_label for any device id."""

    CASES = [
        'plain-d03',
        'quote"inside',
        'back\\slash',
        'line\nbreak',
        'tail\\',
        'escaped-newline-literal\\n',
        'mixed\\"\n\\\\"',
        'δ-suite-設備-03',   # non-ASCII device ids pass through untouched
        '',
    ]

    def test_round_trip(self):
        for raw in self.CASES:
            assert unescape_label(_escape_label(raw)) == raw, raw

    def test_escaped_backslash_n_is_not_a_newline(self):
        # The sequence backslash-backslash-n encodes a literal "\n" (two
        # chars), not a newline — the case replace-chains get wrong.
        assert unescape_label("a\\\\nb") == "a\\nb"
        assert unescape_label("a\\nb") == "a\nb"

    def test_non_ascii_label_renders_and_recovers(self):
        reg = MetricsRegistry()
        reg.inc("n")
        text = to_openmetrics(reg, labels={"device": "δ-設備-03"})
        (line,) = [l for l in text.splitlines()
                   if l.startswith("repro_n_total")]
        quoted = line.split('device="', 1)[1].rsplit('"', 1)[0]
        assert unescape_label(quoted) == "δ-設備-03"


class TestMergedRegistryExposition:
    """Histogram exposition stays well-formed under fleet merges."""

    def _merged(self) -> MetricsRegistry:
        a, b = populated(), populated()
        b.observe("stage.secure.asr.cycles", 100_000)
        a.merge(b)
        return a

    def test_merged_counts_and_cumulative_buckets(self):
        text = to_openmetrics(self._merged())
        assert "repro_stage_secure_asr_cycles_count 9" in text
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_stage_secure_asr_cycles_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 9

    def test_weighted_histograms_expose_weighted_counts(self):
        a = MetricsRegistry()
        a.set_sampling(4)
        for v in range(8):
            a.observe("fleet.lat", float(v + 1))
        b = MetricsRegistry()
        b.observe("fleet.lat", 3.0)
        a.merge(b)
        text = to_openmetrics(a)
        # 2 kept samples at weight 4, plus one unsampled observation.
        assert "repro_fleet_lat_count 9" in text

    def test_merged_registry_round_trips_through_jsonl(self):
        reg = self._merged()
        back = registry_from_jsonl(to_jsonl(reg))
        assert to_openmetrics(back) == to_openmetrics(reg)


class TestSnapshotRingJsonl:
    def test_ring_survives_round_trip(self):
        reg = populated()
        reg.inc("fleet.utterances", 2)
        reg.record_snapshot(500)
        reg.inc("fleet.utterances", 1)
        reg.record_snapshot(900)
        back = registry_from_jsonl(to_jsonl(reg))
        assert [s.to_doc() for s in back.snapshots] == \
            [s.to_doc() for s in reg.snapshots]

    def test_empty_ring_adds_no_line(self):
        text = to_jsonl(populated())
        assert '"snapshots"' not in text
