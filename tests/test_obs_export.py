"""Unit tests: OpenMetrics and JSONL registry exporters."""

import json

import pytest

from repro.obs.export import (
    registry_from_jsonl,
    sanitize_name,
    to_jsonl,
    to_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


def populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("tz.smc", 3)
    reg.inc("relay.sent", 7)
    reg.set("relay.queue_depth", 2)
    for v in (0, 100, 1_000, 10_000):
        reg.observe("stage.secure.asr.cycles", v)
    return reg


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_name("tz.smc") == "tz_smc"

    def test_leading_digit_prefixed(self):
        assert sanitize_name("9lives")[0] == "_"

    def test_illegal_chars_replaced(self):
        assert sanitize_name("a-b c") == "a_b_c"


class TestOpenMetrics:
    def test_counters_gauges_histograms_rendered(self):
        text = to_openmetrics(populated())
        assert "# TYPE repro_tz_smc counter" in text
        assert "repro_tz_smc_total 3" in text
        assert "# TYPE repro_relay_queue_depth gauge" in text
        assert "repro_relay_queue_depth 2" in text
        assert "# TYPE repro_stage_secure_asr_cycles histogram" in text
        assert "repro_stage_secure_asr_cycles_count 4" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        text = to_openmetrics(populated())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_stage_secure_asr_cycles_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # le="+Inf" covers everything

    def test_labels_attached_to_every_sample(self):
        text = to_openmetrics(populated(), labels={"device": "d03"})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'device="d03"' in line, line

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("n")
        text = to_openmetrics(reg, labels={"host": 'a"b\\c'})
        assert 'host="a\\"b\\\\c"' in text

    def test_empty_registry_is_just_eof(self):
        assert to_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestJsonlRoundTrip:
    def test_snapshot_survives(self):
        reg = populated()
        back = registry_from_jsonl(to_jsonl(reg))
        assert back.snapshot() == reg.snapshot()

    def test_histogram_state_survives_not_just_summary(self):
        reg = populated()
        back = registry_from_jsonl(to_jsonl(reg))
        orig = reg.histogram("stage.secure.asr.cycles")
        copy = back.histogram("stage.secure.asr.cycles")
        assert copy.to_doc() == orig.to_doc()
        # ...so the rebuilt histogram still merges.
        merged = copy.merge(orig)
        assert merged.count == 8

    def test_lines_are_valid_json(self):
        for line in to_jsonl(populated()).splitlines():
            json.loads(line)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            registry_from_jsonl('{"kind": "mystery", "name": "x"}')

    def test_blank_lines_ignored(self):
        reg = registry_from_jsonl("\n\n" + to_jsonl(populated()) + "\n")
        assert reg.counter("tz.smc").value == 3
