"""Unit tests: the observability metrics registry."""

import pytest

from repro.obs.metrics import (
    BucketHistogram,
    Counter,
    CycleHistogram,
    Gauge,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestGauge:
    def test_set_replaces(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestCycleHistogram:
    def test_exact_percentiles(self):
        h = CycleHistogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        # Linear interpolation over sorted samples: p50 of 1..100 is 50.5.
        assert h.p50 == pytest.approx(50.5)
        assert h.p95 == pytest.approx(95.05)
        assert h.p99 == pytest.approx(99.01)
        assert h.mean == pytest.approx(50.5)
        assert h.min == 1 and h.max == 100
        assert h.total == 5050 and h.count == 100

    def test_percentiles_are_ordered(self):
        h = CycleHistogram("lat")
        for v in (9, 1, 7, 3, 5):
            h.observe(v)
        assert 0 <= h.p50 <= h.p95 <= h.p99 <= h.max

    def test_empty_and_single_sample(self):
        h = CycleHistogram("lat")
        assert h.p50 == 0.0 and h.mean == 0.0
        h.observe(42)
        assert h.p50 == h.p95 == h.p99 == 42.0

    def test_max_samples_keeps_aggregates_exact(self):
        h = CycleHistogram("lat", max_samples=4)
        for v in (1, 2, 3, 4, 100):
            h.observe(v)
        # The fifth sample is not retained for percentiles...
        assert len(h._samples) == 4
        # ...but count/total/min/max still see it.
        assert h.count == 5
        assert h.total == 110
        assert h.max == 100

    def test_summary_schema(self):
        h = CycleHistogram("lat")
        h.observe(10)
        assert set(h.summary()) == {
            "count", "total", "mean", "min", "max", "p50", "p95", "p99",
            "truncated", "retained",
        }

    def test_summary_reports_truncation(self):
        h = CycleHistogram("lat", max_samples=3)
        for v in (1, 2, 3):
            h.observe(v)
        assert h.truncated is False
        assert h.summary()["truncated"] is False
        assert h.summary()["retained"] == 3
        h.observe(4)
        # Percentiles now describe only the head-kept subset and say so.
        assert h.truncated is True
        assert h.summary()["truncated"] is True
        assert h.summary()["retained"] == 3


class TestRegistry:
    def test_lazy_creation_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_one_line_recording(self):
        reg = MetricsRegistry()
        reg.inc("tz.smc")
        reg.inc("tz.smc", 2)
        reg.set("queue.depth", 7)
        reg.observe("lat", 100)
        assert reg.counter("tz.smc").value == 3
        assert reg.gauge("queue.depth").value == 7
        assert reg.histogram("lat").count == 1

    def test_disabled_is_a_noop(self):
        reg = MetricsRegistry()
        reg.enabled = False
        reg.inc("a")
        reg.set("b", 1)
        reg.observe("c", 1)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_prefix_filtering(self):
        reg = MetricsRegistry()
        reg.inc("tz.smc")
        reg.inc("tz.world_switch", 4)
        reg.inc("optee.rpc")
        assert reg.counters("tz.") == {"tz.smc": 1, "tz.world_switch": 4}
        assert set(reg.counters()) == {"tz.smc", "tz.world_switch", "optee.rpc"}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.counters() == {}

    def test_histograms_are_bucketed_and_mergeable(self):
        reg = MetricsRegistry()
        reg.observe("lat", 100)
        assert isinstance(reg.histogram("lat"), BucketHistogram)

    def test_merge_folds_counters_gauges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.set("depth", 1)
        b.set("depth", 4)
        for v in (10, 20):
            a.observe("lat", v)
        for v in (30, 40):
            b.observe("lat", v)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.counter("only_b").value == 1
        assert a.gauge("depth").value == 5  # gauges sum (fleet totals)
        hist = a.histogram("lat")
        assert hist.count == 4
        assert hist.min == 10 and hist.max == 40

    def test_merge_does_not_alias_source_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("lat", 10)
        a.merge(b)
        b.observe("lat", 99)
        assert a.histogram("lat").count == 1
        assert b.histogram("lat").count == 2
