"""Unit + integration tests: TrustZone interrupt routing."""

import pytest

from repro.errors import SecureAccessViolation, TrustZoneError
from repro.tz.interrupts import IRQ_I2S
from repro.tz.worlds import World


class TestConfiguration:
    def test_normal_world_configures_normal_lines(self, machine):
        machine.gic.configure(40, World.NORMAL, lambda: None)
        machine.gic.raise_line(40)
        assert machine.gic.line_count(40) == 1

    def test_secure_line_requires_secure_world(self, machine):
        with pytest.raises(SecureAccessViolation):
            machine.gic.configure(40, World.SECURE, lambda: None)

    def test_normal_world_cannot_steal_secure_line(self, machine):
        machine.cpu._set_world(World.SECURE)
        machine.gic.configure(40, World.SECURE, lambda: None)
        machine.cpu._set_world(World.NORMAL)
        with pytest.raises(SecureAccessViolation):
            machine.gic.configure(40, World.NORMAL, lambda: None)

    def test_spurious_line_rejected(self, machine):
        with pytest.raises(TrustZoneError):
            machine.gic.raise_line(99)


class TestDelivery:
    def test_same_world_delivery_direct(self, machine):
        fired = []
        machine.gic.configure(40, World.NORMAL, lambda: fired.append(1))
        switches = machine.cpu.switch_count
        machine.gic.raise_line(40)
        assert fired == [1]
        assert machine.cpu.switch_count == switches  # no transition

    def test_cross_world_delivery_switches_and_restores(self, machine):
        seen = {}
        machine.cpu._set_world(World.SECURE)
        machine.gic.configure(
            40, World.SECURE, lambda: seen.setdefault("world", machine.cpu.world)
        )
        machine.cpu._set_world(World.NORMAL)
        switches = machine.cpu.switch_count
        machine.gic.raise_line(40)
        assert seen["world"] is World.SECURE
        assert machine.cpu.world is World.NORMAL
        assert machine.cpu.switch_count == switches + 2

    def test_delivery_restores_world_on_handler_error(self, machine):
        machine.cpu._set_world(World.SECURE)
        machine.gic.configure(
            40, World.SECURE,
            lambda: (_ for _ in ()).throw(RuntimeError("handler bug")),
        )
        machine.cpu._set_world(World.NORMAL)
        with pytest.raises(RuntimeError):
            machine.gic.raise_line(40)
        assert machine.cpu.world is World.NORMAL

    def test_observed_by_counts(self, machine):
        machine.gic.configure(40, World.NORMAL, lambda: None)
        machine.gic.raise_line(40)
        machine.gic.raise_line(40)
        assert machine.gic.observed_by(World.NORMAL) == 2
        assert machine.gic.observed_by(World.SECURE) == 0

    def test_deliveries_traced(self, machine):
        machine.gic.configure(40, World.NORMAL, lambda: None)
        machine.gic.raise_line(40)
        assert machine.trace.count("tz.gic") >= 2  # configure + deliver


class TestSideChannelClosure:
    """The privacy point: who can observe microphone activity."""

    def _flood(self, platform):
        """Force FIFO overruns (activity without anyone draining)."""
        from repro.peripherals.i2s import CtrlBits

        import struct

        platform.i2s_controller._ctrl = int(
            CtrlBits.ENABLE | CtrlBits.RX_ENABLE
        )
        platform.i2s_controller.capture(
            platform.i2s_controller.fifo_depth * 3
        )

    def test_baseline_kernel_observes_mic_interrupts(self, provisioned):
        from repro.core.baseline import BaselinePipeline
        from repro.core.platform import IotPlatform

        platform = IotPlatform.create(seed=401)
        BaselinePipeline(platform, provisioned.bundle.asr)
        self._flood(platform)
        assert platform.machine.gic.observed_by(World.NORMAL) >= 1

    def test_secure_design_hides_mic_interrupts_from_kernel(self, provisioned):
        from repro.core.pipeline import SecurePipeline
        from repro.core.platform import IotPlatform
        from tests.test_core_pipeline import MIXED, make_workload

        platform = IotPlatform.create(seed=402)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        # PTA INIT (first utterance) claims the line into the secure world.
        pipeline.process(make_workload(provisioned, MIXED[:1]))
        normal_before = platform.machine.gic.observed_by(World.NORMAL)
        self._flood(platform)
        assert platform.machine.gic.observed_by(World.NORMAL) == normal_before
        assert platform.machine.gic.observed_by(World.SECURE) >= 1
        # And the secure handler actually cleared the condition.
        from repro.peripherals.i2s import StatusBits

        assert not platform.i2s_controller._overrun_sticky