"""Unit tests: signed model packages + anti-rollback store."""

import pytest

from repro.core.model_store import ModelPackage, ModelStore, sign_package
from repro.errors import (
    AuthenticationFailure,
    TeeItemNotFound,
    TeeSecurityError,
)
from repro.optee.os import OpTeeOs
from repro.optee.supplicant import TeeSupplicant
from repro.tz.worlds import World

VENDOR_KEY = b"vendor-signing-key-0123456789abc"
WEIGHTS = bytes(range(256)) * 8


@pytest.fixture
def store(machine):
    tee = OpTeeOs(machine)
    tee.attach_supplicant(TeeSupplicant(machine))
    machine.cpu._set_world(World.SECURE)
    yield ModelStore(tee.storage, VENDOR_KEY), tee
    machine.cpu._set_world(World.NORMAL)


def package(version=1, weights=WEIGHTS, key=VENDOR_KEY, arch="cnn"):
    return sign_package(arch, version, weights, key)


class TestPackageFormat:
    def test_round_trip(self):
        pkg = package(version=3)
        parsed = ModelPackage.from_bytes(pkg.to_bytes())
        assert parsed == pkg

    def test_bad_magic(self):
        with pytest.raises(AuthenticationFailure):
            ModelPackage.from_bytes(b"XXXXXX" + b"\x00" * 32)

    def test_truncated(self):
        blob = package().to_bytes()
        with pytest.raises(AuthenticationFailure):
            ModelPackage.from_bytes(blob[: len(blob) // 2])

    def test_signature_covers_all_fields(self):
        base = package(version=1)
        for variant in (
            package(version=2),
            package(weights=WEIGHTS[:-1]),
            package(arch="transformer"),
        ):
            assert variant.signature != base.signature


class TestInstall:
    def test_install_and_load(self, store):
        model_store, _ = store
        installed = model_store.install(package(version=1).to_bytes())
        assert installed.version == 1
        loaded = model_store.load()
        assert loaded.weights == WEIGHTS
        assert model_store.installed_version() == 1

    def test_forged_signature_rejected(self, store):
        model_store, _ = store
        forged = package(key=b"not-the-vendor-key-000000000000!")
        with pytest.raises(AuthenticationFailure):
            model_store.install(forged.to_bytes())
        assert model_store.installed_version() == 0

    def test_tampered_weights_rejected(self, store):
        model_store, _ = store
        blob = bytearray(package().to_bytes())
        blob[40] ^= 0xFF  # flip a weight byte
        with pytest.raises(AuthenticationFailure):
            model_store.install(bytes(blob))

    def test_upgrade_accepted(self, store):
        model_store, _ = store
        model_store.install(package(version=1).to_bytes())
        model_store.install(package(version=2).to_bytes())
        assert model_store.installed_version() == 2

    def test_rollback_rejected(self, store):
        model_store, _ = store
        model_store.install(package(version=5).to_bytes())
        with pytest.raises(TeeSecurityError, match="rollback"):
            model_store.install(package(version=4).to_bytes())
        with pytest.raises(TeeSecurityError, match="rollback"):
            model_store.install(package(version=5).to_bytes())  # replay
        assert model_store.load().version == 5

    def test_load_before_install(self, store):
        model_store, _ = store
        with pytest.raises(TeeItemNotFound):
            model_store.load()


class TestAtRestProtection:
    def test_normal_world_cannot_read_weights(self, store):
        model_store, tee = store
        model_store.install(package().to_bytes())
        stored = tee.supplicant.fs.files["tee/objects/model-package"]
        assert WEIGHTS[:32] not in stored

    def test_normal_world_blob_swap_detected(self, store):
        """Swapping the sealed package for the sealed counter must fail."""
        model_store, tee = store
        model_store.install(package().to_bytes())
        fs = tee.supplicant.fs.files
        fs["tee/objects/model-package"] = fs[
            "tee/objects/model-version-counter"
        ]
        with pytest.raises(AuthenticationFailure):
            model_store.load()

    def test_counter_tamper_detected(self, store):
        model_store, tee = store
        model_store.install(package(version=3).to_bytes())
        path = "tee/objects/model-version-counter"
        blob = bytearray(tee.supplicant.fs.files[path])
        blob[-1] ^= 1
        tee.supplicant.fs.files[path] = bytes(blob)
        with pytest.raises(AuthenticationFailure):
            model_store.installed_version()


class TestEndToEndProvisioning:
    def test_real_classifier_weights_round_trip(self, store, provisioned):
        """Ship the actual trained CNN through the update path."""
        import numpy as np

        from repro.ml.models import TextCnnClassifier

        model_store, _ = store
        original = provisioned.bundle.filter.classifier
        blob = sign_package(
            "cnn", 1, original.serialize(), VENDOR_KEY
        ).to_bytes()
        model_store.install(blob)
        loaded = model_store.load()

        tok = provisioned.tokenizer
        clone = TextCnnClassifier(
            tok.vocab_size, tok.max_len, np.random.default_rng(9)
        )
        clone.deserialize(loaded.weights)
        texts = provisioned.test_corpus.texts[:40]
        ids = tok.encode_batch(texts)
        assert np.array_equal(clone.predict(ids), original.predict(ids))
