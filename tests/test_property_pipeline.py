"""Property-based end-to-end invariants (hypothesis).

Each property runs a randomized variant of the full system and asserts an
invariant the design promises regardless of input: conservation of
decisions, the DROP guarantee, TZASC totality, and audit consistency.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.workload import UtteranceWorkload
from repro.errors import InvalidAddressError, SecureAccessViolation
from repro.ml.dataset import Corpus, SensitiveCategory, UtteranceGenerator
from repro.sim.rng import SimRng
from repro.tz.machine import TrustZoneMachine
from repro.tz.memory import SecurityAttr
from repro.tz.worlds import World

CATEGORIES = list(SensitiveCategory)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    picks=st.lists(st.sampled_from(CATEGORIES), min_size=1, max_size=4),
)
def test_property_decision_conservation(provisioned, seed, picks):
    """Every utterance is decided exactly once; cloud content is exactly
    the forwarded payloads; DROP never sends a sensitive-classified one."""
    generator = UtteranceGenerator(SimRng(seed, "prop"))
    corpus = Corpus([generator.generate_one(c) for c in picks])
    workload = UtteranceWorkload.from_corpus(corpus, provisioned.bundle.vocoder)

    platform = IotPlatform.create(seed=81)
    pipeline = SecurePipeline(platform, provisioned.bundle)
    run = pipeline.process(workload)

    assert len(run) == len(workload)
    forwarded_payloads = [
        r.payload for r in run.results if r.forwarded and r.payload
    ]
    assert sorted(platform.cloud.received_transcripts) == sorted(
        forwarded_payloads
    )
    for r in run.results:
        if r.sensitive_predicted:  # DROP policy
            assert not r.forwarded
            assert r.payload is None


@settings(max_examples=20, deadline=None)
@given(offset=st.integers(min_value=0, max_value=2**20 - 16))
def test_property_tzasc_totality(offset):
    """Any normal-world access into any secure region faults — no holes."""
    machine = TrustZoneMachine()
    for region in machine.memory.regions():
        if machine.memory.tzasc.attr_of(region) is not SecurityAttr.SECURE:
            continue
        addr = region.base + (offset % max(1, region.size - 16))
        with pytest.raises(SecureAccessViolation):
            machine.memory.read(addr, 16, World.NORMAL)
        with pytest.raises(SecureAccessViolation):
            machine.memory.write(addr, b"\x00" * 16, World.NORMAL)


@settings(max_examples=20, deadline=None)
@given(addr=st.integers(min_value=0, max_value=2**40))
def test_property_memory_access_never_silently_succeeds(addr):
    """Every address either resolves to a mapped region or faults as
    unmapped — reads never fabricate data."""
    machine = TrustZoneMachine()
    try:
        data = machine.memory.read(addr, 4, World.SECURE)
    except (InvalidAddressError, SecureAccessViolation):
        return
    assert len(data) == 4
    region = machine.memory.resolve(addr, 4)
    assert region.contains(addr, 4)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    payload=st.binary(min_size=0, max_size=4096),
    name=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1,
        max_size=32,
    ),
)
def test_property_sealed_storage_round_trip(payload, name):
    """put/get is identity, and ciphertext never embeds long plaintext runs."""
    from repro.optee.os import OpTeeOs
    from repro.optee.supplicant import TeeSupplicant

    machine = TrustZoneMachine()
    tee = OpTeeOs(machine)
    tee.attach_supplicant(TeeSupplicant(machine))
    machine.cpu._set_world(World.SECURE)
    try:
        tee.storage.put(name, payload)
        assert tee.storage.get(name) == payload
        if len(payload) >= 16:
            stored = tee.supplicant.fs.files["tee/objects/" + name]
            assert payload[:16] not in stored
    finally:
        machine.cpu._set_world(World.NORMAL)


@settings(max_examples=8, deadline=None)
@given(
    volumes=st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                     max_size=5)
)
def test_property_driver_gain_bounded(volumes):
    """Whatever gain sequence is applied, output samples stay in int16."""
    from tests.test_drivers_i2s import open_capture
    from repro.drivers.hosting import KernelDriverHost
    from repro.drivers.i2s_driver import I2sDriver
    from repro.peripherals.audio import ToneSource
    from repro.peripherals.i2s import I2sBus, I2sController
    from repro.peripherals.microphone import DigitalMicrophone
    from repro.tz.memory import MemoryRegion

    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller,
           DigitalMicrophone(ToneSource(amplitude=1.0), fmt=controller.format))
    driver = I2sDriver(KernelDriverHost(machine), controller, region)
    open_capture(driver, chunk=32)
    for volume in volumes:
        driver.set_volume(volume)
        pcm = driver.read_chunk()
        assert pcm.dtype == np.int16
        assert pcm.max() <= 32767 and pcm.min() >= -32768
