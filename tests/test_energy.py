"""Unit tests: power model and energy meter."""

import pytest

from repro.energy.model import EnergyMeter, PowerModel
from repro.sim.clock import CycleDomain, SimClock


class TestPowerModel:
    def test_all_domains_covered(self):
        model = PowerModel()
        for domain in CycleDomain:
            assert model.power_mw(domain) > 0

    def test_secure_draws_more_than_normal(self):
        model = PowerModel()
        assert model.power_mw(CycleDomain.SECURE_CPU) > model.power_mw(
            CycleDomain.NORMAL_CPU
        )

    def test_peripherals_cheap(self):
        model = PowerModel()
        assert model.power_mw(CycleDomain.PERIPHERAL) < model.power_mw(
            CycleDomain.NORMAL_CPU
        ) / 10


class TestEnergyMeter:
    def test_integrates_power_over_time(self):
        clock = SimClock(freq_hz=1e9)
        meter = EnergyMeter(clock, PowerModel(normal_cpu_mw=1000.0))
        clock.advance(1_000_000_000, CycleDomain.NORMAL_CPU)  # 1 second
        report = meter.report()
        assert report.total_mj == pytest.approx(1000.0)  # 1 W * 1 s

    def test_per_domain_split(self):
        clock = SimClock(freq_hz=1e9)
        meter = EnergyMeter(clock)
        clock.advance(500_000_000, CycleDomain.NORMAL_CPU)
        clock.advance(500_000_000, CycleDomain.DMA)
        report = meter.report()
        assert report.domain_mj(CycleDomain.NORMAL_CPU) > report.domain_mj(
            CycleDomain.DMA
        )
        assert report.total_mj == pytest.approx(
            report.domain_mj(CycleDomain.NORMAL_CPU)
            + report.domain_mj(CycleDomain.DMA)
        )

    def test_delta_measurement(self):
        clock = SimClock(freq_hz=1e9)
        meter = EnergyMeter(clock)
        clock.advance(100_000, CycleDomain.NORMAL_CPU)
        snap = meter.snapshot()
        clock.advance(200_000, CycleDomain.SECURE_CPU)
        delta = meter.delta_since(snap)
        assert delta.domain_mj(CycleDomain.NORMAL_CPU) == 0.0
        assert delta.domain_mj(CycleDomain.SECURE_CPU) > 0

    def test_detach_stops_metering(self):
        clock = SimClock()
        meter = EnergyMeter(clock)
        meter.detach()
        clock.advance(1_000_000, CycleDomain.NORMAL_CPU)
        assert meter.report().total_mj == 0.0

    def test_same_cycles_secure_costs_more_energy(self):
        clock = SimClock(freq_hz=1e9)
        meter = EnergyMeter(clock)
        clock.advance(1_000_000, CycleDomain.NORMAL_CPU)
        normal = meter.report().total_mj
        clock2 = SimClock(freq_hz=1e9)
        meter2 = EnergyMeter(clock2)
        clock2.advance(1_000_000, CycleDomain.SECURE_CPU)
        assert meter2.report().total_mj > normal
