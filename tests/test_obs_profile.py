"""Unit + integration tests: the per-stage profiler behind ``repro profile``."""

import json

import pytest

from repro.obs.profile import (
    ProfileReport,
    StageRow,
    aggregate_stage_spans,
    collect_profile,
)
from repro.obs.span import Span
from repro.sim.clock import CycleDomain


def span(name, start, end, energy=0.0, switches=0, domains=None):
    return Span(
        id=start, name=name, category="stage.secure",
        start_cycle=start, end_cycle=end, energy_mj=energy,
        world_switches=switches, domain_cycles=domains or {},
    )


class TestAggregation:
    def test_groups_and_sums(self):
        rows = aggregate_stage_spans(
            [
                span("asr", 0, 100, energy=1.0, switches=1),
                span("asr", 100, 400, energy=2.0, switches=1),
                span("capture", 400, 500),
            ],
            pipeline="secure",
        )
        asr = next(r for r in rows if r.stage == "asr")
        assert asr.count == 2
        assert asr.total_cycles == 400
        assert asr.mean_cycles == 200
        assert asr.energy_mj == pytest.approx(3.0)
        assert asr.world_switches == 2

    def test_canonical_stage_order(self):
        rows = aggregate_stage_spans(
            [
                span("relay", 0, 1), span("zz_custom", 1, 2),
                span("capture", 2, 3), span("asr", 3, 4),
            ],
            pipeline="secure",
        )
        # Fig. 1 order first, unknown stages alphabetically last.
        assert [r.stage for r in rows] == ["capture", "asr", "relay",
                                           "zz_custom"]

    def test_percentiles_from_spans(self):
        spans = [span("asr", i, i + d) for i, d in
                 enumerate((10, 20, 30, 40, 50))]
        row = aggregate_stage_spans(spans, "secure")[0]
        assert row.p50_cycles == 30
        assert row.p50_cycles <= row.p95_cycles <= row.p99_cycles == pytest.approx(49.6, abs=0.5)


class TestReport:
    def _report(self):
        report = ProfileReport(seed=1, utterances=2, mode="batch")
        report.stages = [
            StageRow("secure", "asr", 2, 400, 200.0, 200.0, 290.0, 298.0,
                     3.0, 2),
            StageRow("baseline", "asr", 2, 200, 100.0, 100.0, 145.0, 149.0,
                     1.5, 0),
        ]
        for name in ("secure", "baseline"):
            report.pipelines[name] = {
                "total_cycles": 1000, "energy_mj": 5.0, "world_switches": 2,
                "freq_hz": 2.0e9,
            }
        return report

    def test_table_has_both_sections(self):
        table = self._report().table()
        assert "secure pipeline" in table
        assert "baseline pipeline" in table
        assert table.count("asr") == 2

    def test_to_doc_is_json_ready(self):
        doc = json.loads(json.dumps(self._report().to_doc()))
        assert doc["mode"] == "batch"
        assert {r["pipeline"] for r in doc["stages"]} == {
            "secure", "baseline",
        }
        assert doc["stages"][0]["p50_cycles"] <= doc["stages"][0]["p95_cycles"]

    def test_stage_lookup(self):
        report = self._report()
        assert report.stage("secure", "asr").total_cycles == 400
        assert report.stage("secure", "nope") is None


class TestCollectProfile:
    @pytest.fixture(scope="class")
    def report(self, provisioned):
        return collect_profile(seed=5, utterances=3,
                               bundle=provisioned.bundle)

    def test_fig1_stages_present_for_both_pipelines(self, report):
        secure = {r.stage for r in report.rows_for("secure")}
        baseline = {r.stage for r in report.rows_for("baseline")}
        assert {"capture", "asr", "classify", "filter", "relay"} <= secure
        assert {"capture", "asr", "classify"} <= baseline

    def test_percentiles_ordered_everywhere(self, report):
        for row in report.stages:
            assert 0 <= row.p50_cycles <= row.p95_cycles <= row.p99_cycles

    def test_only_secure_world_switches(self, report):
        assert report.pipelines["secure"]["world_switches"] > 0
        assert report.pipelines["baseline"]["world_switches"] == 0

    def test_secure_compute_costs_more(self, report):
        # In-enclave inference is slower by the cost model.
        assert (report.stage("secure", "asr").total_cycles
                > report.stage("baseline", "asr").total_cycles)

    def test_continuous_mode_profiles_vad(self, provisioned):
        report = collect_profile(seed=5, utterances=2,
                                 bundle=provisioned.bundle, continuous=True)
        assert report.mode == "continuous"
        assert report.stage("secure", "vad") is not None
        # The whole-run total reconstructed from per-result slices matches
        # the pipeline's own latency accounting.
        summary = report.pipelines["secure"]
        assert summary["total_latency_cycles"] > 0
        assert summary["total_latency_cycles"] <= summary["total_cycles"]
