"""Property tests: the mergeable log-bucketed histogram (hypothesis).

The fleet tier's aggregation math rests on three promises:

* ``merge`` is associative and commutative — fold order never changes
  the fleet report;
* quantile estimates bracket the exact (nearest-rank) percentile within
  one bucket's relative error, ``exact <= estimate <= exact * gamma``;
* merged ``count``/``sum``/``min``/``max`` equal the concatenated
  stream's, always, regardless of sample-cap state.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import BucketHistogram

# Integer cycle-like values: float sums stay exact below 2**53, so total
# comparisons are equality, not approx.
values = st.integers(min_value=0, max_value=10**12)
streams = st.lists(values, min_size=1, max_size=200)


def build(vals, max_samples=64, gamma=1.2):
    h = BucketHistogram("t", gamma=gamma, max_samples=max_samples)
    for v in vals:
        h.observe(v)
    return h


def nearest_rank(sorted_vals, q):
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return sorted_vals[rank - 1]


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(a=streams, b=streams, c=streams,
           cap=st.sampled_from([0, 8, 10_000]))
    def test_associative_and_commutative(self, a, b, c, cap):
        ha, hb, hc = (build(v, max_samples=cap) for v in (a, b, c))
        left = ha.merge(hb).merge(hc)
        right = ha.merge(hb.merge(hc))
        flipped = hc.merge(hb).merge(ha)
        # Full state equality (buckets, retained samples, aggregates):
        # to_doc() captures everything quantiles are computed from.
        assert left.to_doc() == right.to_doc() == flipped.to_doc()

    @settings(max_examples=60, deadline=None)
    @given(a=streams, b=streams, cap=st.sampled_from([0, 8, 10_000]))
    def test_merge_aggregates_equal_concatenated(self, a, b, cap):
        merged = build(a, max_samples=cap).merge(build(b, max_samples=cap))
        concat = a + b
        assert merged.count == len(concat)
        assert merged.total == sum(concat)
        assert merged.min == min(concat)
        assert merged.max == max(concat)

    def test_gamma_mismatch_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            build([1], gamma=1.2).merge(build([1], gamma=2.0))


class TestQuantileBracket:
    @settings(max_examples=80, deadline=None)
    @given(vals=streams, q=st.floats(min_value=0.0, max_value=1.0))
    def test_estimate_within_one_bucket_of_exact(self, vals, q):
        # A zero cap forces bucket-estimate mode (the interesting case);
        # exact mode is pinned to interpolation by the test below.
        h = build(vals, max_samples=0)
        exact = nearest_rank(sorted(vals), q)
        estimate = h.quantile(q)
        if exact == 0:
            assert estimate == 0.0
        else:
            assert exact <= estimate * (1 + 1e-9)
            assert estimate <= exact * h.gamma * (1 + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(vals=streams, q=st.floats(min_value=0.0, max_value=1.0))
    def test_exact_mode_matches_interpolation(self, vals, q):
        # Under the cap the histogram interpolates over raw samples,
        # byte-for-byte what CycleHistogram would report.
        h = build(vals, max_samples=10_000)
        assert h.exact
        ordered = sorted(vals)
        if len(ordered) == 1:
            expected = float(ordered[0])
        else:
            rank = q * (len(ordered) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(ordered) - 1)
            frac = rank - lo
            expected = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        assert h.quantile(q) == expected

    @settings(max_examples=40, deadline=None)
    @given(vals=st.lists(values, min_size=70, max_size=200))
    def test_cap_overflow_drops_samples_not_accuracy(self, vals):
        h = build(vals, max_samples=64)
        assert not h.exact
        assert h.summary()["exact"] is False
        # Estimates stay ordered even in bucket mode.
        assert h.quantile(0.5) <= h.quantile(0.95) <= h.quantile(0.99)

    @settings(max_examples=40, deadline=None)
    @given(vals=streams)
    def test_doc_round_trip(self, vals):
        h = build(vals, max_samples=16)
        back = BucketHistogram.from_doc(h.to_doc())
        assert back.to_doc() == h.to_doc()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert back.quantile(q) == h.quantile(q)
