"""Key material interpolated into message text (S001)."""


def audit(log, seal_key):
    log.info(f"sealing with {seal_key}")  # S001: secret in log f-string
    log.info(f"sealing with a {len(seal_key)}-byte key")  # clean: length only


def fail(huk):
    raise ValueError(f"bad huk: {huk}")  # S001: secret in exception text
