"""Secure-world capture helper: the *source* half of a two-module flow.

``grab`` returns a raw PTA capture buffer.  Nothing in this module sinks
it, so a module-local taint pass sees no violation here — the leak only
exists once a caller in another module wires this return into a sink.
"""

CMD_READ = 2


def grab(ctx, frames=64):
    return ctx.invoke_pta(ctx.pta_uuid, CMD_READ, {"frames": frames})
