"""Normal-world module: the forbidden import target for W001."""


def upload(payload):
    return {"uploaded": payload}
