"""Deliberately absent from the fixture world map (W000)."""

VALUE = 42
