"""Seeded-violation fixture package for the static analyzer tests.

Never imported — the analyzer parses it.  Each module carries exactly the
violations its name advertises; the test asserts the analyzer finds each
rule id here (and nothing it should not).
"""
