"""Ambient nondeterminism outside sim/ (D001)."""

import time

import numpy as np


def jitter():
    entropy = np.random.default_rng(0)  # D001: ambient numpy generator
    return time.time() + entropy.random()  # D001: wall clock
