"""Obs-restricted module importing observability at runtime (O001)."""

from typing import TYPE_CHECKING

from badpkg.obs import metrics  # O001: runtime obs import

if TYPE_CHECKING:
    from badpkg.obs.metrics import counter  # allowed: never executes


def run():
    return metrics.counter("calls")
