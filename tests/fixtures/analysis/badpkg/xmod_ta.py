"""Secure-world TA whose leak spans two other modules (W002 + W003).

``RelayTa.on_invoke`` never touches a source or a sink directly: the
taint enters through ``xmod_source.grab`` (its return summary carries the
PTA capture source) and exits through ``xmod_sink.ship`` (its parameter
summary reaches the supplicant RPC sink).  A module-local pass sees three
individually-clean modules; the whole-program pass must report the
tainted entry-point return (W002) and the cross-module flow into the
sink-reaching callee (W003).
"""

from badpkg.xmod_sink import ship
from badpkg.xmod_source import grab


class RelayTa(TrustedApplication):  # noqa: F821 - parse-only fixture
    def on_invoke(self, ctx, cmd, params):
        data = grab(ctx)
        ship(ctx, data)     # W003: tainted value crosses into sink-reaching callee
        return {"raw": data}  # W002: tainted entry-point return via call summary
