"""Shared shipping helper: the *sink* half of a two-module flow.

``ship`` forwards whatever it is handed over supplicant RPC — the payload
transits normal-world memory.  The module is world-agnostic substrate
(SHARED), so no import rule fires and, taken alone, it is unremarkable;
the violation is the secure-world caller binding tainted capture data to
``data`` — which only an interprocedural summary of this function can
surface.
"""


def ship(ctx, data):
    ctx.rpc("upload", {"payload": data})
