"""Secure-world TA with taint violations (W002) and clean declassified flows.

``EvilTa.on_invoke`` reads a plaintext capture buffer through the PTA and
(1) ships it over supplicant RPC and (2) returns it to the normal-world
client — both W002.  ``GoodTa`` moves the same data only through approved
declassification points (sealed storage, the filter decision, the relay
send) and must produce no findings.
"""

CMD_READ = 2


class EvilTa(TrustedApplication):  # noqa: F821 - parse-only fixture
    def on_invoke(self, ctx, cmd, params):
        pcm = ctx.invoke_pta(self.pta_uuid, CMD_READ, {"frames": 64})
        ctx.rpc("upload", {"pcm": pcm})  # W002: tainted -> rpc sink
        return {"raw": pcm}              # W002: tainted entry-point return


class GoodTa(TrustedApplication):  # noqa: F821 - parse-only fixture
    def on_invoke(self, ctx, cmd, params):
        pcm = ctx.invoke_pta(self.pta_uuid, CMD_READ, {"frames": 64})
        ctx.storage.put("checkpoint", pcm)          # declassified: sealed
        decision = self.bundle.filter.apply(pcm)    # declassified: filtered
        self.relay.send_transcript(decision)        # declassified: relay
        ctx.log("processed", frames=len(pcm))       # clean: len() only
        return {"ok": True}
