"""Stand-in metrics module."""


def counter(name):
    return name
