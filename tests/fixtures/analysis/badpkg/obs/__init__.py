"""Stand-in observability package (the O001 import target)."""
