"""Secure-world module that reaches into the normal world.

The runtime import is the W001 violation; the TYPE_CHECKING import of the
same module must NOT be flagged.
"""

from typing import TYPE_CHECKING

import badpkg.client  # W001: secure -> normal at runtime

if TYPE_CHECKING:
    from badpkg.client import upload  # allowed: never executes


def leak(x):
    return badpkg.client.upload(x)
