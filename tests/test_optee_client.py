"""Unit tests: GP client API — sessions, shared memory, params."""

import pytest

from repro.errors import TeeBadParameters
from repro.optee.client import TeeClient
from repro.optee.os import OpTeeOs
from repro.optee.params import MemRef, Params, Value
from repro.optee.supplicant import TeeSupplicant
from repro.optee.ta import TrustedApplication


class UpperTa(TrustedApplication):
    """Uppercases a memref in place (classic in/out buffer TA)."""

    NAME = "ta.test-upper"

    def on_invoke(self, session, cmd, params):
        ref = params.memref(0)
        data = self.ctx.read_memref(ref)
        self.ctx.write_memref(ref, data.upper())
        return len(data)


@pytest.fixture
def stack(machine):
    tee = OpTeeOs(machine)
    tee.attach_supplicant(TeeSupplicant(machine))
    tee.install_ta(UpperTa)
    return machine, tee, TeeClient(machine)


class TestSessions:
    def test_open_invoke_close(self, stack):
        machine, tee, client = stack
        session = client.open_session(UpperTa().uuid)
        shm = client.allocate_shared_memory(64)
        shm.write(b"hello tee")
        n = session.invoke(0, Params.of(MemRef(shm, size=9)))
        assert n == 9
        assert shm.read(9) == b"HELLO TEE"
        session.close()

    def test_context_manager(self, stack):
        machine, tee, client = stack
        with client.open_session(UpperTa().uuid) as session:
            assert not session.closed
        assert session.closed

    def test_invoke_after_close_rejected(self, stack):
        machine, tee, client = stack
        session = client.open_session(UpperTa().uuid)
        session.close()
        with pytest.raises(TeeBadParameters):
            session.invoke(0)

    def test_each_call_crosses_the_monitor(self, stack):
        machine, tee, client = stack
        smc_before = machine.monitor.smc_count
        session = client.open_session(UpperTa().uuid)
        shm = client.allocate_shared_memory(16)
        shm.write(b"x")
        session.invoke(0, Params.of(MemRef(shm, size=1)))
        session.close()
        # open + invoke + close = 3 SMCs (shm alloc is local).
        assert machine.monitor.smc_count - smc_before == 3


class TestSharedMemory:
    def test_allocated_in_shm_carveout(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(128)
        region = machine.shmem
        assert region.base <= shm.addr < region.end

    def test_bounds_checked(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(16)
        with pytest.raises(TeeBadParameters):
            shm.write(b"0" * 17)
        with pytest.raises(TeeBadParameters):
            shm.read(8, offset=12)

    def test_release_blocks_use(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(16)
        client.release_shared_memory(shm)
        with pytest.raises(TeeBadParameters):
            shm.write(b"x")

    def test_close_releases_all(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(16)
        client.close()
        assert shm.released

    def test_shared_memory_is_normal_world_visible(self, stack):
        """The shm carveout is genuinely non-secure — by design."""
        machine, tee, client = stack
        shm = client.allocate_shared_memory(16)
        shm.write(b"public")
        from repro.tz.worlds import World

        assert machine.memory.read(shm.addr, 6, World.NORMAL) == b"public"


class TestParams:
    def test_value_ranges(self):
        Value(0, 2**32 - 1)
        with pytest.raises(TeeBadParameters):
            Value(-1, 0)
        with pytest.raises(TeeBadParameters):
            Value(0, 2**32)

    def test_max_four_params(self):
        Params.of(Value(), Value(), Value(), Value())
        with pytest.raises(TeeBadParameters):
            Params([Value()] * 5)

    def test_typed_accessors(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(8)
        params = Params.of(Value(1, 2), MemRef(shm))
        assert params.value(0).a == 1
        assert params.memref(1).shm is shm
        with pytest.raises(TeeBadParameters):
            params.value(1)
        with pytest.raises(TeeBadParameters):
            params.memref(0)

    def test_memref_bounds(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(8)
        with pytest.raises(TeeBadParameters):
            MemRef(shm, offset=4, size=8)

    def test_memref_default_size(self, stack):
        machine, tee, client = stack
        shm = client.allocate_shared_memory(8)
        assert MemRef(shm, offset=2).size == 6
