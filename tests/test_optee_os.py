"""Unit tests: TEE OS — TA lifecycle, sessions, PTAs, panics, RPC."""

import pytest

from repro.errors import (
    TeeBusy,
    TeeItemNotFound,
    TeeOutOfMemory,
    TeeTargetDead,
)
from repro.optee.os import OpTeeOs
from repro.optee.params import Params, Value
from repro.optee.pta import PseudoTa
from repro.optee.supplicant import TeeSupplicant
from repro.optee.ta import TaFlags, TrustedApplication
from repro.optee.uuid import TaUuid
from repro.tz.worlds import World


class EchoTa(TrustedApplication):
    NAME = "ta.test-echo"

    def __init__(self):
        super().__init__()
        self.created = False
        self.sessions_opened = 0
        self.destroyed = False

    def on_create(self, ctx):
        self.created = True

    def on_open_session(self, session, params):
        self.sessions_opened += 1

    def on_invoke(self, session, cmd, params):
        if cmd == 1:
            v = params.value(0)
            return v.a * v.b
        if cmd == 2:
            raise ValueError("intentional TA bug")
        if cmd == 3:
            return self.ctx.alloc(params.value(0).a)
        return super().on_invoke(session, cmd, params)

    def on_destroy(self):
        self.destroyed = True


class SingleSessionTa(TrustedApplication):
    NAME = "ta.test-single"
    FLAGS = TaFlags.SINGLE_INSTANCE  # no MULTI_SESSION

    def on_invoke(self, session, cmd, params):
        return "ok"


@pytest.fixture
def tee(machine):
    os_ = OpTeeOs(machine)
    os_.attach_supplicant(TeeSupplicant(machine))
    return os_


def open_session(tee, uuid, params=None):
    """Drive open through the secure-side dispatch path."""
    return tee.machine.monitor.smc(
        __import__("repro.tz.monitor", fromlist=["SmcFunction"]).SmcFunction.CALL_WITH_ARG,
        {"op": "open_session", "uuid": uuid, "params": params or Params()},
    )


def invoke(tee, session_id, cmd, params=None):
    from repro.tz.monitor import SmcFunction

    return tee.machine.monitor.smc(
        SmcFunction.CALL_WITH_ARG,
        {"op": "invoke", "session": session_id, "cmd": cmd,
         "params": params or Params()},
    )


def close(tee, session_id):
    from repro.tz.monitor import SmcFunction

    return tee.machine.monitor.smc(
        SmcFunction.CALL_WITH_ARG, {"op": "close_session", "session": session_id}
    )


class TestTaLifecycle:
    def test_install_and_invoke(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        assert invoke(tee, sid, 1, Params.of(Value(6, 7))) == 42

    def test_open_unknown_ta(self, tee):
        with pytest.raises(TeeItemNotFound):
            open_session(tee, TaUuid.from_name("no.such.ta"))

    def test_instance_created_once(self, tee):
        uuid = tee.install_ta(EchoTa)
        s1 = open_session(tee, uuid)
        s2 = open_session(tee, uuid)
        instance = tee.ta_instance(uuid)
        assert instance.created
        assert instance.sessions_opened == 2
        assert s1 != s2

    def test_close_last_session_destroys_instance(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        instance = tee.ta_instance(uuid)
        close(tee, sid)
        assert instance.destroyed
        assert tee.ta_instance(uuid) is None

    def test_invoke_closed_session(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        close(tee, sid)
        with pytest.raises(TeeItemNotFound):
            invoke(tee, sid, 1, Params.of(Value(1, 1)))

    def test_close_is_idempotent(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        close(tee, sid)
        close(tee, sid)  # no raise

    def test_single_session_ta_busy(self, tee):
        uuid = tee.install_ta(SingleSessionTa)
        open_session(tee, uuid)
        with pytest.raises(TeeBusy):
            open_session(tee, uuid)


class TestPanicSemantics:
    def test_panic_kills_sessions(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        with pytest.raises(TeeTargetDead):
            invoke(tee, sid, 2)
        with pytest.raises(TeeTargetDead):
            invoke(tee, sid, 1, Params.of(Value(1, 1)))

    def test_panic_blocks_new_sessions(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        with pytest.raises(TeeTargetDead):
            invoke(tee, sid, 2)
        with pytest.raises(TeeTargetDead):
            open_session(tee, uuid)

    def test_panic_traced(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        with pytest.raises(TeeTargetDead):
            invoke(tee, sid, 2)
        assert tee.machine.trace.count("optee.os") > 0
        panics = [e for e in tee.machine.trace.events("optee.os")
                  if e.name == "ta_panic"]
        assert len(panics) == 1


class TestSecureHeap:
    def test_ta_allocations_land_in_secure_heap(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        addr = invoke(tee, sid, 3, Params.of(Value(4096)))
        region = tee.machine.secure_heap_region
        assert region.base <= addr < region.end
        assert tee.heap.used_bytes >= 4096

    def test_heap_exhaustion_is_tee_out_of_memory(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        too_big = tee.heap.total_bytes + 4096
        # Value is u32-limited; allocate directly through the instance.
        instance = tee.ta_instance(uuid)
        tee.machine.cpu._set_world(World.SECURE)
        try:
            with pytest.raises(TeeOutOfMemory):
                instance.ctx.alloc(too_big)
        finally:
            tee.machine.cpu._set_world(World.NORMAL)
        assert sid  # session unaffected

    def test_destroy_releases_heap(self, tee):
        uuid = tee.install_ta(EchoTa)
        sid = open_session(tee, uuid)
        invoke(tee, sid, 3, Params.of(Value(4096)))
        used = tee.heap.used_bytes
        close(tee, sid)
        assert tee.heap.used_bytes < used


class TestPta:
    class AdderPta(PseudoTa):
        NAME = "pta.test-adder"

        def on_invoke(self, cmd, payload, caller):
            if cmd == 1:
                return payload["a"] + payload["b"]
            raise AssertionError

    class PtaCallerTa(TrustedApplication):
        NAME = "ta.test-pta-caller"

        def on_invoke(self, session, cmd, params):
            pta_uuid = TaUuid.from_name("pta.test-adder")
            return self.ctx.invoke_pta(pta_uuid, 1, {"a": 20, "b": 22})

    def test_ta_invokes_pta(self, tee):
        tee.register_pta(self.AdderPta())
        uuid = tee.install_ta(self.PtaCallerTa)
        sid = open_session(tee, uuid)
        assert invoke(tee, sid, 1) == 42

    def test_unknown_pta_is_item_not_found(self, tee):
        uuid = tee.install_ta(self.PtaCallerTa)
        sid = open_session(tee, uuid)
        with pytest.raises(TeeItemNotFound):
            invoke(tee, sid, 1)

    def test_pta_requires_secure_world(self, tee):
        from repro.errors import WorldStateError

        pta = self.AdderPta()
        tee.register_pta(pta)
        with pytest.raises(WorldStateError):
            tee.invoke_pta(pta.uuid, 1, {"a": 1, "b": 2}, caller=None)


class TestSupplicantRpc:
    class RpcTa(TrustedApplication):
        NAME = "ta.test-rpc"

        def on_invoke(self, session, cmd, params):
            self.ctx.rpc("fs", "write", "x", b"123")
            return self.ctx.rpc("fs", "read", "x")

    def test_rpc_round_trip(self, tee):
        uuid = tee.install_ta(self.RpcTa)
        sid = open_session(tee, uuid)
        assert invoke(tee, sid, 1) == b"123"
        assert tee.rpc_count == 2

    def test_rpc_world_switching(self, tee):
        uuid = tee.install_ta(self.RpcTa)
        sid = open_session(tee, uuid)
        switches_before = tee.machine.cpu.switch_count
        invoke(tee, sid, 1)
        # 1 invoke SMC (2 switches) + 2 RPCs (2 switches each).
        assert tee.machine.cpu.switch_count - switches_before == 6
