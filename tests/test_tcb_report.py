"""Unit tests: TCB report rendering."""

import pytest

from repro.drivers.i2s_driver import I2sDriver
from repro.tcb.analyze import TcbAnalyzer
from repro.tcb.report import render_compile_config, render_markdown
from tests.test_tcb import build_rig, trace_record_task


@pytest.fixture(scope="module")
def plan():
    _, kernel, _, _ = build_rig()
    session = trace_record_task(kernel)
    return TcbAnalyzer(I2sDriver).analyze([session], task="record")


class TestMarkdown:
    def test_headline_numbers_present(self, plan):
        doc = render_markdown(plan)
        assert f"{plan.report.loc_kept} / {plan.report.loc_total}" in doc
        assert "tegra-i2s" in doc
        assert "task `record`" in doc

    def test_all_functions_listed_exactly_once(self, plan):
        doc = render_markdown(plan)
        for fn in plan.keep | plan.compiled_out:
            assert doc.count(f"`{fn}`") == 1

    def test_subsystem_table_complete(self, plan):
        doc = render_markdown(plan)
        for row in plan.report.rows():
            assert f"| {row['subsystem']} |" in doc

    def test_is_valid_markdown_table(self, plan):
        doc = render_markdown(plan)
        table_lines = [l for l in doc.splitlines() if l.startswith("|")]
        widths = {l.count("|") for l in table_lines}
        assert widths == {5}  # consistent 4-column table


class TestCompileConfig:
    def test_every_function_configured(self, plan):
        config = render_compile_config(plan)
        total = len(plan.keep) + len(plan.compiled_out)
        assert config.count("CONFIG_TEGRA_I2S_") == total

    def test_kept_yes_stripped_no(self, plan):
        config = render_compile_config(plan)
        assert "CONFIG_TEGRA_I2S_READ_CHUNK=y" in config
        assert "CONFIG_TEGRA_I2S_WRITE_CHUNK=n" in config

    def test_task_recorded(self, plan):
        assert "'record'" in render_compile_config(plan)
