"""Unit tests: the three classifier architectures."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml.models import (
    HybridCnnTransformer,
    TextCnnClassifier,
    TransformerClassifier,
    build_classifier,
)
from tests.test_ml_layers import numeric_grad

VOCAB, MAX_LEN = 50, 8
ARCHS = ["cnn", "transformer", "hybrid"]


def make(arch, seed=0, **kw):
    return build_classifier(arch, VOCAB, MAX_LEN, np.random.default_rng(seed), **kw)


def ids(batch=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, VOCAB, size=(batch, MAX_LEN)).astype(np.int32)


class TestInterfaces:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_logit_shape(self, arch):
        model = make(arch)
        assert model.forward(ids()).shape == (3, 2)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_predict_proba_in_unit_interval(self, arch):
        proba = make(arch).predict_proba(ids())
        assert proba.shape == (3,)
        assert np.all((proba >= 0) & (proba <= 1))

    @pytest.mark.parametrize("arch", ARCHS)
    def test_predict_threshold(self, arch):
        model = make(arch)
        all_pos = model.predict(ids(), threshold=1e-9)
        all_neg = model.predict(ids(), threshold=1 - 1e-9)
        assert np.all(all_pos == 1)
        assert np.all(all_neg == 0)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_predict_is_deterministic_despite_dropout(self, arch):
        """predict_proba must run in eval mode even if training was on."""
        model = make(arch)
        model.train_mode(True)
        a = model.predict_proba(ids())
        b = model.predict_proba(ids())
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_accounting_positive(self, arch):
        model = make(arch)
        assert model.num_params() > 0
        assert model.size_bytes() == model.num_params() * 4
        assert model.macs_per_inference() > 0

    @pytest.mark.parametrize("arch", ARCHS)
    def test_deterministic_construction(self, arch):
        a, b = make(arch, seed=7), make(arch, seed=7)
        assert np.array_equal(a.forward(ids()), b.forward(ids()))

    def test_unknown_architecture(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            make("rnn")


class TestSerialization:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_round_trip(self, arch):
        model = make(arch, seed=1)
        model.train_mode(False)  # dropout off: forward must be deterministic
        blob = model.serialize()
        clone = make(arch, seed=2)
        clone.train_mode(False)
        assert not np.array_equal(clone.forward(ids()), model.forward(ids()))
        clone.deserialize(blob)
        assert np.allclose(clone.forward(ids()), model.forward(ids()), atol=1e-6)

    def test_wrong_size_rejected(self):
        model = make("cnn")
        with pytest.raises(ShapeError):
            model.deserialize(b"\x00" * 10)

    def test_blob_size_matches_accounting(self):
        model = make("cnn")
        assert len(model.serialize()) == model.size_bytes()


class TestGradients:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_head_weight_gradient(self, arch):
        """Numeric check through the full model to the head weights."""
        model = make(arch)
        model.train_mode(False)
        x = ids(batch=2)

        def loss():
            return float(model.forward(x).sum())

        for p in model.params():
            p.zero_grad()
        logits = model.forward(x)
        model.backward(np.ones_like(logits))
        head_w = model.head.w
        numeric = numeric_grad(loss, head_w.value)
        assert np.allclose(head_w.grad, numeric, atol=8e-2), (
            np.abs(head_w.grad - numeric).max()
        )

    @pytest.mark.parametrize("arch", ARCHS)
    def test_embedding_receives_gradient(self, arch):
        model = make(arch)
        model.train_mode(False)
        x = ids(batch=2)
        for p in model.params():
            p.zero_grad()
        logits = model.forward(x)
        model.backward(np.ones_like(logits))
        assert np.abs(model.embed.table.grad).sum() > 0


class TestLearning:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_overfits_tiny_task(self, arch):
        """Every architecture must fit a trivially separable batch."""
        from repro.ml.losses import cross_entropy
        from repro.ml.optim import Adam

        model = make(arch)
        x = np.zeros((8, MAX_LEN), dtype=np.int32)
        x[:4] = 5  # class-0 pattern: all token 5
        x[4:] = 9  # class-1 pattern: all token 9
        y = np.array([0] * 4 + [1] * 4)
        optimizer = Adam(model.params(), lr=5e-3)
        model.train_mode(True)
        for _ in range(120):
            optimizer.zero_grad()
            loss, dlogits = cross_entropy(model.forward(x), y)
            model.backward(dlogits)
            optimizer.step()
        model.train_mode(False)
        assert np.array_equal(model.predict(x), y)

    def test_architectures_have_distinct_sizes(self):
        sizes = {arch: make(arch).num_params() for arch in ARCHS}
        assert len(set(sizes.values())) == 3
