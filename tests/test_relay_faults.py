"""Fault-tolerant relay: injection, retry/backoff, store-and-forward."""

import pytest

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_HEARTBEAT, CMD_STATS
from repro.errors import RelayError, TeeCommunicationError
from repro.optee.supplicant import NetworkService
from repro.relay.queue import StoreForwardQueue
from repro.relay.relay import RetryPolicy
from repro.sim.faults import FAULT_KINDS, FaultConfig, FaultInjector
from repro.sim.rng import SimRng
from tests.test_core_pipeline import MIXED, make_workload

# Both benign: they travel the full relay path.
BENIGN = [MIXED[0], MIXED[2]]


class EchoEndpoint:
    """A trivial endpoint recording what it was handed."""

    def __init__(self):
        self.received = []

    def receive(self, payload):
        self.received.append(bytes(payload))
        return b"ok:" + bytes(payload)


class ScriptedFaults:
    """FaultInjector stand-in replaying an exact fault sequence.

    Lets the retry tests force "fail once, then succeed" without relying
    on probabilities: the script is consumed one entry per send; an
    exhausted script means clean delivery.
    """

    def __init__(self, script):
        self.script = list(script)
        self.config = FaultConfig()
        self.counts = {kind: 0 for kind in FAULT_KINDS}
        self.sends_seen = 0

    def next_fault(self):
        self.sends_seen += 1
        fault = self.script.pop(0) if self.script else None
        if fault is not None:
            self.counts[fault] += 1
        return fault

    def corrupt(self, payload):
        out = bytearray(payload)
        out[0] ^= 0xFF
        return bytes(out)


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(refuse_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=-0.1)

    def test_enabled_property(self):
        assert not FaultConfig().enabled
        assert not FaultConfig.send_failure(0.0).enabled
        assert FaultConfig(latency_rate=0.2).enabled

    def test_send_failure_splits_budget(self):
        config = FaultConfig.send_failure(0.3)
        assert config.refuse_rate == pytest.approx(0.1)
        assert config.drop_rate == pytest.approx(0.1)
        assert config.corrupt_rate == pytest.approx(0.1)
        assert config.latency_rate == 0.0


class TestFaultInjection:
    """Each fault kind, exercised at the supplicant's NetworkService."""

    def make_net(self, machine, config, seed=5):
        net = NetworkService(machine)
        endpoint = EchoEndpoint()
        net.register_endpoint("h", 1, endpoint)
        net.set_fault_injector(FaultInjector(config, SimRng(seed, "net")))
        return net, endpoint

    def test_refuse_never_reaches_the_wire(self, machine):
        net, endpoint = self.make_net(machine, FaultConfig(refuse_rate=1.0))
        with pytest.raises(TeeCommunicationError, match="refused"):
            net.call("send", "h", 1, b"ciphertext")
        assert net.wire_log == []
        assert endpoint.received == []
        assert net.sends_failed == 1
        assert net.faults.counts["refuse"] == 1

    def test_drop_reaches_wire_but_not_endpoint(self, machine):
        """A dropped send is the eavesdropper's gain and the endpoint's
        loss: ciphertext on the wire, nothing delivered."""
        net, endpoint = self.make_net(machine, FaultConfig(drop_rate=1.0))
        with pytest.raises(TeeCommunicationError, match="timed out"):
            net.call("send", "h", 1, b"ciphertext")
        assert net.wire_log == [b"ciphertext"]
        assert endpoint.received == []

    def test_corrupt_flips_reply_bytes(self, machine):
        net, endpoint = self.make_net(machine, FaultConfig(corrupt_rate=1.0))
        reply = net.call("send", "h", 1, b"abc")
        clean = b"ok:abc"
        assert endpoint.received == [b"abc"]  # request arrived intact
        assert reply != clean
        assert len(reply) == len(clean)
        diffs = [i for i in range(len(clean)) if reply[i] != clean[i]]
        assert len(diffs) == 1
        assert reply[diffs[0]] == clean[diffs[0]] ^ 0xFF

    def test_latency_charges_cycles(self, machine):
        net, _ = self.make_net(
            machine,
            FaultConfig(latency_rate=1.0, latency_cycles=12_345),
        )
        before = machine.clock.now
        reply = net.call("send", "h", 1, b"abc")
        assert reply == b"ok:abc"  # delivery still succeeds
        assert machine.clock.now - before >= 12_345

    def test_at_most_one_fault_per_send(self, machine):
        """With every rate at 1.0 only the first kind in order fires."""
        net, _ = self.make_net(
            machine,
            FaultConfig(refuse_rate=1.0, drop_rate=1.0,
                        corrupt_rate=1.0, latency_rate=1.0),
        )
        for _ in range(3):
            with pytest.raises(TeeCommunicationError):
                net.call("send", "h", 1, b"x")
        assert net.faults.counts == {
            "refuse": 3, "drop": 0, "corrupt": 0, "latency": 0,
        }

    def test_fault_sequence_deterministic(self):
        config = FaultConfig.send_failure(0.5)
        seqs = []
        for _ in range(2):
            injector = FaultInjector(config, SimRng(7, "net"))
            seqs.append([injector.next_fault() for _ in range(50)])
        assert seqs[0] == seqs[1]
        assert any(f is not None for f in seqs[0])


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_cycles=100, backoff_multiplier=2.0,
            backoff_cap_cycles=500, jitter_fraction=0.0,
        )
        rng = SimRng(1, "backoff")
        delays = [policy.backoff_cycles(a, rng) for a in range(5)]
        assert delays == [100, 200, 400, 500, 500]

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_cycles=1_000, jitter_fraction=0.25)
        rng = SimRng(2, "backoff")
        for _ in range(20):
            delay = policy.backoff_cycles(0, rng)
            assert 1_000 <= delay <= 1_250

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetryPath:
    """Transient faults are absorbed by retry + re-handshake."""

    def _pipeline(self, provisioned, seed):
        platform = IotPlatform.create(seed=seed)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        return platform, pipeline

    def _relay_stats(self, pipeline):
        return pipeline.session.invoke(CMD_STATS)["relay"]

    def test_refuse_then_success(self, provisioned):
        platform, pipeline = self._pipeline(provisioned, seed=401)
        workload = make_workload(provisioned, BENIGN)
        first = pipeline.process_item(workload.items[0])  # clean send
        assert first.relay_status == "sent"
        assert first.relay_attempts == 1

        platform.supplicant.net.set_fault_injector(ScriptedFaults(["refuse"]))
        second = pipeline.process_item(workload.items[1])
        assert second.relay_status == "sent"
        assert second.relay_attempts == 2
        stats = self._relay_stats(pipeline)
        assert stats["retries"] == 1
        assert stats["rehandshakes"] == 1  # fresh handshake after the fault
        assert stats["backoff_cycles"] > 0
        assert platform.cloud.received_transcripts.count(second.payload) == 1

    def test_drop_then_success_delivers_exactly_once(self, provisioned):
        platform, pipeline = self._pipeline(provisioned, seed=402)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])

        platform.supplicant.net.set_fault_injector(ScriptedFaults(["drop"]))
        result = pipeline.process_item(workload.items[1])
        assert result.relay_status == "sent"
        assert result.relay_attempts == 2
        assert platform.cloud.received_transcripts.count(result.payload) == 1
        assert platform.cloud.duplicates_suppressed == 0

    def test_corrupt_reply_retries_and_cloud_deduplicates(self, provisioned):
        """The first attempt *was* recorded by the cloud (only its reply
        was mangled), so the retry must be suppressed as a duplicate —
        at-least-once on the wire, exactly-once in the cloud's log."""
        platform, pipeline = self._pipeline(provisioned, seed=403)
        workload = make_workload(provisioned, BENIGN)
        pipeline.process_item(workload.items[0])

        platform.supplicant.net.set_fault_injector(ScriptedFaults(["corrupt"]))
        result = pipeline.process_item(workload.items[1])
        assert result.relay_status == "sent"
        assert result.relay_attempts == 2
        assert platform.cloud.received_transcripts.count(result.payload) == 1
        assert platform.cloud.duplicates_suppressed == 1

    def test_retry_events_traced(self, provisioned):
        platform, pipeline = self._pipeline(provisioned, seed=404)
        workload = make_workload(provisioned, BENIGN[:1])
        platform.supplicant.net.set_fault_injector(ScriptedFaults(["refuse"]))
        pipeline.process_item(workload.items[0])
        retries = [e for e in platform.machine.trace.events("optee.ta")
                   if e.name == "relay_retry"]
        assert len(retries) == 1


class FakeStorage:
    """Dict-backed stand-in for SecureStorage (unit tests only)."""

    def __init__(self):
        self.blobs = {}

    def put(self, name, data):
        self.blobs[name] = bytes(data)

    def get(self, name):
        return self.blobs[name]

    def delete(self, name):
        del self.blobs[name]

    def names(self):
        return sorted(self.blobs)


class TestQueueUnit:
    def test_fifo_restore_and_seq_continuation(self):
        store = FakeStorage()
        queue = StoreForwardQueue(store)
        queue.enqueue("a", meta={"dialog_id": 1})
        queue.enqueue("b", meta={"dialog_id": 2})
        # A fresh instance (TA restart) restores the pending entries.
        restored = StoreForwardQueue(store)
        assert len(restored) == 2
        assert restored.names == queue.names
        sent = []
        delivered = restored.drain(
            lambda payload, meta: sent.append((payload, meta["dialog_id"]))
        )
        assert delivered == 2
        assert sent == [("a", 1), ("b", 2)]
        assert len(restored) == 0 and store.blobs == {}
        # Sequence numbers keep growing; names never collide.
        assert restored.enqueue("c") == "relayq/00000002"

    def test_drain_stops_at_first_failure(self):
        store = FakeStorage()
        queue = StoreForwardQueue(store)
        queue.enqueue("a")
        queue.enqueue("b")

        def flaky(payload, meta):
            if payload == "b":
                raise RelayError("link died again")

        assert queue.drain(flaky) == 1
        assert len(queue) == 1
        assert queue.names == ["relayq/00000001"]
        assert "relayq/00000001" in store.blobs  # undelivered entry kept


class TestStoreAndForward:
    """Retries exhausted: payloads spill sealed, drain on recovery."""

    def _outage(self, provisioned, seed, max_attempts=2):
        platform = IotPlatform.create(seed=seed)
        pipeline = SecurePipeline(
            platform, provisioned.bundle,
            retry_policy=RetryPolicy(max_attempts=max_attempts),
        )
        saved = dict(platform.supplicant.net._endpoints)
        platform.supplicant.net._endpoints.clear()
        return platform, pipeline, saved

    def test_exhausted_retries_spill_to_queue(self, provisioned):
        platform, pipeline, _ = self._outage(provisioned, seed=411)
        workload = make_workload(provisioned, BENIGN)
        result = pipeline.process_item(workload.items[0])
        assert result.forwarded
        assert result.relay_status == "queued"
        assert result.relay_attempts == 2
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["queue_depth"] == 1
        assert stats["queued"] == 1
        assert stats["failed"] == 1
        # The sealed blob is visible to the (untrusted) supplicant fs.
        qfiles = [p for p in platform.supplicant.fs.files if "relayq/" in p]
        assert len(qfiles) == 1

    def test_queued_payload_sealed_never_plaintext(self, provisioned):
        """Security property: the store-and-forward queue must not hand
        the normal world anything it could read — neither in the
        supplicant's filesystem nor on the wire."""
        platform, pipeline, _ = self._outage(provisioned, seed=412)
        workload = make_workload(provisioned, BENIGN)
        result = pipeline.process_item(workload.items[0])
        assert result.relay_status == "queued"
        payload = result.payload.encode()
        for path, blob in platform.supplicant.fs.files.items():
            assert payload not in blob, f"plaintext payload leaked to {path}"
        for frame in platform.supplicant.net.wire_log:
            assert payload not in frame

    def test_queue_drains_after_next_successful_send(self, provisioned):
        platform, pipeline, saved = self._outage(provisioned, seed=413)
        workload = make_workload(provisioned, BENIGN)
        queued = pipeline.process_item(workload.items[0])
        assert queued.relay_status == "queued"
        # Link recovers; the next delivery flushes the backlog too.
        platform.supplicant.net._endpoints.update(saved)
        sent = pipeline.process_item(workload.items[1])
        assert sent.relay_status == "sent"
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["queue_depth"] == 0
        assert stats["drained"] == 1
        received = platform.cloud.received_transcripts
        assert sorted(received) == sorted([queued.payload, sent.payload])
        assert not any(
            "relayq/" in p for p in platform.supplicant.fs.files
        )
        # The drained re-send advertises its full attempt history.
        drained_record = next(
            r for r in platform.cloud.received
            if r.transcript == queued.payload
        )
        assert drained_record.attempt == 3  # 2 failed attempts + this one

    def test_heartbeat_drains_queue(self, provisioned):
        platform, pipeline, saved = self._outage(provisioned, seed=414)
        workload = make_workload(provisioned, BENIGN[:1])
        assert pipeline.process_item(workload.items[0]).relay_status == "queued"
        platform.supplicant.net._endpoints.update(saved)
        directive = pipeline.session.invoke(CMD_HEARTBEAT)
        assert directive["directive"] == "Ack"
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["queue_depth"] == 0
        assert stats["drained"] == 1

    def test_heartbeat_reports_unreachable_without_panicking(self, provisioned):
        platform, pipeline, _ = self._outage(provisioned, seed=415)
        directive = pipeline.session.invoke(CMD_HEARTBEAT)
        assert directive["directive"] == "error"
        assert directive["reason"] == "cloud unreachable"
        assert directive["attempts"] == 2
        # The session survives; a later heartbeat can still succeed.
        assert not pipeline.session.closed


class TestEndToEndUnderFaults:
    """The acceptance experiment: lossy network, zero lost decisions."""

    def test_thirty_percent_failure_no_lost_decisions(self, provisioned):
        platform = IotPlatform.create(
            seed=421, network_faults=FaultConfig.send_failure(0.3)
        )
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED * 3)
        run = pipeline.process(workload)

        assert run.lost_count() == 0
        for result in run.results:
            if result.forwarded:
                assert result.relay_status in ("sent", "queued")
        assert platform.supplicant.net.faults.sends_seen > 0
        # Even injected faults never expose plaintext on the wire.
        for text, _ in MIXED:
            needle = text.encode()
            for frame in platform.supplicant.net.wire_log:
                assert needle not in frame

        # Recovery: faults lifted, one heartbeat flushes the backlog.
        platform.supplicant.net.set_fault_injector(None)
        pipeline.session.invoke(CMD_HEARTBEAT)
        stats = pipeline.session.invoke(CMD_STATS)["relay"]
        assert stats["queue_depth"] == 0
        # Every forwarded payload reached the cloud exactly once.
        expected = sorted(r.payload for r in run.results if r.forwarded)
        assert sorted(platform.cloud.received_transcripts) == expected

    def test_fault_run_reproducible(self, provisioned):
        def once():
            platform = IotPlatform.create(
                seed=422, network_faults=FaultConfig.send_failure(0.3)
            )
            pipeline = SecurePipeline(platform, provisioned.bundle)
            run = pipeline.process(make_workload(provisioned, MIXED))
            return (
                tuple((r.relay_status, r.relay_attempts) for r in run.results),
                platform.supplicant.net.faults.summary(),
                platform.machine.clock.now,
            )

        assert once() == once()

    def test_faults_disabled_matches_baseline(self, provisioned):
        """FaultConfig with all rates zero must be indistinguishable from
        no fault config at all — cycle for cycle."""

        def run_once(faults):
            platform = IotPlatform.create(seed=423, network_faults=faults)
            pipeline = SecurePipeline(platform, provisioned.bundle)
            run = pipeline.process(make_workload(provisioned, MIXED))
            return (
                [(r.transcript, r.forwarded, r.latency_cycles)
                 for r in run.results],
                run.stage_cycles,
                platform.machine.clock.now,
            )

        assert run_once(None) == run_once(FaultConfig.send_failure(0.0))
