"""Failure injection: the system must fail loudly and recover cleanly."""

import numpy as np
import pytest

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.errors import (
    TeeCommunicationError,
    TeeTargetDead,
)
from repro.peripherals.i2s import StatusBits
from repro.tz.worlds import World
from tests.test_core_pipeline import MIXED, make_workload


class TestFifoOverrun:
    def test_overrun_recoverable_via_irq(self, machine):
        """Overrun sets the sticky bit; the IRQ handler clears it and the
        stream continues delivering valid data."""
        from tests.test_drivers_i2s import open_capture
        from repro.drivers.hosting import KernelDriverHost
        from repro.drivers.i2s_driver import I2sDriver
        from repro.peripherals.audio import ToneSource
        from repro.peripherals.i2s import I2sBus, I2sController
        from repro.peripherals.microphone import DigitalMicrophone
        from repro.tz.memory import MemoryRegion, SecurityAttr

        region = machine.memory.add_region(
            MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                         SecurityAttr.NONSECURE, device=True)
        )
        controller = I2sController(machine.clock, machine.trace, fifo_depth=16)
        machine.memory.attach_mmio("i2s_mmio", controller)
        I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
        driver = I2sDriver(KernelDriverHost(machine), controller, region)
        open_capture(driver, chunk=8)

        controller.capture(64)  # flood: 48 frames dropped
        assert controller._overrun_sticky
        assert driver.irq_handler() == "overrun"
        assert not controller._overrun_sticky
        # Stream still works after recovery.
        pcm = driver.read_chunk()
        assert len(pcm) == 8


class TestTaPanicMidStream:
    def test_panic_kills_pipeline_cleanly(self, provisioned):
        platform = IotPlatform.create(seed=71)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED)
        # First utterance succeeds.
        pipeline.process_item(workload.items[0])

        # Sabotage the ASR: next TA invocation panics.
        original = provisioned.bundle.asr.transcribe

        def explode(pcm):
            raise RuntimeError("ASR crashed")

        provisioned.bundle.asr.transcribe = explode
        try:
            with pytest.raises(TeeTargetDead):
                pipeline.process_item(workload.items[1])
        finally:
            provisioned.bundle.asr.transcribe = original

        # The TA is dead for good — GP semantics.
        with pytest.raises(TeeTargetDead):
            pipeline.process_item(workload.items[2])
        # The CPU is back in the normal world, machine still usable.
        assert platform.machine.cpu.world is World.NORMAL
        platform.machine.cpu.execute(10)

    def test_panic_is_audit_logged(self, provisioned):
        platform = IotPlatform.create(seed=72)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:2])
        original = provisioned.bundle.asr.transcribe
        provisioned.bundle.asr.transcribe = lambda pcm: (_ for _ in ()).throw(
            ValueError("boom")
        )
        try:
            with pytest.raises(TeeTargetDead):
                pipeline.process_item(workload.items[0])
        finally:
            provisioned.bundle.asr.transcribe = original
        panics = [e for e in platform.machine.trace.events("optee.os")
                  if e.name == "ta_panic"]
        assert len(panics) == 1


class TestNetworkOutage:
    def test_cloud_unreachable_queues_instead_of_failing(self, provisioned):
        """A dead cloud no longer aborts the utterance: after retries the
        filtered payload is spilled into the sealed store-and-forward
        queue and the decision completes as ``queued``."""
        platform = IotPlatform.create(seed=73)
        # Deregister the TLS endpoint: connection refused.
        platform.supplicant.net._endpoints.clear()
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:1])  # benign: will relay
        result = pipeline.process_item(workload.items[0])
        assert result.forwarded
        assert result.relay_status == "queued"
        # World restored despite the failures mid-RPC.
        assert platform.machine.cpu.world is World.NORMAL

    def test_raw_rpc_outage_still_surfaces_communication_error(self, machine):
        """The supplicant RPC layer itself still fails loudly when no
        endpoint is registered — graceful degradation lives above it."""
        from repro.optee.supplicant import TeeSupplicant

        supplicant = TeeSupplicant(machine)
        with pytest.raises(TeeCommunicationError):
            supplicant.net.call("send", "nowhere.example", 1, b"x")

    def test_sensitive_utterances_unaffected_by_outage(self, provisioned):
        """DROP policy never touches the network, so sensitive utterances
        process fine even with the cloud down."""
        platform = IotPlatform.create(seed=74)
        platform.supplicant.net._endpoints.clear()
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, [MIXED[1]])  # password utterance
        result = pipeline.process_item(workload.items[0])
        assert not result.forwarded


class TestDegradedInput:
    def test_powered_off_mic_yields_empty_transcript(self, provisioned):
        platform = IotPlatform.create(seed=75)
        platform.mic.power_off()
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:1])
        result = pipeline.process_item(workload.items[0])
        assert result.transcript == ""
        # Nothing sensitive in silence; forwarded as benign (empty) payload.
        assert not result.utterance.sensitive or not result.forwarded

    def test_heavy_acoustic_noise_does_not_crash(self, provisioned):
        platform = IotPlatform.create(seed=76)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:1])
        item = workload.items[0]
        rng = np.random.default_rng(0)
        noisy = (
            item.pcm.astype(np.int32)
            + rng.normal(0, 15000, len(item.pcm)).astype(np.int32)
        ).clip(-32768, 32767).astype(np.int16)
        from repro.core.workload import WorkloadItem

        result = pipeline.process_item(
            WorkloadItem(utterance=item.utterance, pcm=noisy)
        )
        assert result.latency_cycles > 0  # processed, however garbled


class TestResourceExhaustion:
    def test_shared_memory_exhaustion(self, machine):
        from repro.optee.client import TeeClient
        from repro.optee.os import OpTeeOs

        OpTeeOs(machine)
        client = TeeClient(machine)
        with pytest.raises(MemoryError):
            client.allocate_shared_memory(machine.shmem.size * 2)

    def test_secure_carveout_exhaustion(self, machine):
        with pytest.raises(MemoryError):
            machine.secure_allocator.alloc(machine.dram_secure.size * 2)
