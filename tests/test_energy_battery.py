"""Unit tests: battery-life projection."""

import pytest

from repro.energy.battery import (
    BatteryProjection,
    compare_days,
    project_battery_life,
)
from repro.energy.model import PowerModel


class TestProjection:
    def test_idle_floor_dominates_at_low_rates(self):
        p = project_battery_life(energy_per_utterance_mj=15.0,
                                 utterances_per_day=10)
        assert p.idle_mj_per_day > p.active_mj_per_day

    def test_more_usage_fewer_days(self):
        light = project_battery_life(15.0, utterances_per_day=50)
        heavy = project_battery_life(15.0, utterances_per_day=5000)
        assert light.days > heavy.days

    def test_more_energy_fewer_days(self):
        cheap = project_battery_life(10.0, utterances_per_day=1000)
        costly = project_battery_life(30.0, utterances_per_day=1000)
        assert cheap.days > costly.days

    def test_bigger_battery_more_days(self):
        small = project_battery_life(15.0, battery_mwh=10_000)
        big = project_battery_life(15.0, battery_mwh=20_000)
        assert big.days == pytest.approx(small.days * 2)

    def test_plausible_magnitude(self):
        """A 5 Ah pack at ~15 mW idle should run on the order of weeks."""
        p = project_battery_life(15.0, utterances_per_day=200)
        assert 10 < p.days < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            project_battery_life(-1.0)
        with pytest.raises(ValueError):
            project_battery_life(1.0, utterances_per_day=-1)
        with pytest.raises(ValueError):
            project_battery_life(1.0, battery_mwh=0)

    def test_custom_power_model(self):
        hungry = PowerModel(idle_mw=150.0)
        p = project_battery_life(15.0, power=hungry)
        q = project_battery_life(15.0)
        assert p.days < q.days


class TestComparison:
    def test_secure_costs_days(self):
        out = compare_days(baseline_mj=14.78, secure_mj=15.04,
                           utterances_per_day=2000)
        assert out["secure_days"] < out["baseline_days"]
        assert 0 < out["days_lost_pct"] < 5  # modest, per T4

    def test_equal_energy_no_loss(self):
        out = compare_days(10.0, 10.0)
        assert out["days_lost_pct"] == pytest.approx(0.0)
