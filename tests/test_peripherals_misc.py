"""Unit tests: audio sources, codecs, microphone, camera, DMA, MMIO mux."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    InvalidAddressError,
    PeripheralError,
    SecureAccessViolation,
)
from repro.peripherals.audio import (
    AudioFormat,
    BufferSource,
    SilenceSource,
    ToneSource,
)
from repro.peripherals.camera import Camera, SyntheticScene
from repro.peripherals.codec import (
    mulaw_decode,
    mulaw_encode,
    pcm16_decode,
    pcm16_encode,
)
from repro.peripherals.dma import DmaEngine
from repro.peripherals.microphone import DigitalMicrophone
from repro.peripherals.mmio import MmioMux
from repro.sim.rng import SimRng
from repro.tz.memory import MmioHandler
from repro.tz.worlds import World


class TestAudioFormat:
    def test_defaults(self):
        fmt = AudioFormat()
        assert fmt.sample_rate == 16_000
        assert fmt.bytes_per_frame == 2

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            AudioFormat(bit_depth=12)
        with pytest.raises(ValueError):
            AudioFormat(channels=3)
        with pytest.raises(ValueError):
            AudioFormat(sample_rate=0)


class TestSources:
    def test_silence(self):
        src = SilenceSource()
        assert not np.any(src.next_samples(100))

    def test_tone_amplitude_and_continuity(self):
        src = ToneSource(freq_hz=1000, amplitude=0.5)
        a = src.next_samples(100)
        b = src.next_samples(100)
        assert np.abs(a).max() <= 0.5 * 32767 + 1
        joined = np.concatenate([a, b]).astype(np.float64)
        # No discontinuity: max adjacent step bounded by the tone slope.
        assert np.abs(np.diff(joined)).max() < 0.5 * 32767 * 2 * np.pi * 1000 / 16000 * 1.1

    def test_tone_bad_amplitude(self):
        with pytest.raises(ValueError):
            ToneSource(amplitude=0.0)
        with pytest.raises(ValueError):
            ToneSource(amplitude=1.5)

    def test_buffer_source_pads_with_silence(self):
        src = BufferSource(np.array([1, 2, 3], dtype=np.int16))
        out = src.next_samples(5)
        assert list(out) == [1, 2, 3, 0, 0]
        assert src.exhausted()

    def test_buffer_source_requires_int16(self):
        with pytest.raises(ValueError):
            BufferSource(np.array([1.0, 2.0]))

    def test_buffer_source_remaining(self):
        src = BufferSource(np.zeros(10, dtype=np.int16))
        src.next_samples(4)
        assert src.remaining == 6


class TestCodecs:
    def test_pcm16_round_trip(self):
        samples = np.array([-32768, -1, 0, 1, 32767], dtype=np.int16)
        assert np.array_equal(pcm16_decode(pcm16_encode(samples)), samples)

    def test_pcm16_odd_stream_rejected(self):
        with pytest.raises(PeripheralError):
            pcm16_decode(b"\x00\x01\x02")

    def test_pcm16_wrong_dtype_rejected(self):
        with pytest.raises(PeripheralError):
            pcm16_encode(np.zeros(4, dtype=np.float32))

    def test_mulaw_compresses_to_one_byte(self):
        samples = np.zeros(100, dtype=np.int16)
        assert len(mulaw_encode(samples)) == 100

    def test_mulaw_round_trip_error_bounded(self):
        rng = np.random.default_rng(0)
        samples = (rng.normal(0, 8000, 1000)).clip(-32768, 32767).astype(np.int16)
        decoded = mulaw_decode(mulaw_encode(samples))
        # µ-law is logarithmic: SNR should be decent on speech-level signals.
        err = np.abs(decoded.astype(int) - samples.astype(int))
        assert np.median(err) < 600

    @given(st.lists(st.integers(-32000, 32000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_mulaw_monotone_sign(self, values):
        samples = np.array(values, dtype=np.int16)
        decoded = mulaw_decode(mulaw_encode(samples))
        big = np.abs(samples) > 1000
        assert np.all(np.sign(decoded[big]) == np.sign(samples[big]))


class TestMicrophone:
    def test_reads_from_source(self):
        mic = DigitalMicrophone(BufferSource(np.arange(8, dtype=np.int16)))
        assert list(mic.read_frames(4)) == [0, 1, 2, 3]
        assert mic.frames_read == 4

    def test_power_off_silences(self):
        mic = DigitalMicrophone(ToneSource())
        mic.power_off()
        assert not np.any(mic.read_frames(100))
        mic.power_on()
        assert np.any(mic.read_frames(100))

    def test_swap_source(self):
        mic = DigitalMicrophone(SilenceSource())
        mic.swap_source(BufferSource(np.array([7], dtype=np.int16)))
        assert mic.read_frames(1)[0] == 7

    def test_negative_read_rejected(self):
        mic = DigitalMicrophone(SilenceSource())
        with pytest.raises(PeripheralError):
            mic.read_frames(-1)


class TestCamera:
    def test_frame_shape(self):
        cam = Camera(SyntheticScene(SimRng(1)), width=32, height=24)
        frame = cam.capture_frame()
        assert frame.shape == (24, 32)
        assert frame.dtype == np.uint8

    def test_scene_labels(self):
        scene = SyntheticScene(SimRng(2), person_probability=1.0)
        cam = Camera(scene)
        cam.capture_frame()
        assert scene.last_label == "person"
        scene2 = SyntheticScene(SimRng(2), person_probability=0.0)
        Camera(scene2).capture_frame()
        assert scene2.last_label == "empty_room"

    def test_person_frames_brighter(self):
        bright = SyntheticScene(SimRng(3), person_probability=1.0)
        dark = SyntheticScene(SimRng(3), person_probability=0.0)
        b = Camera(bright).capture_frame().mean()
        d = Camera(dark).capture_frame().mean()
        assert b > d

    def test_power_off(self):
        cam = Camera(SyntheticScene(SimRng(1)))
        cam.powered = False
        assert not np.any(cam.capture_frame())

    def test_bad_dimensions(self):
        with pytest.raises(PeripheralError):
            Camera(SyntheticScene(SimRng(1)), width=0)


class TestDma:
    def test_fifo_to_nonsecure_memory(self, machine):
        from tests.test_peripherals_i2s import enable, make_controller, wire

        ctrl = make_controller()
        ctrl.clock = machine.clock
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(8)
        dma = DmaEngine(machine)
        dest = machine.ns_allocator.alloc(64)
        moved = dma.fifo_to_memory(ctrl, dest, 8, World.NORMAL)
        assert moved == 8
        assert dma.words_moved == 8
        data = machine.memory.read(dest, 32, World.NORMAL)
        assert len(data) == 32

    def test_nonsecure_dma_blocked_from_secure_target(self, machine):
        from tests.test_peripherals_i2s import enable, make_controller, wire

        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(4)
        dma = DmaEngine(machine)
        dest = machine.secure_allocator.alloc(64)
        with pytest.raises(SecureAccessViolation):
            dma.fifo_to_memory(ctrl, dest, 4, World.NORMAL)

    def test_secure_dma_reaches_secure_target(self, machine):
        from tests.test_peripherals_i2s import enable, make_controller, wire

        ctrl = make_controller()
        wire(ctrl)
        enable(ctrl)
        ctrl.capture(4)
        dma = DmaEngine(machine)
        dest = machine.secure_allocator.alloc(64)
        assert dma.fifo_to_memory(ctrl, dest, 4, World.SECURE) == 4


class TestMmioMux:
    class Probe(MmioHandler):
        def __init__(self):
            self.calls = []

        def mmio_read(self, offset, size):
            self.calls.append(("r", offset, size))
            return b"\x00" * size

        def mmio_write(self, offset, data):
            self.calls.append(("w", offset, data))

    def test_routing_subtracts_window_base(self):
        mux = MmioMux()
        probe = self.Probe()
        mux.claim("dev", 0x100, 0x100, probe)
        mux.mmio_read(0x104, 4)
        assert probe.calls == [("r", 4, 4)]

    def test_overlap_rejected(self):
        mux = MmioMux()
        mux.claim("a", 0x0, 0x100, self.Probe())
        with pytest.raises(ValueError):
            mux.claim("b", 0x80, 0x100, self.Probe())

    def test_unclaimed_offset_faults(self):
        mux = MmioMux()
        mux.claim("a", 0x0, 0x10, self.Probe())
        with pytest.raises(InvalidAddressError):
            mux.mmio_read(0x20, 4)

    def test_window_base_lookup(self):
        mux = MmioMux()
        mux.claim("a", 0x40, 0x10, self.Probe())
        assert mux.window_base("a") == 0x40
        with pytest.raises(InvalidAddressError):
            mux.window_base("zzz")
