"""Unit tests: signed TA loading."""

import pytest

from repro.errors import TeeSecurityError
from repro.optee.os import OpTeeOs
from repro.optee.signing import sign_ta, ta_image_digest, verify_ta
from repro.optee.supplicant import TeeSupplicant
from repro.optee.ta import TrustedApplication

SIGNING_KEY = b"ta-vendor-signing-key-0123456789"


class GoodTa(TrustedApplication):
    NAME = "ta.signed-good"

    def on_invoke(self, session, cmd, params):
        return "ok"


class OtherTa(TrustedApplication):
    NAME = "ta.signed-other"

    def on_invoke(self, session, cmd, params):
        return "other"


@pytest.fixture
def secure_tee(machine):
    tee = OpTeeOs(machine, ta_verification_key=SIGNING_KEY)
    tee.attach_supplicant(TeeSupplicant(machine))
    return tee


class TestImageDigest:
    def test_stable(self):
        assert ta_image_digest(GoodTa) == ta_image_digest(GoodTa)

    def test_distinct_tas_distinct_digests(self):
        assert ta_image_digest(GoodTa) != ta_image_digest(OtherTa)

    def test_factory_built_ta_digest_covers_closure(self, provisioned):
        """TAs from factories (model baked into the closure) are signable,
        and different bundles give different images."""
        from repro.core.ta_filter import make_audio_filter_ta
        from repro.optee.uuid import TaUuid
        from repro.sim.rng import SimRng

        def build(port):
            return make_audio_filter_ta(
                provisioned.bundle, TaUuid.from_name("pta.x"),
                "host", port, b"\x00" * 256, SimRng(1),
            )

        assert ta_image_digest(build(443)) != ta_image_digest(build(8443))


class TestSignedLoading:
    def test_signed_ta_loads_and_runs(self, secure_tee, machine):
        from repro.optee.params import Params
        from repro.tz.monitor import SmcFunction

        signature = sign_ta(GoodTa, SIGNING_KEY)
        uuid = secure_tee.install_ta(GoodTa, signature=signature)
        sid = machine.monitor.smc(
            SmcFunction.CALL_WITH_ARG,
            {"op": "open_session", "uuid": uuid, "params": Params()},
        )
        assert machine.monitor.smc(
            SmcFunction.CALL_WITH_ARG,
            {"op": "invoke", "session": sid, "cmd": 1, "params": Params()},
        ) == "ok"

    def test_unsigned_ta_rejected(self, secure_tee):
        with pytest.raises(TeeSecurityError, match="no signature"):
            secure_tee.install_ta(GoodTa)

    def test_wrong_key_rejected(self, secure_tee):
        forged = sign_ta(GoodTa, b"attacker-key-00000000000000000!!")
        with pytest.raises(TeeSecurityError, match="verification"):
            secure_tee.install_ta(GoodTa, signature=forged)

    def test_signature_not_transferable_between_tas(self, secure_tee):
        signature = sign_ta(GoodTa, SIGNING_KEY)
        with pytest.raises(TeeSecurityError):
            secure_tee.install_ta(OtherTa, signature=signature)

    def test_verification_disabled_by_default(self, machine):
        tee = OpTeeOs(machine)
        tee.install_ta(GoodTa)  # no signature needed

    def test_verify_ta_direct(self):
        signature = sign_ta(GoodTa, SIGNING_KEY)
        verify_ta(GoodTa, signature, SIGNING_KEY)  # no raise
        with pytest.raises(TeeSecurityError):
            verify_ta(GoodTa, b"garbage", SIGNING_KEY)


class TestSignedPipeline:
    def test_secure_pipeline_on_verified_platform(self, provisioned):
        """End to end with signed-TA loading enforced platform-wide."""
        from repro.core.pipeline import SecurePipeline
        from repro.core.platform import IotPlatform
        from tests.test_core_pipeline import MIXED, make_workload

        platform = IotPlatform.create(
            seed=601, ta_verification_key=SIGNING_KEY
        )
        pipeline = SecurePipeline(
            platform, provisioned.bundle, ta_signing_key=SIGNING_KEY
        )
        run = pipeline.process(make_workload(provisioned, MIXED[:2]))
        assert len(run) == 2

    def test_unsigned_pipeline_rejected_on_verified_platform(self, provisioned):
        from repro.core.pipeline import SecurePipeline
        from repro.core.platform import IotPlatform

        platform = IotPlatform.create(
            seed=602, ta_verification_key=SIGNING_KEY
        )
        with pytest.raises(TeeSecurityError):
            SecurePipeline(platform, provisioned.bundle)
