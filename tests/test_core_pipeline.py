"""Integration tests: the secure pipeline (Fig. 1) end to end."""

import numpy as np
import pytest

from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.ta_filter import CMD_HEARTBEAT
from repro.core.workload import UtteranceWorkload
from repro.ml.dataset import Corpus, SensitiveCategory, Utterance
from repro.sim.clock import CycleDomain


def make_workload(provisioned, texts_and_categories):
    corpus = Corpus(
        [Utterance(text=t, category=c) for t, c in texts_and_categories]
    )
    return UtteranceWorkload.from_corpus(corpus, provisioned.bundle.vocoder)


MIXED = [
    ("what is the weather like today", SensitiveCategory.WEATHER),
    ("the password for the email is four two seven one",
     SensitiveCategory.CREDENTIALS),
    ("set a timer for ten minutes", SensitiveCategory.TIMER),
    ("my diabetes has been getting worse lately", SensitiveCategory.HEALTH),
]


@pytest.fixture
def secure_run(provisioned):
    platform = IotPlatform.create(seed=31)
    pipeline = SecurePipeline(platform, provisioned.bundle)
    workload = make_workload(provisioned, MIXED)
    run = pipeline.process(workload)
    return platform, pipeline, workload, run


class TestDataPath:
    def test_all_utterances_processed(self, secure_run):
        _, _, workload, run = secure_run
        assert len(run) == len(workload)

    def test_transcripts_recovered(self, secure_run):
        _, _, _, run = secure_run
        for result in run.results:
            assert result.transcript == result.utterance.text

    def test_sensitive_filtered_benign_forwarded(self, secure_run):
        platform, _, _, run = secure_run
        for result in run.results:
            if result.utterance.sensitive:
                assert not result.forwarded
            else:
                assert result.forwarded
        received = platform.cloud.received_transcripts
        assert "what is the weather like today" in received
        assert all("password" not in t for t in received)

    def test_stage_cycles_reported(self, secure_run):
        _, _, _, run = secure_run
        for stage in ("capture", "asr", "classify", "relay"):
            assert run.stage_cycles.get(stage, 0) > 0
        # Capture (real-time audio) dominates end-to-end latency.
        assert run.stage_cycles["capture"] > run.stage_cycles["classify"]

    def test_latency_positive_and_attributed(self, secure_run):
        _, _, _, run = secure_run
        for result in run.results:
            assert result.latency_cycles > 0
            assert result.energy_mj > 0
            assert CycleDomain.SECURE_CPU in result.domain_cycles
            assert CycleDomain.MONITOR in result.domain_cycles

    def test_driver_runs_in_secure_world(self, secure_run):
        platform, pipeline, _, _ = secure_run
        assert pipeline.pta.driver is not None
        from repro.tz.worlds import World

        assert pipeline.pta.driver.host.world is World.SECURE

    def test_controller_mmio_secured(self, secure_run):
        platform, _, _, _ = secure_run
        from repro.errors import SecureAccessViolation
        from repro.tz.worlds import World

        with pytest.raises(SecureAccessViolation):
            platform.machine.memory.read(
                platform.i2s_region.base, 4, World.NORMAL
            )

    def test_world_switches_happened(self, secure_run):
        platform, _, workload, _ = secure_run
        # At least 2 switches per utterance (one SMC round trip each),
        # plus relay RPCs.
        assert platform.machine.cpu.switch_count >= 2 * len(workload)

    def test_classifier_accuracy_on_path(self, secure_run):
        _, _, _, run = secure_run
        assert run.classifier_accuracy() == 1.0


class TestTaInterface:
    def test_heartbeat(self, provisioned):
        platform = IotPlatform.create(seed=32)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:1])
        pipeline.process(workload)
        directive = pipeline.session.invoke(CMD_HEARTBEAT)
        assert directive["directive"] == "Ack"

    def test_model_lands_in_secure_heap(self, provisioned):
        platform = IotPlatform.create(seed=33)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        workload = make_workload(provisioned, MIXED[:1])
        pipeline.process(workload)
        assert platform.tee.heap.used_bytes >= (
            provisioned.bundle.model_size_bytes
        )

    def test_model_too_big_for_heap_fails_loudly(self, provisioned):
        """Paper Section V: the TEE memory budget is a hard constraint."""
        from repro.errors import TeeOutOfMemory
        from repro.tz.machine import MachineConfig

        config = MachineConfig(secure_heap_bytes=64 * 1024)  # tiny heap
        platform = IotPlatform.create(machine_config=config)
        with pytest.raises(TeeOutOfMemory):
            SecurePipeline(platform, provisioned.bundle)

    def test_close_releases_session(self, provisioned):
        platform = IotPlatform.create(seed=34)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        pipeline.process(make_workload(provisioned, MIXED[:1]))
        pipeline.close()
        assert pipeline.session.closed

    def test_close_stops_secure_capture(self, provisioned):
        """TA teardown must wind the PTA capture chain all the way down
        (STOP + CLOSE), not leave the secure driver capturing forever."""
        platform = IotPlatform.create(seed=36)
        pipeline = SecurePipeline(platform, provisioned.bundle)
        pipeline.process(make_workload(provisioned, MIXED[:1]))
        driver = pipeline.pta.driver
        assert driver.state == "capturing"  # armed between utterances
        pipeline.close()
        assert driver.state == "idle"


class TestMinimizedDriverDeployment:
    def test_pipeline_works_with_minimized_driver(self, provisioned):
        """Trace the task baseline-side, strip, deploy secure-side."""
        from repro.drivers.i2s_driver import I2sDriver
        from repro.tcb.analyze import TcbAnalyzer
        from tests.test_tcb import build_rig, trace_record_task

        _, kernel, _, _ = build_rig()
        session = trace_record_task(kernel)
        plan = TcbAnalyzer(I2sDriver).analyze(
            [session], task="record",
            always_keep=frozenset({"irq_handler", "_handle_overrun"}),
        )

        platform = IotPlatform.create(seed=35)
        pipeline = SecurePipeline(
            platform, provisioned.bundle,
            driver_compiled_out=plan.compiled_out,
        )
        workload = make_workload(provisioned, MIXED)
        run = pipeline.process(workload)
        assert len(run) == len(MIXED)
        for result in run.results:
            assert result.transcript == result.utterance.text
        # The deployed TCB is genuinely smaller.
        assert pipeline.tcb_loc() < I2sDriver.total_loc()
