"""Unit tests: vocoder, matched-filter ASR, WER channel and metric."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MlError
from repro.ml.asr import (
    GAP_SAMPLES,
    SAMPLES_PER_WORD,
    WORD_STRIDE,
    MatchedFilterAsr,
    NoisyChannel,
    SpeechVocoder,
    word_error_rate,
)
from repro.sim.rng import SimRng

VOCAB = ["alexa", "play", "music", "password", "is", "seven", "doctor",
         "transfer", "dollars", "weather", "today", "the"]


@pytest.fixture(scope="module")
def voc():
    return SpeechVocoder(VOCAB)


@pytest.fixture(scope="module")
def asr_small(voc):
    return MatchedFilterAsr(voc)


class TestVocoder:
    def test_render_length(self, voc):
        pcm = voc.render("play music today")
        assert len(pcm) == 3 * WORD_STRIDE
        assert pcm.dtype == np.int16

    def test_duration_helper(self, voc):
        assert voc.duration_samples("play music") == len(voc.render("play music"))

    def test_unknown_word_rejected(self, voc):
        with pytest.raises(MlError):
            voc.render("xylophone")

    def test_empty_text(self, voc):
        assert len(voc.render("")) == 0

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(MlError):
            SpeechVocoder([])

    def test_words_have_distinct_waveforms(self, voc):
        a = voc.render("play")[:SAMPLES_PER_WORD].astype(np.float64)
        b = voc.render("music")[:SAMPLES_PER_WORD].astype(np.float64)
        corr = np.abs(np.dot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-9)
        assert corr < 0.5

    def test_gap_is_silent(self, voc):
        pcm = voc.render("play")
        assert not np.any(pcm[SAMPLES_PER_WORD:])

    def test_normalization_applied(self, voc):
        pcm = voc.render("Play, MUSIC!")
        assert np.array_equal(pcm, voc.render("play music"))


class TestAsr:
    def test_clean_round_trip(self, voc, asr_small):
        text = "transfer seven dollars the password is seven"
        assert asr_small.transcribe(voc.render(text)) == text

    def test_every_vocab_word_decodes(self, voc, asr_small):
        for word in VOCAB:
            assert asr_small.transcribe(voc.render(word)) == word

    def test_silence_decodes_to_nothing(self, asr_small):
        assert asr_small.transcribe(np.zeros(4000, dtype=np.int16)) == ""

    def test_noise_only_below_threshold(self, asr_small):
        rng = np.random.default_rng(0)
        noise = (rng.normal(0, 400, 4000)).astype(np.int16)
        assert asr_small.transcribe(noise) == ""

    def test_moderate_noise_tolerated(self, voc, asr_small):
        rng = np.random.default_rng(1)
        text = "play music today"
        pcm = voc.render(text).astype(np.int32)
        noisy = (pcm + rng.normal(0, 1500, len(pcm)).astype(np.int32)).clip(
            -32768, 32767
        ).astype(np.int16)
        assert word_error_rate(text, asr_small.transcribe(noisy)) < 0.4

    def test_heavy_noise_degrades(self, voc, asr_small):
        """WER grows with noise — the natural acoustic channel."""
        rng = np.random.default_rng(2)
        text = "transfer seven dollars doctor is the weather today play music"
        pcm = voc.render(text).astype(np.int32)
        wers = []
        for sigma in (0, 4000, 12000):
            noisy = (pcm + rng.normal(0, sigma, len(pcm)).astype(np.int32)).clip(
                -32768, 32767
            ).astype(np.int16)
            wers.append(word_error_rate(text, asr_small.transcribe(noisy)))
        assert wers[0] == 0.0
        assert wers[2] >= wers[1] >= wers[0]

    def test_requires_int16(self, asr_small):
        with pytest.raises(MlError):
            asr_small.transcribe(np.zeros(100, dtype=np.float32))

    def test_alignment_recovers_shifted_segment(self, voc, asr_small):
        """A VAD-style cut (arbitrary leading silence) must still decode."""
        text = "transfer seven dollars"
        pcm = voc.render(text)
        for lead in (37, 111, 250, 399):
            shifted = np.concatenate(
                [np.zeros(lead, dtype=np.int16), pcm]
            )
            assert asr_small.transcribe(shifted) == text

    def test_align_false_fails_on_shift(self, voc, asr_small):
        """Documents why alignment matters: naive decode garbles shifts."""
        text = "transfer seven dollars"
        shifted = np.concatenate(
            [np.zeros(170, dtype=np.int16), voc.render(text)]
        )
        assert asr_small.transcribe(shifted, align=False) != text

    def test_clipped_tail_recoverable_with_slack(self, voc, asr_small):
        """A tail clipped mid-gap still decodes (the last word is whole)."""
        text = "play music today"
        pcm = voc.render(text)[:-60]  # clip into the final gap
        assert asr_small.transcribe(pcm) == text

    def test_macs_positive(self, asr_small):
        assert asr_small.macs_per_second() > 0


class TestNoisyChannel:
    def test_zero_wer_is_identity(self, voc):
        channel = NoisyChannel(SimRng(1), 0.0, voc.vocabulary)
        text = "play music today"
        assert channel.corrupt(text) == text

    def test_full_wer_changes_everything(self, voc):
        channel = NoisyChannel(SimRng(1), 1.0, voc.vocabulary)
        text = "play music today play music today"
        assert word_error_rate(text, channel.corrupt(text)) > 0.5

    def test_target_rate_approximate(self, voc):
        channel = NoisyChannel(SimRng(3), 0.3, voc.vocabulary)
        text = " ".join(["play"] * 400)
        measured = word_error_rate(text, channel.corrupt(text))
        assert 0.2 < measured < 0.4

    def test_bad_rate_rejected(self, voc):
        with pytest.raises(MlError):
            NoisyChannel(SimRng(1), 1.5, voc.vocabulary)


class TestWordErrorRate:
    def test_identical(self):
        assert word_error_rate("a b c", "a b c") == 0.0

    def test_substitution(self):
        assert word_error_rate("a b c", "a x c") == pytest.approx(1 / 3)

    def test_deletion(self):
        assert word_error_rate("a b c", "a c") == pytest.approx(1 / 3)

    def test_insertion(self):
        assert word_error_rate("a b", "a x b") == pytest.approx(1 / 2)

    def test_empty_reference(self):
        assert word_error_rate("", "") == 0.0
        assert word_error_rate("", "x") == 1.0

    def test_case_insensitive(self):
        assert word_error_rate("Hello World", "hello world") == 0.0

    @given(st.lists(st.sampled_from(VOCAB), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_property_wer_zero_iff_equal(self, words):
        text = " ".join(words)
        assert word_error_rate(text, text) == 0.0

    @given(
        st.lists(st.sampled_from(VOCAB), min_size=1, max_size=8),
        st.lists(st.sampled_from(VOCAB), min_size=0, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_wer_nonnegative(self, ref, hyp):
        assert word_error_rate(" ".join(ref), " ".join(hyp)) >= 0.0


class TestEndToEndVocoderAsr:
    @given(st.lists(st.sampled_from(VOCAB), min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_property_clean_channel_is_lossless(self, words):
        voc = SpeechVocoder(VOCAB)
        asr = MatchedFilterAsr(voc)
        text = " ".join(words)
        assert asr.transcribe(voc.render(text)) == text
