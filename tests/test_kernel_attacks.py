"""Unit tests: attack model mechanics (beyond the integration assertions)."""

import pytest

from repro.kernel.attacks import (
    AttackResult,
    BufferSnoopAttack,
    MemoryScanner,
    WireEavesdropper,
)
from repro.optee.supplicant import NetworkService
from repro.tz.worlds import World


class TestAttackResult:
    def test_success_requires_nonempty_capture(self):
        assert not AttackResult().succeeded
        assert not AttackResult(captured=[b""]).succeeded
        assert AttackResult(captured=[b"x"]).succeeded

    def test_bytes_captured(self):
        result = AttackResult(captured=[b"ab", b"cde"])
        assert result.bytes_captured == 5


class TestBufferSnoop:
    def test_mixed_targets(self, machine):
        ns = machine.ns_allocator.alloc(64)
        machine.memory.write(ns, b"public data here", World.NORMAL)
        secure = machine.secure_allocator.alloc(64)
        attack = BufferSnoopAttack(machine)
        result = attack.run([(ns, 16), (secure, 16)])
        assert result.attempted == 2
        assert result.violations == 1
        assert result.captured == [b"public data here"]

    def test_no_targets(self, machine):
        result = BufferSnoopAttack(machine).run([])
        assert not result.succeeded
        assert result.attempted == 0

    def test_attack_is_traced(self, machine):
        BufferSnoopAttack(machine).run([(machine.dram_ns.base, 4)])
        assert machine.trace.count("attack.snoop") == 1


class TestMemoryScanner:
    def test_finds_planted_pattern(self, machine):
        addr = machine.ns_allocator.alloc(64)
        machine.memory.write(addr, b"NEEDLE-0xDEADBEEF", World.NORMAL)
        scanner = MemoryScanner(machine, charge_scan=False)
        result = scanner.scan(b"NEEDLE-0xDEADBEEF")
        assert result.succeeded
        assert result.captured == [b"NEEDLE-0xDEADBEEF"]

    def test_finds_multiple_occurrences(self, machine):
        a = machine.ns_allocator.alloc(64)
        b = machine.ns_allocator.alloc(64)
        for addr in (a, b):
            machine.memory.write(addr, b"DUP!", World.NORMAL)
        result = MemoryScanner(machine, charge_scan=False).scan(b"DUP!")
        assert len(result.captured) == 2

    def test_secure_plant_invisible(self, machine):
        addr = machine.secure_allocator.alloc(64)
        machine.memory.write(addr, b"TOPSECRET", World.SECURE)
        result = MemoryScanner(machine, charge_scan=False).scan(b"TOPSECRET")
        assert not result.succeeded
        assert result.violations >= 2  # dram_secure + secure_heap probes

    def test_empty_pattern_rejected(self, machine):
        with pytest.raises(ValueError):
            MemoryScanner(machine).scan(b"")

    def test_charged_scan_advances_time(self, machine):
        before = machine.clock.now
        MemoryScanner(machine, charge_scan=True).scan(b"anything")
        # Scanning 256 MiB of DRAM costs real simulated time.
        assert machine.clock.now - before > 1_000_000

    def test_device_regions_skipped(self, machine):
        result = MemoryScanner(machine, charge_scan=False).scan(b"zzz")
        # mmio is a device region: neither captured from nor faulted on.
        assert result.attempted == len(
            [r for r in machine.memory.regions() if not r.device]
        )


class TestWireEavesdropper:
    def _net_with_traffic(self, payloads):
        net = NetworkService()

        class Sink:
            def receive(self, data):
                return b"ok"

        net.register_endpoint("h", 1, Sink())
        for p in payloads:
            net.call("send", "h", 1, p)
        return net

    def test_captures_everything(self):
        net = self._net_with_traffic([b"one", b"two"])
        result = WireEavesdropper(net).run()
        assert result.captured == [b"one", b"two"]

    def test_plaintext_hits(self):
        net = self._net_with_traffic([b'{"transcript": "my password is x"}'])
        eaves = WireEavesdropper(net)
        assert eaves.plaintext_hits([b"password", b"absent"]) == 1

    def test_empty_needles_ignored(self):
        net = self._net_with_traffic([b"data"])
        assert WireEavesdropper(net).plaintext_hits([b""]) == 0
