"""Unit + acceptance tests: SLO rules, watchdog, flight recorder.

The acceptance path (mirrors the issue's criterion): run a device with a
flight recorder attached, evaluate an impossible SLO, and check the
dumped JSONL contains the pipeline-stage spans that led up to the
violation.
"""

import json

import pytest

from repro.obs.health import (
    FlightRecorder,
    HealthMonitor,
    SloRule,
    Watchdog,
    default_slo_rules,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer
from repro.sim.clock import CycleDomain, SimClock


class TestSloRule:
    def test_counter_resolution(self):
        reg = MetricsRegistry()
        reg.inc("errors", 3)
        rule = SloRule("errs", metric="errors", op="<=", threshold=5)
        ev = rule.evaluate(reg)
        assert ev.value == 3 and ev.ok

    def test_gauge_resolution_when_no_counter(self):
        reg = MetricsRegistry()
        reg.set("depth", 7)
        rule = SloRule("depth", metric="depth", op="<=", threshold=4)
        ev = rule.evaluate(reg)
        assert ev.value == 7 and not ev.ok

    def test_quantile_resolution(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("lat", v)
        rule = SloRule("p99", metric="lat", quantile=0.99, op="<=",
                       threshold=50)
        ev = rule.evaluate(reg)
        assert ev.value >= 99 and not ev.ok

    def test_ratio_resolution(self):
        reg = MetricsRegistry()
        reg.inc("sent", 9)
        reg.inc("forwarded", 10)
        rule = SloRule("success", metric="sent", denominator="forwarded",
                       op=">=", threshold=0.9)
        ev = rule.evaluate(reg)
        assert ev.value == pytest.approx(0.9) and ev.ok

    def test_zero_denominator_means_no_violation(self):
        rule = SloRule("success", metric="sent", denominator="forwarded",
                       op=">=", threshold=0.9)
        assert rule.measure(MetricsRegistry()) == 1.0

    def test_missing_metric_is_no_data_not_zero(self):
        reg = MetricsRegistry()
        rule = SloRule("typo", metric="no.such.metric", op="<=", threshold=5)
        assert rule.measure(reg) is None
        ev = rule.evaluate(reg)
        assert not ev.ok and ev.missing
        assert ev.to_doc()["missing"] is True

    def test_missing_histogram_is_no_data(self):
        reg = MetricsRegistry()
        rule = SloRule("typo", metric="no.such.hist", quantile=0.99,
                       op="<=", threshold=5)
        assert rule.measure(reg) is None
        assert rule.evaluate(reg).missing

    def test_measure_never_creates_metrics(self):
        reg = MetricsRegistry()
        SloRule("g", metric="ghost", op="<=", threshold=1).evaluate(reg)
        SloRule("h", metric="ghost.h", quantile=0.5, op="<=",
                threshold=1).evaluate(reg)
        SloRule("r", metric="ghost.n", denominator="ghost.d", op=">=",
                threshold=0.9).evaluate(reg)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_battery_drain_rule_is_histogram_backed(self):
        # An intensive gauge would sum to devices-times the true value
        # under registry merge; the stock rule reads the mergeable
        # per-utterance energy histogram instead.
        rule = next(r for r in default_slo_rules()
                    if r.name == "battery_drain")
        assert rule.metric == "fleet.e2e_energy_mj"
        assert rule.quantile is not None
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            for _ in range(10):
                reg.observe("fleet.e2e_energy_mj", 100.0)
        a.merge(b)
        assert rule.evaluate(a).value == pytest.approx(100.0)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            SloRule("r", metric="m", op="<", threshold=1)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            SloRule("r", metric="m", op="<=", threshold=1, quantile=1.5)

    def test_default_rules_cover_the_fleet_namespace(self):
        rules = default_slo_rules()
        assert {r.name for r in rules} == {
            "p99_latency", "relay_success", "queue_depth", "battery_drain",
            "recovery_time", "shed_rate", "admission_latency",
        }
        # Fleet rules read fleet.*; the recovery budget reads the tee.*
        # namespace and the admission budget the cloud.* namespace, each
        # gated on its condition actually having happened.
        for r in rules:
            if r.name == "recovery_time":
                assert r.metric.startswith("tee.")
                assert r.gate == "tee.restarts"
            elif r.name == "admission_latency":
                assert r.metric.startswith("cloud.")
                assert r.gate == "cloud.ingest.accepted"
            elif r.name == "shed_rate":
                assert r.metric.startswith("fleet.")
                assert r.gate == "fleet.relay.shed"
            else:
                assert r.metric.startswith("fleet.")
                assert r.gate is None


class TestWatchdog:
    def _tracer_with_span(self, clock):
        tracer = SpanTracer(clock)
        with tracer.span("asr", "stage.secure"):
            clock.advance(100, CycleDomain.SECURE_CPU)
        return tracer

    def test_fresh_heartbeat_is_quiet(self):
        clock = SimClock()
        tracer = self._tracer_with_span(clock)
        assert Watchdog(tracer, clock, stall_cycles=1_000).check() == []

    def test_stalled_category_flagged(self):
        clock = SimClock()
        tracer = self._tracer_with_span(clock)
        clock.advance(5_000, CycleDomain.NORMAL_CPU)
        alerts = Watchdog(tracer, clock, stall_cycles=1_000).check()
        assert [a.category for a in alerts] == ["stage"]
        assert alerts[0].idle_cycles == 5_000
        assert alerts[0].last_seen_cycle == 100

    def test_empty_tracer_reports_sentinel(self):
        clock = SimClock()
        alerts = Watchdog(SpanTracer(clock), clock).check()
        assert [a.category for a in alerts] == ["(no spans)"]

    def test_nonpositive_stall_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            Watchdog(SpanTracer(clock), clock, stall_cycles=0)


class TestFlightRecorder:
    def _closed_spans(self, n):
        clock = SimClock()
        tracer = SpanTracer(clock)
        for i in range(n):
            with tracer.span(f"s{i}", "stage.secure"):
                clock.advance(10, CycleDomain.SECURE_CPU)
        return tracer.spans

    def test_ring_keeps_only_the_newest(self):
        rec = FlightRecorder(capacity=3)
        for sp in self._closed_spans(5):
            rec.record(sp)
        assert len(rec) == 3
        assert [sp.name for sp in rec.spans()] == ["s2", "s3", "s4"]

    def test_records_even_when_retention_disabled(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        tracer.enabled = False
        rec = FlightRecorder()
        tracer.attach_recorder(rec)
        with tracer.span("asr", "stage.secure"):
            clock.advance(10, CycleDomain.SECURE_CPU)
        assert tracer.spans == []  # retention off...
        assert len(rec) == 1      # ...but the black box still saw it.

    def test_dump_is_span_schema_jsonl(self):
        rec = FlightRecorder()
        for sp in self._closed_spans(2):
            rec.record(sp)
        docs = [json.loads(line) for line in rec.dump_jsonl().splitlines()]
        assert [d["name"] for d in docs] == ["s0", "s1"]
        assert all(d["category"] == "stage.secure" for d in docs)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestHealthMonitor:
    def test_all_green(self):
        reg = MetricsRegistry()
        reg.inc("errors", 0)
        rules = [SloRule("errs", metric="errors", op="<=", threshold=1)]
        report = HealthMonitor(reg, rules).evaluate()
        assert report.ok and report.violations == []
        assert report.to_doc()["ok"] is True

    def test_violation_without_recorder_has_no_dump(self):
        reg = MetricsRegistry()
        reg.inc("errors", 9)
        rules = [SloRule("errs", metric="errors", op="<=", threshold=1)]
        report = HealthMonitor(reg, rules).evaluate()
        assert not report.ok
        assert report.flight_dump is None

    def test_violation_triggers_dump_and_file(self, tmp_path):
        clock = SimClock()
        tracer = SpanTracer(clock)
        rec = FlightRecorder()
        tracer.attach_recorder(rec)
        with tracer.span("asr", "stage.secure"):
            clock.advance(10, CycleDomain.SECURE_CPU)
        reg = MetricsRegistry()
        reg.inc("errors", 9)
        rules = [SloRule("errs", metric="errors", op="<=", threshold=1)]
        dump = tmp_path / "alerts" / "flight.jsonl"
        report = HealthMonitor(reg, rules, recorder=rec).evaluate(
            dump_path=dump
        )
        assert not report.ok
        assert report.flight_dump is not None
        assert dump.exists()
        assert json.loads(dump.read_text().splitlines()[0])["name"] == "asr"

    def test_table_marks_violations(self):
        reg = MetricsRegistry()
        reg.inc("errors", 9)
        rules = [SloRule("errs", metric="errors", op="<=", threshold=1)]
        assert "VIOLATED" in HealthMonitor(reg, rules).evaluate().table()

    def test_table_marks_missing_metrics_as_no_data(self):
        rules = [SloRule("typo", metric="no.such", op="<=", threshold=1)]
        report = HealthMonitor(MetricsRegistry(), rules).evaluate()
        assert not report.ok
        assert "NO DATA" in report.table()

    def test_watchdog_stall_fails_health(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        report = HealthMonitor(
            MetricsRegistry(), rules=[], watchdog=Watchdog(tracer, clock)
        ).evaluate()
        assert not report.ok
        assert "STALLED" in report.table()


class TestAcceptanceFlightRecorderOnSloViolation:
    """Issue criterion: a violated SLO dumps the spans leading up to it."""

    def test_violation_dumps_pipeline_run_up(self, provisioned, tmp_path):
        from repro.obs.fleet import DeviceSpec, simulate_device_runtime

        spec = DeviceSpec(
            device_id="dut", seed=123, utterances=3,
            sensitive_fraction=0.5, fault_profile="clean",
        )
        rec = FlightRecorder(capacity=64)
        runtime = simulate_device_runtime(
            spec, provisioned.bundle, recorder=rec
        )
        device = runtime.report

        # An impossible latency budget: 1 cycle for p99.
        monitor = HealthMonitor(
            device.registry,
            rules=default_slo_rules(latency_budget_cycles=1.0),
            recorder=rec,
            watchdog=Watchdog(
                runtime.machine.obs.tracer, runtime.machine.clock
            ),
        )
        dump = tmp_path / "flight.jsonl"
        report = monitor.evaluate(dump_path=dump)

        assert not report.ok
        assert [e.rule.name for e in report.violations] == ["p99_latency"]
        # The dump holds the run-up: the secure pipeline's stage spans.
        docs = [json.loads(line) for line in dump.read_text().splitlines()]
        names = {d["name"] for d in docs}
        assert {"capture", "asr", "classify", "relay"} <= names
        assert all(d["end"] >= d["start"] for d in docs)
        # Nothing stalled — spans ended just before evaluation.
        assert report.stalled == []
