"""Unit tests: simulation clock."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import CycleDomain, SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(100, CycleDomain.NORMAL_CPU)
        assert clock.now == 100

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(5, CycleDomain.DMA) == 5
        assert clock.advance(7, CycleDomain.DMA) == 12

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1, CycleDomain.NORMAL_CPU)

    def test_zero_advance_is_noop(self):
        clock = SimClock()
        clock.advance(0, CycleDomain.NORMAL_CPU)
        assert clock.now == 0
        assert clock.cycles_in(CycleDomain.NORMAL_CPU) == 0


class TestDomains:
    def test_per_domain_attribution(self):
        clock = SimClock()
        clock.advance(10, CycleDomain.NORMAL_CPU)
        clock.advance(20, CycleDomain.SECURE_CPU)
        clock.advance(30, CycleDomain.NORMAL_CPU)
        assert clock.cycles_in(CycleDomain.NORMAL_CPU) == 40
        assert clock.cycles_in(CycleDomain.SECURE_CPU) == 20
        assert clock.cycles_in(CycleDomain.MONITOR) == 0

    def test_domains_sum_to_total(self):
        clock = SimClock()
        charges = [(13, CycleDomain.DMA), (7, CycleDomain.MONITOR),
                   (29, CycleDomain.PERIPHERAL)]
        for cycles, domain in charges:
            clock.advance(cycles, domain)
        total = sum(clock.cycles_in(d) for d in CycleDomain)
        assert total == clock.now == 49


class TestSeconds:
    def test_seconds_conversion(self):
        clock = SimClock(freq_hz=1e9)
        clock.advance(2_000_000_000, CycleDomain.NORMAL_CPU)
        assert clock.now_seconds == pytest.approx(2.0)

    def test_to_seconds(self):
        clock = SimClock(freq_hz=2e9)
        assert clock.to_seconds(1_000_000) == pytest.approx(0.0005)

    def test_seconds_in_domain(self):
        clock = SimClock(freq_hz=1e9)
        clock.advance(500_000_000, CycleDomain.SECURE_CPU)
        assert clock.seconds_in(CycleDomain.SECURE_CPU) == pytest.approx(0.5)


class TestSnapshot:
    def test_snapshot_delta(self):
        clock = SimClock()
        clock.advance(10, CycleDomain.NORMAL_CPU)
        before = clock.snapshot()
        clock.advance(15, CycleDomain.SECURE_CPU)
        clock.advance(5, CycleDomain.NORMAL_CPU)
        after = clock.snapshot()
        delta = after.delta(before)
        assert delta == {
            CycleDomain.SECURE_CPU: 15,
            CycleDomain.NORMAL_CPU: 5,
        }

    def test_snapshot_is_immutable_view(self):
        clock = SimClock()
        snap = clock.snapshot()
        clock.advance(100, CycleDomain.DMA)
        assert snap.now == 0


class TestListeners:
    def test_listener_invoked(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda d, c: seen.append((d, c)))
        clock.advance(42, CycleDomain.MONITOR)
        assert seen == [(CycleDomain.MONITOR, 42)]

    def test_unsubscribe(self):
        clock = SimClock()
        seen = []
        listener = lambda d, c: seen.append(c)  # noqa: E731
        clock.subscribe(listener)
        clock.advance(1, CycleDomain.IDLE)
        clock.unsubscribe(listener)
        clock.advance(1, CycleDomain.IDLE)
        assert seen == [1]

    def test_unsubscribe_unknown_is_noop(self):
        SimClock().unsubscribe(lambda d, c: None)


class TestReset:
    def test_reset_zeroes_everything(self):
        clock = SimClock()
        clock.advance(99, CycleDomain.NORMAL_CPU)
        clock.reset()
        assert clock.now == 0
        assert clock.cycles_in(CycleDomain.NORMAL_CPU) == 0

    def test_reset_keeps_listeners(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda d, c: seen.append(c))
        clock.reset()
        clock.advance(3, CycleDomain.DMA)
        assert seen == [3]


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
def test_property_time_is_monotonic_and_sums(charges):
    clock = SimClock()
    previous = 0
    for cycles in charges:
        now = clock.advance(cycles, CycleDomain.NORMAL_CPU)
        assert now >= previous
        previous = now
    assert clock.now == sum(charges)
