"""Findings, baselines, and report rendering.

A :class:`Finding` carries rule id, severity, location and a *stable
fingerprint* — ``rule:module:anchor`` — deliberately excluding the line
number, so editing unrelated code does not churn the baseline.  The anchor
names the construct (the imported module, the function whose return leaks,
the offending call) rather than where it currently sits in the file.

The committed baseline (``analysis/baseline.json``) is a list of accepted
fingerprints with reasons.  ``repro analyze --fail-on-new`` fails only on
findings whose fingerprint is not baselined, so CI gates *new* violations
while the accepted debt stays visible in every report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Short rule descriptions for report/SARIF rendering.
_RULE_DESCRIPTIONS = {
    "W000": "module is not assigned to a world in the world map",
    "W001": "secure-world module imports normal-world code",
    "W002": "tainted plaintext-derived data reaches a normal-world sink "
            "or TA entry return without declassification",
    "W003": "tainted data crosses a module boundary into a callee whose "
            "summary reaches a normal-world sink",
    "D001": "ambient RNG/clock use outside the simulation substrate",
    "S001": "secret material handled outside approved secure paths",
    "O001": "restricted package imports the observability package "
            "directly instead of using the facade",
    "T001": "dead-TCB regression against the committed per-driver "
            "baseline",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str        # "W001", "D001", ...
    severity: str    # "error" | "warning"
    module: str      # dotted module name
    path: str        # file path (repo-relative where possible)
    line: int
    anchor: str      # stable construct identifier within the module
    message: str

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}:{self.module}:{self.anchor}"

    def to_doc(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "anchor": self.anchor,
            "fingerprint": self.fingerprint,
            "message": self.message,
        }


@dataclass
class Baseline:
    """Accepted findings, loaded from / saved to JSON."""

    entries: dict[str, str] = field(default_factory=dict)  # fingerprint → reason

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        doc = json.loads(Path(path).read_text())
        entries = {
            e["fingerprint"]: e.get("reason", "") for e in doc.get("findings", [])
        }
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding], reason: str = "") -> "Baseline":
        return cls(entries={f.fingerprint: reason for f in findings})

    def save(self, path: Path) -> None:
        doc = {
            "version": 1,
            "findings": [
                {"fingerprint": fp, "reason": reason}
                for fp, reason in sorted(self.entries.items())
            ],
        }
        Path(path).write_text(json.dumps(doc, indent=2) + "\n")

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def stale_entries(self, findings: list[Finding]) -> list[str]:
        """Baselined fingerprints no longer produced — candidates to drop."""
        live = {f.fingerprint for f in findings}
        return sorted(fp for fp in self.entries if fp not in live)


@dataclass
class AnalysisReport:
    """All findings of one run, split against a baseline."""

    findings: list[Finding]
    baseline: Baseline | None = None

    @property
    def new_findings(self) -> list[Finding]:
        if self.baseline is None:
            return list(self.findings)
        return [f for f in self.findings if not self.baseline.suppresses(f)]

    @property
    def suppressed(self) -> list[Finding]:
        if self.baseline is None:
            return []
        return [f for f in self.findings if self.baseline.suppresses(f)]

    @property
    def stale(self) -> list[str]:
        if self.baseline is None:
            return []
        return self.baseline.stale_entries(self.findings)

    def by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_doc(self) -> dict:
        return {
            "findings": [f.to_doc() for f in self.findings],
            "new": [f.to_doc() for f in self.new_findings],
            "suppressed": len(self.suppressed),
            "stale_baseline_entries": self.stale,
            "by_rule": self.by_rule(),
        }

    def to_sarif(self) -> dict:
        """SARIF 2.1.0 document for code-scanning upload.

        Findings keep their stable fingerprint as a partial fingerprint
        (so annotations track across line churn the same way the baseline
        does) and baselined findings carry a ``suppressions`` entry with
        the accepted reason, which code-scanning renders as dismissed.
        """
        rules = []
        for rule_id in sorted({f.rule for f in self.findings}):
            desc = _RULE_DESCRIPTIONS.get(rule_id, "repro static analysis rule")
            rules.append({
                "id": rule_id,
                "shortDescription": {"text": desc},
            })
        results = []
        for f in sorted(
            self.findings, key=lambda x: (x.rule, x.path, x.line, x.anchor)
        ):
            result = {
                "ruleId": f.rule,
                "level": f.severity if f.severity in ("error", "warning")
                else "warning",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(f.line, 1)},
                    },
                }],
                "partialFingerprints": {"repro/v1": f.fingerprint},
            }
            if self.baseline is not None and self.baseline.suppresses(f):
                result["suppressions"] = [{
                    "kind": "external",
                    "justification":
                        self.baseline.entries.get(f.fingerprint, ""),
                }]
            results.append(result)
        return {
            "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                       "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri":
                            "https://example.invalid/repro/analysis",
                        "rules": rules,
                    },
                },
                "results": results,
            }],
        }

    def render_text(self) -> str:
        lines = []
        ordered = sorted(
            self.findings, key=lambda f: (f.rule, f.path, f.line, f.anchor)
        )
        baselined = {f.fingerprint for f in self.suppressed}
        for f in ordered:
            tag = "baseline" if f.fingerprint in baselined else f.severity.upper()
            lines.append(f"{f.path}:{f.line}: {f.rule} [{tag}] {f.message}")
        counts = ", ".join(f"{r}={n}" for r, n in self.by_rule().items()) or "none"
        lines.append("")
        lines.append(
            f"{len(self.findings)} finding(s) ({counts}); "
            f"{len(self.new_findings)} new, {len(self.suppressed)} baselined"
        )
        for fp in self.stale:
            lines.append(f"stale baseline entry (no longer produced): {fp}")
        return "\n".join(lines)
