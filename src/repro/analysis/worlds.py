"""The authoritative secure/normal world partition of the codebase.

The paper's security argument is a *partition*: raw peripheral data lives
only in the secure world (driver → PTA → TA → filter) and crosses to the
untrusted normal world solely through the relay, after filtering.  This
module declares, per module, which side of that line the code stands on —
the ground truth the world-boundary rules (W001/W002/O001) check against.

Worlds
------
``SECURE``
    Code that executes inside the TEE: the OP-TEE OS/TA/PTA framework,
    secure storage and TA signing, the in-enclave filter stack
    (``core.ta_filter``/``pta_audio``/``filter``/``wakeword``), the relay
    module and its sealed queue, the ported drivers, and everything under
    ``repro.ml`` — the in-TEE model code must remain an auditable closed
    set (Offline Model Guard's point), so it is held to secure-world
    import discipline even though training also runs offline.
``NORMAL``
    The untrusted side: the REE kernel, the cloud service, the client
    applications/orchestration (``core.pipeline``/``platform``/
    ``baseline``), provisioning, CLI, and offline tooling (``tcb``,
    ``analysis``, the heavyweight ``obs`` harnesses).
``BOUNDARY``
    Marshalling that exists in both worlds by construction: TEE client
    API, params, sessions, supplicant RPC, TA supervision.
``SHARED``
    World-agnostic substrate both sides may link: errors, the simulated
    hardware (``tz``/``peripherals``), sim clock/rng/faults, crypto
    primitives, the energy model, and the observability *primitives*
    (span/metrics/export) — but not the obs orchestration harnesses,
    which drive whole pipelines and are normal-world tooling.

``core.camera_pipeline`` is deliberately NORMAL: it is the camera guard's
client app with its TA class colocated in the same module (accepted debt,
documented in DESIGN.md); the analyzer treats the module by its dominant
role.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping


class World(enum.Enum):
    """Which side of the TrustZone boundary a module belongs to."""

    SECURE = "secure"
    NORMAL = "normal"
    BOUNDARY = "boundary"
    SHARED = "shared"


@dataclass(frozen=True)
class TaintSpec:
    """Configuration of the W002 taint pass (sources/sinks/declassifiers).

    All call patterns are dotted suffixes matched on component boundaries
    (see :func:`repro.analysis.modgraph.dotted_suffix_match`).
    """

    # Calls producing plaintext peripheral data.
    source_calls: tuple[str, ...] = (
        "read_chunk",          # secure driver FIFO read
        "capture_frame",       # camera frame capture
        "capture_frames",
    )
    # invoke_pta calls whose arguments reference one of these names are
    # sources too (the PTA capture-buffer read, single-frame and block
    # camera captures).
    source_pta_commands: tuple[str, ...] = (
        "CMD_READ",
        "PTA_CMD_CAPTURE",
        "PTA_CMD_CAPTURE_BLOCK",
    )
    # Calls through which data escapes the secure world.
    sink_calls: tuple[str, ...] = (
        "rpc",                 # supplicant RPC — payload transits NS memory
        "write_memref",        # client-provided shared memory
        "log", "emit",         # trace events, exported to normal world
        "span",
        "observe", "inc",      # metrics registry, exported
    )
    # Approved declassification points: the result is considered clean
    # and tainted arguments may legitimately flow in.
    declassifiers: tuple[str, ...] = (
        "filter.apply",        # the sensitive-content decision itself
        "storage.put",         # sealed-storage write
        "enqueue",             # sealed store-and-forward queue
        "send_transcript",     # relay send of *filtered* payloads
        "send_alert",
    )
    # Builtins whose result carries no payload information.
    clean_builtins: tuple[str, ...] = (
        "len", "bool", "isinstance", "hasattr", "type", "id", "repr",
    )
    # Mutating methods that taint their receiver when fed tainted data.
    mutators: tuple[str, ...] = ("append", "extend", "insert", "add", "update")
    # Methods of these classes return values to the *normal-world* client;
    # returning tainted data from them is a sink.  (PTA entry points are
    # invoked from the secure world and are not listed.)
    entry_bases: tuple[str, ...] = ("TrustedApplication",)
    entry_methods: tuple[str, ...] = (
        "on_invoke", "on_open_session", "on_close_session",
    )


@dataclass(frozen=True)
class WorldMap:
    """World assignments plus per-rule configuration for one package.

    ``exact`` maps full module names; ``prefixes`` maps dotted prefixes
    (most specific wins).  A module matching neither is *unmapped* and
    raises rule W000 — growing the tree forces growing the map.
    """

    package: str
    exact: Mapping[str, World] = field(default_factory=dict)
    prefixes: Mapping[str, World] = field(default_factory=dict)
    # O001: these prefixes may only touch the obs package via the
    # machine's facade handle, never by runtime import.
    obs_package: str = "repro.obs"
    obs_restricted: tuple[str, ...] = ("repro.core", "repro.optee", "repro.relay")
    # D001: ambient RNG/clock calls are allowed only under these prefixes.
    rng_exempt: tuple[str, ...] = ("repro.sim",)
    taint: TaintSpec = field(default_factory=TaintSpec)
    # Dead-TCB: calls to these methods dispatch dynamically into every
    # PTA entry point (classes deriving from the listed bases).
    pta_dispatch_calls: tuple[str, ...] = ("invoke_pta",)
    pta_bases: tuple[str, ...] = ("PseudoTa",)

    def world_of(self, module: str) -> World | None:
        """Resolve a module to a world; None if unmapped."""
        if module in self.exact:
            return self.exact[module]
        best: tuple[int, World] | None = None
        for prefix, world in self.prefixes.items():
            if module == prefix or module.startswith(prefix + "."):
                if best is None or len(prefix) > best[0]:
                    best = (len(prefix), world)
        return best[1] if best else None


def load_world_map(path: Path) -> WorldMap:
    """Load a world map from JSON (used for fixture packages and CI).

    The document carries ``package`` plus ``exact``/``prefixes`` maps of
    module name → world value (``"secure"``, ``"normal"``, ``"boundary"``,
    ``"shared"``); ``obs_package``/``obs_restricted``/``rng_exempt`` are
    optional overrides.  The taint spec (sources/sinks/declassifiers)
    stays at its defaults — the fixtures deliberately exercise the same
    spec the real package is held to.
    """
    doc = json.loads(Path(path).read_text())
    return WorldMap(
        package=doc["package"],
        exact={m: World(w) for m, w in doc.get("exact", {}).items()},
        prefixes={m: World(w) for m, w in doc.get("prefixes", {}).items()},
        obs_package=doc.get("obs_package", "repro.obs"),
        obs_restricted=tuple(doc.get("obs_restricted", ())),
        rng_exempt=tuple(doc.get("rng_exempt", ())),
    )


DEFAULT_WORLD_MAP = WorldMap(
    package="repro",
    exact={
        # The root package __init__ wires the demo together: normal world.
        "repro": World.NORMAL,
    },
    prefixes={
        # -- shared substrate --------------------------------------------------
        "repro.errors": World.SHARED,
        "repro.sim": World.SHARED,
        "repro.crypto": World.SHARED,
        "repro.energy": World.SHARED,
        "repro.tz": World.SHARED,
        "repro.peripherals": World.SHARED,
        "repro.obs": World.SHARED,
        # obs harnesses that drive whole pipelines are normal-world tools.
        "repro.obs.fleet": World.NORMAL,
        "repro.obs.profile": World.NORMAL,
        "repro.obs.regress": World.NORMAL,
        # -- secure world ------------------------------------------------------
        "repro.ml": World.SECURE,
        "repro.drivers": World.SECURE,
        "repro.optee": World.BOUNDARY,       # client API / params / sessions…
        "repro.optee.os": World.SECURE,
        "repro.optee.ta": World.SECURE,
        "repro.optee.pta": World.SECURE,
        "repro.optee.heap": World.SECURE,
        "repro.optee.storage": World.SECURE,
        "repro.optee.signing": World.SECURE,
        "repro.relay": World.SECURE,
        "repro.relay.avs": World.SHARED,     # wire protocol, both sides speak it
        "repro.relay.tls": World.SHARED,     # used by TA relay and cloud server
        "repro.relay.alerts": World.NORMAL,  # client-side alert routing helper
        "repro.core": World.NORMAL,
        "repro.core.ta_filter": World.SECURE,
        "repro.core.pta_audio": World.SECURE,
        "repro.core.filter": World.SECURE,
        "repro.core.model_store": World.SECURE,
        "repro.core.wakeword": World.SECURE,
        # -- normal world / tooling -------------------------------------------
        "repro.kernel": World.NORMAL,
        "repro.cloud": World.NORMAL,
        "repro.provision": World.NORMAL,
        "repro.cli": World.NORMAL,
        "repro.tcb": World.NORMAL,
        "repro.analysis": World.NORMAL,
    },
)
