"""Lint rules over the parsed project.

=====  ========  ==========================================================
rule   severity  meaning
=====  ========  ==========================================================
W000   error     module has no world assignment (the map must stay total)
W001   error     secure-world module imports a normal-world module at
                 runtime (TYPE_CHECKING-only imports are exempt; boundary
                 and shared targets are allowed); also flags shared
                 modules importing either world at runtime, since secure
                 code links shared code
D001   error     ambient nondeterminism outside ``sim/``: ``random``
                 module usage, ``np.random.*`` calls, ``time.time``,
                 ``datetime.now``, ``os.urandom``, ``uuid.uuid4``,
                 ``secrets.*`` — randomness must come from named
                 ``sim.rng.SimRng`` forks
S001   error     key/seal-material identifier interpolated into a
                 log/span/exception f-string
O001   error     module under an obs-restricted prefix imports the obs
                 package at runtime instead of using the machine's
                 facade handle (TYPE_CHECKING-only is exempt)
=====  ========  ==========================================================

W002 (the taint pass) lives in :mod:`repro.analysis.taint`.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import (
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from repro.analysis.modgraph import Project, call_name, rel_path as _rel_path
from repro.analysis.worlds import World, WorldMap


# -- W000 / W001: world map totality and import layering -----------------------


def check_worlds(project: Project, wmap: WorldMap) -> list[Finding]:
    findings: list[Finding] = []
    for mod in project.modules.values():
        path = _rel_path(project, mod)
        world = wmap.world_of(mod.name)
        if world is None:
            findings.append(
                Finding(
                    rule="W000",
                    severity=SEVERITY_ERROR,
                    module=mod.name,
                    path=path,
                    line=1,
                    anchor="unmapped",
                    message=f"module {mod.name} has no world assignment in "
                            f"the world map (analysis/worlds.py)",
                )
            )
            continue
        for imp in mod.imports:
            if imp.type_checking:
                continue
            if not imp.target.startswith(project.package + "."):
                continue
            target_world = wmap.world_of(imp.target)
            if target_world is None:
                continue  # unmapped targets are reported on their own module
            if world is World.SECURE and target_world is World.NORMAL:
                findings.append(
                    Finding(
                        rule="W001",
                        severity=SEVERITY_ERROR,
                        module=mod.name,
                        path=path,
                        line=imp.lineno,
                        anchor=f"import:{imp.target}",
                        message=f"secure-world module imports normal-world "
                                f"module {imp.target} at runtime (only "
                                f"boundary/shared targets are allowed; "
                                f"TYPE_CHECKING imports are exempt)",
                    )
                )
            elif world is World.SHARED and target_world in (
                World.NORMAL, World.SECURE,
            ):
                findings.append(
                    Finding(
                        rule="W001",
                        severity=SEVERITY_WARNING,
                        module=mod.name,
                        path=path,
                        line=imp.lineno,
                        anchor=f"import:{imp.target}",
                        message=f"shared module imports {target_world.value}"
                                f"-world module {imp.target} at runtime; "
                                f"shared code must stay world-agnostic "
                                f"(secure code links it)",
                    )
                )
    return findings


# -- D001: ambient nondeterminism ----------------------------------------------

_AMBIENT_MODULES = ("random", "secrets")
_AMBIENT_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.perf_counter",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1", "uuid.uuid4",
}
_AMBIENT_PREFIXES = ("np.random.", "numpy.random.", "random.", "secrets.")


def check_determinism(project: Project, wmap: WorldMap) -> list[Finding]:
    findings: list[Finding] = []
    for mod in project.modules.values():
        if any(
            mod.name == p or mod.name.startswith(p + ".")
            for p in wmap.rng_exempt
        ):
            continue
        path = _rel_path(project, mod)
        for imp in mod.imports:
            root = imp.target.split(".")[0]
            if root in _AMBIENT_MODULES and not imp.type_checking:
                findings.append(
                    Finding(
                        rule="D001",
                        severity=SEVERITY_ERROR,
                        module=mod.name,
                        path=path,
                        line=imp.lineno,
                        anchor=f"import:{imp.target}",
                        message=f"import of ambient-randomness module "
                                f"{imp.target!r} outside sim/ — use named "
                                f"sim.rng.SimRng forks",
                    )
                )
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name is None:
                continue
            if name in _AMBIENT_CALLS or any(
                name.startswith(p) for p in _AMBIENT_PREFIXES
            ):
                findings.append(
                    Finding(
                        rule="D001",
                        severity=SEVERITY_ERROR,
                        module=mod.name,
                        path=path,
                        line=node.lineno,
                        anchor=f"call:{name}",
                        message=f"ambient nondeterminism: {name}() outside "
                                f"sim/ — derive values from a named "
                                f"sim.rng.SimRng fork so runs stay "
                                f"reproducible",
                    )
                )
    return findings


# -- S001: secret hygiene ------------------------------------------------------

# Identifier components that name key/seal material.  Matched on word
# boundaries within snake_case components so "monkey"/"keyword" pass while
# "seal_key", "_HARDWARE_UNIQUE_KEY", "client_secret" are caught.
_SECRET_COMPONENT = re.compile(
    r"(^|_)(key|keys|secret|secrets|huk|password|passphrase|privkey|"
    r"private)($|_)",
    re.IGNORECASE,
)

_LOG_CALL_NAMES = (
    "log", "emit", "span", "debug", "info", "warning", "error", "exception",
)


# Interpolating a *derived scalar* of a secret (its length, its type) is
# fine — only the value itself must stay out of message text.
_SAFE_WRAPPERS = ("len", "type", "bool", "id")


def _identifier_components(expr: ast.expr) -> list[str]:
    """Names/attributes appearing in an expression (for secret matching).

    Subtrees wrapped in a safe derivation call (``len(key)``) are skipped.
    """
    out: list[str] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name in _SAFE_WRAPPERS:
                continue
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, ast.Attribute):
            out.append(node.attr)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _fstring_secret(joined: ast.JoinedStr) -> str | None:
    for value in joined.values:
        if not isinstance(value, ast.FormattedValue):
            continue
        for ident in _identifier_components(value.value):
            if _SECRET_COMPONENT.search(ident.strip("_")):
                return ident
    return None


def check_secret_hygiene(project: Project, wmap: WorldMap) -> list[Finding]:
    del wmap  # applies repo-wide
    findings: list[Finding] = []
    for mod in project.modules.values():
        path = _rel_path(project, mod)

        def flag(joined: ast.JoinedStr, context: str) -> None:
            ident = _fstring_secret(joined)
            if ident is None:
                return
            findings.append(
                Finding(
                    rule="S001",
                    severity=SEVERITY_ERROR,
                    module=mod.name,
                    path=path,
                    line=joined.lineno,
                    anchor=f"{context}:{ident}",
                    message=f"key/seal material identifier {ident!r} "
                            f"interpolated into a {context} f-string — "
                            f"secrets must never reach logs, spans or "
                            f"exception text",
                )
            )

        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                for sub in ast.walk(node.exc):
                    if isinstance(sub, ast.JoinedStr):
                        flag(sub, "exception")
            elif isinstance(node, ast.Call):
                name = call_name(node.func)
                if name is None or name.split(".")[-1] not in _LOG_CALL_NAMES:
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.JoinedStr):
                            flag(sub, "log")
    return findings


# -- O001: obs optionality -----------------------------------------------------


def check_obs_facade(project: Project, wmap: WorldMap) -> list[Finding]:
    findings: list[Finding] = []
    for mod in project.modules.values():
        if not any(
            mod.name == p or mod.name.startswith(p + ".")
            for p in wmap.obs_restricted
        ):
            continue
        path = _rel_path(project, mod)
        for imp in mod.imports:
            if imp.type_checking:
                continue
            if imp.target == wmap.obs_package or imp.target.startswith(
                wmap.obs_package + "."
            ):
                findings.append(
                    Finding(
                        rule="O001",
                        severity=SEVERITY_ERROR,
                        module=mod.name,
                        path=path,
                        line=imp.lineno,
                        anchor=f"import:{imp.target}",
                        message=f"runtime import of {imp.target} — "
                                f"core/optee/relay must reach observability "
                                f"only through the machine's obs facade so "
                                f"decisions stay byte-identical with obs "
                                f"off (TYPE_CHECKING imports are exempt)",
                    )
                )
    return findings
