"""W002/W003 — whole-program interprocedural taint over the world boundary.

The property being checked is the paper's trusted-path claim: plaintext
peripheral data (driver reads, PTA capture buffers) must never reach a
normal-world call site except through an approved declassification point
(the filter decision itself, sealed-storage writes, the relay send of
*filtered* payloads).

PR 5's pass was module-local: flows that crossed ``core.filter``, the
relay or the cloud tier were invisible and had to be allowlisted in the
baseline.  This engine analyzes the *whole project* with compositional
call summaries, still strictly parse-only:

**Taint values** are sets of symbolic atoms — ``("src", …)`` a concrete
source call site, ``("param", name)`` "whatever the caller passes", and
``("attr", class, name)`` "whatever was last stored on ``self.<name>``"
— plus optional per-key field sets for dict literals with constant
string keys.  Field sensitivity is what lets the engine *prove* that
``record["sensitive"]`` (a filter decision) is clean even though
``record["transcript"]`` in the same dict is plaintext-derived.

**Phase 1 — summaries.** A bottom-up fixpoint over the call graph's
SCCs (:mod:`repro.analysis.callgraph`) computes, per function: the taint
of every local, the return taint, writes to ``self.*`` attributes, and
*param-sink* summaries ("data bound to parameter ``p`` reaches sink
``rpc()``", composed transitively through callees).  Parameters stay
symbolic, so each function is summarized once regardless of callers.

**Phase 2 — grounding.** A global fixpoint instantiates the symbols:
a parameter is *ground* when some call site binds it to an atom that is
itself ground (a source, a ground attribute, a ground parameter of the
caller); an attribute is ground when some write stores ground data.
Each grounding remembers its first witness, so reports can render the
full inter-module flow path.

**Phase 3 — reporting**, restricted to secure-world modules: tainted
arguments reaching a normal-world sink (W002, as before but now with a
rendered flow), tainted returns from TA entry methods (W002), and — new
— a ground value crossing a module boundary into a callee whose summary
says the bound parameter reaches a normal-world sink (**W003**, with the
witness path through both modules rendered).

Declassifiers launder taint (their result is clean and tainted arguments
are legitimate); ``clean_builtins`` (``len`` …) and comparisons return
clean because their results carry no payload content.  Source atoms are
seeded only in secure-world modules — summaries for normal-world code
are computed (they transport taint and sink-reachability) but never
originate taint, and findings are only ever anchored in secure modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, build_call_graph, fn_key
from repro.analysis.findings import Finding, SEVERITY_ERROR
from repro.analysis.modgraph import (
    FunctionInfo,
    Project,
    call_name,
    dotted_suffix_match,
    rel_path,
)
from repro.analysis.worlds import World, WorldMap

_MAX_ITERATIONS = 64
_MAX_RENDER_DEPTH = 8

_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

# Atom kinds (tuples keep them hashable and sortable):
#   ("src", module, qualname, callname, lineno)  — a source call site
#   ("param", name)                              — the function's own parameter
#   ("attr", class_key, name)                    — a self.<name> attribute,
#                                                  class_key = "module:Class.qualname"
Atom = tuple

_EMPTY: frozenset = frozenset()


def _atom_order(atom: Atom):
    """Deterministic sort key; source atoms first (best witnesses)."""
    rank = {"src": 0, "attr": 1, "param": 2}[atom[0]]
    return (rank,) + tuple(str(x) for x in atom[1:])


class TV:
    """A taint value: atom set plus optional per-field sets (dict literals).

    Invariant: ``atoms`` is a superset of the union of all field sets, so
    field-insensitive consumers can always fall back to ``atoms``.
    """

    __slots__ = ("atoms", "fields")

    def __init__(self, atoms=_EMPTY, fields=None):
        self.atoms: frozenset = frozenset(atoms)
        self.fields = fields  # None (opaque) or dict[str, frozenset]

    def __eq__(self, other):
        return (
            isinstance(other, TV)
            and self.atoms == other.atoms
            and self.fields == other.fields
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"TV({sorted(map(str, self.atoms))}, fields={self.fields})"


EMPTY_TV = TV()


def _join(a: TV, b: TV) -> TV:
    """Least upper bound; field maps survive only clean/None merges."""
    if not b.atoms and b.fields is None:
        return a
    if not a.atoms and a.fields is None:
        return b
    atoms = a.atoms | b.atoms
    if a.fields is not None and b.fields is not None:
        fields = {
            k: a.fields.get(k, _EMPTY) | b.fields.get(k, _EMPTY)
            for k in set(a.fields) | set(b.fields)
        }
        return TV(atoms, fields)
    if a.fields is not None and not b.atoms:
        return TV(atoms, dict(a.fields))
    if b.fields is not None and not a.atoms:
        return TV(atoms, dict(b.fields))
    return TV(atoms)  # one side is opaque-and-tainted: collapse


def _subst(atoms: frozenset, binding: dict[str, frozenset]) -> frozenset:
    """Replace a callee's param atoms with the caller's argument atoms."""
    out: set = set()
    for atom in atoms:
        if atom[0] == "param":
            out |= binding.get(atom[1], _EMPTY)
        else:
            out.add(atom)
    return frozenset(out)


@dataclass(frozen=True)
class ParamSink:
    """Summary entry: data bound to a parameter reaches a sink call."""

    sink: str | None            # matched sink pattern (leaf entries only)
    callname: str | None        # spelled sink call ("ctx.rpc")
    lineno: int
    via: tuple[str, str] | None = None  # (callee fn_key, callee param)


@dataclass(frozen=True)
class _CallRecord:
    callee: str                 # fn_key
    callname: str
    lineno: int
    bindings: tuple[tuple[str, frozenset], ...]  # (param, atoms), sorted


@dataclass
class _Summary:
    ret: TV = field(default_factory=TV)
    param_sinks: dict[str, ParamSink] = field(default_factory=dict)
    # (class_key, attr) -> (atoms, first write lineno)
    attr_writes: dict[tuple[str, str], tuple[frozenset, int]] = field(
        default_factory=dict
    )
    calls: list[_CallRecord] = field(default_factory=list)


@dataclass(frozen=True)
class _Witness:
    """How a param/attr first became ground: who bound it and with what."""

    holder: str                 # fn_key of the caller / attribute writer
    lineno: int
    atom: Atom


class _Engine:
    """Whole-program summary computation, grounding, and reporting."""

    def __init__(self, project: Project, wmap: WorldMap,
                 graph: CallGraph | None = None):
        self.project = project
        self.wmap = wmap
        self.spec = wmap.taint
        self.graph = graph or build_call_graph(project, wmap)
        self.fns: dict[str, FunctionInfo] = {}
        for mod in project.modules.values():
            for fn in mod.functions.values():
                self.fns[fn_key(fn)] = fn
        self._secure = {
            name: wmap.world_of(name) is World.SECURE
            for name in project.modules
        }
        self.envs: dict[str, dict[str, TV]] = {
            key: {p: TV(frozenset({("param", p)})) for p in fn.params}
            for key, fn in self.fns.items()
        }
        self.summaries: dict[str, _Summary] = {
            key: _Summary() for key in self.fns
        }
        # Grounding state (phase 2).
        self.param_ground: dict[str, dict[str, _Witness]] = {
            key: {} for key in self.fns
        }
        self.attr_ground: dict[tuple[str, str], _Witness] = {}
        # Report candidates (phase "collect").
        self._sink_cands: list[tuple[str, str, str, int, frozenset]] = []
        self._return_cands: list[tuple[str, int, frozenset]] = []
        self._xflow_cands: list[
            tuple[str, str, str, str, int, frozenset]
        ] = []
        # Walk-local state.
        self._key = ""
        self._fn: FunctionInfo | None = None
        self._collect = False
        self.changed = False

    # -- driver ------------------------------------------------------------------

    def run(self) -> list[Finding]:
        for scc in self.graph.sccs:
            members = [k for k in scc if k in self.fns]
            for _ in range(_MAX_ITERATIONS):
                self.changed = False
                for key in members:
                    self._walk_fn(key)
                if not self.changed:
                    break
        self._collect = True
        for key in sorted(self.fns):
            self._walk_fn(key)
        self._ground()
        return self._report()

    def _walk_fn(self, key: str) -> None:
        self._key = key
        self._fn = self.fns[key]
        for stmt in getattr(self._fn.node, "body", []):
            self._stmt(stmt)

    # -- helpers -----------------------------------------------------------------

    @property
    def _env(self) -> dict[str, TV]:
        return self.envs[self._key]

    @property
    def _sum(self) -> _Summary:
        return self.summaries[self._key]

    def _in_secure(self) -> bool:
        return self._secure.get(self._fn.module, False)

    def _class_key(self) -> str | None:
        cq = self._fn.class_qualname
        return f"{self._fn.module}:{cq}" if cq else None

    def _is_entry_fn(self, fn: FunctionInfo) -> bool:
        return fn.name in self.spec.entry_methods and any(
            b in self.spec.entry_bases for b in fn.class_bases
        )

    def _mark_local(self, name: str, tv: TV) -> None:
        old = self._env.get(name, EMPTY_TV)
        new = _join(old, tv)
        if new != old:
            self._env[name] = new
            self.changed = True

    def _mark_attr(self, attr: str, atoms: frozenset, lineno: int) -> None:
        ck = self._class_key()
        if ck is None or not atoms:
            return
        key = (ck, attr)
        old = self._sum.attr_writes.get(key)
        merged = atoms | (old[0] if old else _EMPTY)
        if old is None or merged != old[0]:
            self._sum.attr_writes[key] = (
                merged, old[1] if old else lineno
            )
            self.changed = True

    def _mark_return(self, tv: TV) -> None:
        old = self._sum.ret
        new = _join(old, tv)
        if new != old:
            self._sum.ret = new
            self.changed = True

    def _mark_param_sink(self, param: str, entry: ParamSink) -> None:
        if param not in self._sum.param_sinks:
            self._sum.param_sinks[param] = entry
            self.changed = True

    # -- expressions -------------------------------------------------------------

    def _expr(self, node: ast.expr | None) -> TV:
        if node is None:
            return EMPTY_TV
        if isinstance(node, ast.Name):
            return self._env.get(node.id, EMPTY_TV)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                ck = self._class_key()
                if ck is not None:
                    return TV(frozenset({("attr", ck, node.attr)}))
                return EMPTY_TV
            return TV(self._expr(node.value).atoms)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Compare):
            # Comparisons yield decision bits, not payload content; still
            # evaluate operands so call-site effects inside them fire.
            self._expr(node.left)
            for cmp in node.comparators:
                self._expr(cmp)
            return EMPTY_TV
        if isinstance(node, ast.Lambda):
            return EMPTY_TV
        if isinstance(node, ast.Dict):
            vals = [self._expr(v) for v in node.values]
            atoms = frozenset().union(*(v.atoms for v in vals)) if vals else _EMPTY
            if node.keys and all(
                isinstance(k, ast.Constant) and isinstance(k.value, str)
                for k in node.keys
            ):
                fields = {
                    k.value: vals[i].atoms
                    for i, k in enumerate(node.keys)
                }
                return TV(atoms, fields)
            for k in node.keys:
                if k is not None:
                    self._expr(k)
            return TV(atoms)
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            base = self._expr(node.value)
            if (
                base.fields is not None
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                return TV(base.fields.get(node.slice.value, _EMPTY))
            return TV(base.atoms | self._expr(node.slice).atoms)
        # Default: any tainted sub-expression taints the whole expression
        # (containers, f-strings, arithmetic, conditionals).
        atoms: set = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                atoms |= self._expr(child).atoms
            elif isinstance(child, ast.comprehension):
                atoms |= self._expr(child.iter).atoms
        return TV(frozenset(atoms))

    def _pta_read_source(self, node: ast.Call) -> bool:
        """``ctx.invoke_pta(uuid, CMD_READ, ...)`` — a capture-buffer read."""
        for arg in list(node.args) + [k.value for k in node.keywords]:
            for sub in ast.walk(arg):
                name = None
                if isinstance(sub, ast.Attribute):
                    name = sub.attr
                elif isinstance(sub, ast.Name):
                    name = sub.id
                if name is not None and name in self.spec.source_pta_commands:
                    return True
        return False

    def _src_tv(self, name: str, lineno: int) -> TV:
        """A fresh source atom — only secure-world code originates taint."""
        if not self._in_secure():
            return EMPTY_TV
        return TV(frozenset({
            ("src", self._fn.module, self._fn.qualname, name, lineno)
        }))

    def _call(self, node: ast.Call) -> TV:
        name = call_name(node.func)
        arg_nodes = list(node.args) + [k.value for k in node.keywords]
        arg_tvs = [self._expr(a) for a in arg_nodes]
        arg_atoms = (
            frozenset().union(*(t.atoms for t in arg_tvs))
            if arg_tvs else _EMPTY
        )
        recv_tv = EMPTY_TV
        if isinstance(node.func, ast.Attribute):
            recv_tv = self._expr(node.func.value)

        if name is None:
            # Call through a computed target (``f()()``, subscripts):
            # propagate conservatively.
            if not isinstance(node.func, ast.Attribute):
                recv_tv = self._expr(node.func)
            return TV(arg_atoms | recv_tv.atoms)

        simple = name.split(".")[-1]

        # Declassifiers launder: tainted args are legitimate, result clean.
        if dotted_suffix_match(name, self.spec.declassifiers):
            return EMPTY_TV

        if simple in self.spec.clean_builtins and "." not in name:
            return EMPTY_TV

        # Sources.
        if dotted_suffix_match(name, self.spec.source_calls):
            return self._src_tv(name, node.lineno)
        if simple in self.wmap.pta_dispatch_calls:
            if self._pta_read_source(node):
                return self._src_tv(name, node.lineno)
            return TV(arg_atoms | recv_tv.atoms)

        # Field-sensitive dict reads: ``record.get("sensitive")``.
        if (
            simple == "get"
            and isinstance(node.func, ast.Attribute)
            and recv_tv.fields is not None
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            default = (
                frozenset().union(*(t.atoms for t in arg_tvs[1:]))
                if len(arg_tvs) > 1 else _EMPTY
            )
            return TV(recv_tv.fields.get(node.args[0].value, _EMPTY) | default)

        site = self.graph.sites.get(self._key, {}).get(id(node))
        if site is not None and site.kind in ("local", "typed"):
            return self._resolved_call(node, site, arg_tvs, recv_tv)

        # Mutators taint their receiver (``buf.append(pcm)``).
        if simple in self.spec.mutators and arg_atoms:
            recv = (
                node.func.value
                if isinstance(node.func, ast.Attribute) else None
            )
            if isinstance(recv, ast.Name):
                self._mark_local(recv.id, TV(arg_atoms))
            elif (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                self._mark_attr(recv.attr, arg_atoms, node.lineno)
            return EMPTY_TV

        # Sinks: record a candidate; taint still flows through the result.
        sink = dotted_suffix_match(name, self.spec.sink_calls)
        if sink is not None:
            for atom in sorted(arg_atoms, key=_atom_order):
                if atom[0] == "param":
                    self._mark_param_sink(
                        atom[1],
                        ParamSink(sink=sink, callname=name,
                                  lineno=node.lineno),
                    )
            if self._collect and self._in_secure() and arg_atoms:
                self._sink_cands.append(
                    (self._key, sink, name, node.lineno, arg_atoms)
                )
            return TV(arg_atoms | recv_tv.atoms)

        # Unknown call: taint flows through (np ops, json.dumps, copies).
        return TV(arg_atoms | recv_tv.atoms)

    def _resolved_call(self, node: ast.Call, site, arg_tvs: list[TV],
                       recv_tv: TV) -> TV:
        """Summary application at a statically-resolved call site."""
        result = TV(recv_tv.atoms)
        for callee_key in site.callees:
            callee = self.fns.get(callee_key)
            if callee is None:
                continue
            binding: dict[str, frozenset] = {}
            for i in range(len(node.args)):
                if i < len(callee.params) and arg_tvs[i].atoms:
                    p = callee.params[i]
                    binding[p] = binding.get(p, _EMPTY) | arg_tvs[i].atoms
            for j, kw in enumerate(node.keywords):
                tv = arg_tvs[len(node.args) + j]
                if kw.arg and kw.arg in callee.params and tv.atoms:
                    binding[kw.arg] = binding.get(kw.arg, _EMPTY) | tv.atoms
            csum = self.summaries[callee_key]
            # Pull the return summary back, instantiating param atoms.
            ret_atoms = _subst(csum.ret.atoms, binding)
            if len(site.callees) == 1 and csum.ret.fields is not None:
                ret = TV(ret_atoms, {
                    k: _subst(v, binding) for k, v in csum.ret.fields.items()
                })
            else:
                ret = TV(ret_atoms)
            result = _join(result, ret)
            # Compose sink reachability: our param feeding a callee param
            # that reaches a sink makes our param sink-reaching too.
            for p, atoms in binding.items():
                if p not in csum.param_sinks:
                    continue
                for atom in sorted(atoms, key=_atom_order):
                    if atom[0] == "param":
                        self._mark_param_sink(
                            atom[1],
                            ParamSink(sink=None, callname=site.name,
                                      lineno=node.lineno,
                                      via=(callee_key, p)),
                        )
            if self._collect:
                items = tuple(sorted(
                    (p, atoms) for p, atoms in binding.items()
                ))
                if items:
                    self._sum.calls.append(_CallRecord(
                        callee=callee_key, callname=site.name,
                        lineno=node.lineno, bindings=items,
                    ))
                if self._in_secure() and callee.module != self._fn.module:
                    for p, atoms in binding.items():
                        if p in csum.param_sinks:
                            self._xflow_cands.append((
                                self._key, callee_key, site.name, p,
                                node.lineno, atoms,
                            ))
        return result

    # -- statements --------------------------------------------------------------

    def _assign_target(self, target: ast.expr, tv: TV) -> None:
        if isinstance(target, ast.Name):
            self._mark_local(target.id, tv)
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._mark_attr(target.attr, tv.atoms, target.lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, tv)
        elif isinstance(target, ast.Subscript):
            # Field-precise store for constant keys on a known dict var.
            if (
                isinstance(target.value, ast.Name)
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                base = self._env.get(target.value.id)
                if base is not None and base.fields is not None:
                    key = target.slice.value
                    fields = dict(base.fields)
                    fields[key] = fields.get(key, _EMPTY) | tv.atoms
                    new = TV(base.atoms | tv.atoms, fields)
                    if new != base:
                        self._env[target.value.id] = new
                        self.changed = True
                    return
            self._assign_target(target.value, TV(tv.atoms))
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, tv)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, _SKIP_NESTED):
            return  # nested defs are analyzed as their own functions
        if isinstance(node, ast.Assign):
            tv = self._expr(node.value)
            if tv.atoms or tv.fields is not None:
                for t in node.targets:
                    self._assign_target(t, tv)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                tv = self._expr(node.value)
                if tv.atoms or tv.fields is not None:
                    self._assign_target(node.target, tv)
            return
        if isinstance(node, ast.AugAssign):
            tv = _join(self._expr(node.value), self._expr(node.target))
            if tv.atoms:
                self._assign_target(node.target, TV(tv.atoms))
            return
        if isinstance(node, ast.Return):
            tv = self._expr(node.value)
            self._mark_return(tv)
            if (
                self._collect
                and tv.atoms
                and self._in_secure()
                and self._is_entry_fn(self._fn)
            ):
                self._return_cands.append((self._key, node.lineno, tv.atoms))
            return
        if isinstance(node, ast.For):
            tv = self._expr(node.iter)
            if tv.atoms:
                target = node.target
                # ``for i, x in enumerate(tainted)``: the counter is clean.
                if (
                    isinstance(node.iter, ast.Call)
                    and call_name(node.iter.func) == "enumerate"
                    and isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                ):
                    target = target.elts[1]
                self._assign_target(target, TV(tv.atoms))
            for child in node.body + node.orelse:
                self._stmt(child)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                tv = self._expr(item.context_expr)
                if tv.atoms and item.optional_vars:
                    self._assign_target(item.optional_vars, tv)
            for child in node.body:
                self._stmt(child)
            return
        if isinstance(node, ast.Expr):
            self._expr(node.value)
            return
        # Generic recursion: evaluate contained expressions (call-site
        # effects) and walk nested statement blocks.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)

    # -- phase 2: grounding --------------------------------------------------------

    def _is_ground(self, atom: Atom, holder: str) -> bool:
        if atom[0] == "src":
            return True
        if atom[0] == "attr":
            return (atom[1], atom[2]) in self.attr_ground
        return atom[1] in self.param_ground.get(holder, {})

    def _ground_of(self, atoms: frozenset, holder: str) -> Atom | None:
        """Deterministic representative ground atom, sources preferred."""
        for atom in sorted(atoms, key=_atom_order):
            if self._is_ground(atom, holder):
                return atom
        return None

    def _ground(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for key in sorted(self.fns):
                summary = self.summaries[key]
                for rec in summary.calls:
                    target = self.param_ground[rec.callee]
                    for p, atoms in rec.bindings:
                        if p in target:
                            continue
                        atom = self._ground_of(atoms, key)
                        if atom is not None:
                            target[p] = _Witness(key, rec.lineno, atom)
                            changed = True
                for (ck, attr), (atoms, lineno) in summary.attr_writes.items():
                    if (ck, attr) in self.attr_ground:
                        continue
                    atom = self._ground_of(atoms, key)
                    if atom is not None:
                        self.attr_ground[(ck, attr)] = _Witness(
                            key, lineno, atom
                        )
                        changed = True
            if not changed:
                break

    # -- phase 3: reporting ----------------------------------------------------------

    def _loc(self, key: str) -> tuple[str, str, str]:
        """(module, qualname, display path) of a fn_key."""
        module, qualname = key.split(":", 1)
        mod = self.project.modules[module]
        return module, qualname, rel_path(self.project, mod)

    def _render_atom(self, atom: Atom, holder: str, depth: int = 0) -> str:
        if depth > _MAX_RENDER_DEPTH:
            return "…"
        if atom[0] == "src":
            _, module, qualname, callname, lineno = atom
            path = rel_path(self.project, self.project.modules[module])
            return f"source {callname}() at {path}:{lineno} in {qualname}"
        if atom[0] == "attr":
            witness = self.attr_ground[(atom[1], atom[2])]
            _, wqual, wpath = self._loc(witness.holder)
            return (
                f"self.{atom[2]} written in {wqual} "
                f"at {wpath}:{witness.lineno} <- "
                + self._render_atom(witness.atom, witness.holder, depth + 1)
            )
        witness = self.param_ground[holder][atom[1]]
        _, hqual, _ = self._loc(holder)
        _, wqual, wpath = self._loc(witness.holder)
        return (
            f"param {atom[1]!r} of {hqual} bound by {wqual} "
            f"at {wpath}:{witness.lineno} <- "
            + self._render_atom(witness.atom, witness.holder, depth + 1)
        )

    def _render_sink_chain(self, key: str, param: str, depth: int = 0) -> str:
        _, qualname, path = self._loc(key)
        if depth > _MAX_RENDER_DEPTH:
            return "…"
        entry = self.summaries[key].param_sinks.get(param)
        if entry is None:  # pragma: no cover - guarded by callers
            return f"{qualname}({param})"
        if entry.via is not None:
            callee_key, callee_param = entry.via
            return (
                f"{qualname}({param}) -> "
                + self._render_sink_chain(callee_key, callee_param, depth + 1)
            )
        return (
            f"{qualname}({param}) -> sink {entry.callname}() "
            f"at {path}:{entry.lineno}"
        )

    def _finding(self, rule: str, key: str, anchor: str, lineno: int,
                 message: str) -> Finding:
        module, _, path = self._loc(key)
        return Finding(
            rule=rule,
            severity=SEVERITY_ERROR,
            module=module,
            path=path,
            line=lineno,
            anchor=anchor,
            message=message,
        )

    def _report(self) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[str] = set()

        for key, sink, callname, lineno, atoms in self._sink_cands:
            _, qualname, _ = self._loc(key)
            anchor = f"{qualname}:call:{sink}"
            if anchor in seen:
                continue
            atom = self._ground_of(atoms, key)
            if atom is None:
                continue
            seen.add(anchor)
            findings.append(self._finding(
                "W002", key, anchor, lineno,
                f"tainted plaintext-derived value reaches "
                f"normal-world sink {callname}() in {qualname} "
                f"without passing a declassification point "
                f"[flow: {self._render_atom(atom, key)}]",
            ))

        for key, lineno, atoms in self._return_cands:
            _, qualname, _ = self._loc(key)
            anchor = f"{qualname}:return"
            if anchor in seen:
                continue
            atom = self._ground_of(atoms, key)
            if atom is None:
                continue
            seen.add(anchor)
            findings.append(self._finding(
                "W002", key, anchor, lineno,
                f"TA entry point {qualname} returns tainted "
                f"plaintext-derived data to the normal-world client "
                f"[flow: {self._render_atom(atom, key)}]",
            ))

        for key, callee_key, callname, param, lineno, atoms in (
            self._xflow_cands
        ):
            _, qualname, _ = self._loc(key)
            cmodule, cqual, _ = self._loc(callee_key)
            anchor = f"{qualname}:xflow:{cmodule}.{cqual}:{param}"
            if anchor in seen:
                continue
            atom = self._ground_of(atoms, key)
            if atom is None:
                continue
            seen.add(anchor)
            findings.append(self._finding(
                "W003", key, anchor, lineno,
                f"tainted plaintext-derived value crosses the module "
                f"boundary: {qualname} calls {callname}() binding "
                f"{cmodule}.{cqual}({param}), which reaches a "
                f"normal-world sink "
                f"[flow: {self._render_atom(atom, key)}; "
                f"then {self._render_sink_chain(callee_key, param)}]",
            ))

        return findings


def check_taint(project: Project, wmap: WorldMap) -> list[Finding]:
    """Run the whole-program W002/W003 taint pass."""
    return _Engine(project, wmap).run()
