"""W002 — the plaintext-audio taint pass over secure-world modules.

The property being checked is the paper's trusted-path claim: plaintext
peripheral data (driver reads, PTA capture buffers) must never reach a
normal-world call site except through an approved declassification point
(the filter decision itself, sealed-storage writes, the relay send of
*filtered* payloads).

The analysis is interprocedural but module-local and flow-insensitive: a
monotone fixpoint over each secure module's functions that accumulates

* **tainted locals/params** per function — seeded by source calls
  (``read_chunk``, ``invoke_pta(..., CMD_READ, ...)``) and grown through
  assignments, containers, arithmetic and unknown calls;
* **tainted ``self.*`` attributes** per module — a tainted value stored on
  ``self`` taints every later read of that attribute (the TA's segment
  buffers);
* **return summaries** — a function returning tainted data makes its
  call sites tainted, and call sites passing tainted arguments taint the
  callee's parameters (resolved by simple name within the module, so the
  TA-class-inside-factory layout resolves without execution).

Declassifier calls launder taint (their *result* is clean and tainted
arguments are legitimate); ``clean_builtins`` (``len`` …) and comparisons
return clean because their results carry no payload content.  After the
fixpoint converges, a reporting pass flags (a) tainted arguments reaching
a normal-world sink call (``rpc``, ``write_memref``, ``log``/``emit``/
``span``, metrics) and (b) tainted returns from TA entry methods — those
travel back to the normal-world client.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, SEVERITY_ERROR
from repro.analysis.modgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    call_name,
    dotted_suffix_match,
    rel_path,
)
from repro.analysis.worlds import World, WorldMap

_MAX_ITERATIONS = 64

_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass
class _FnState:
    tainted: set[str] = field(default_factory=set)  # local + param names
    returns_tainted: bool = False


class _ModuleTaint:
    """One module's fixpoint state and reporting pass."""

    def __init__(self, project: Project, mod: ModuleInfo, wmap: WorldMap):
        self.project = project
        self.mod = mod
        self.spec = wmap.taint
        self.state: dict[str, _FnState] = {
            q: _FnState() for q in mod.functions
        }
        self.attr_taint: set[str] = set()  # tainted self.<attr> names
        self.changed = False
        self.findings: list[Finding] = []
        self._reporting = False
        self._reported: set[tuple[str, str]] = set()  # dedupe (anchor, line-ish)

    # -- fixpoint driver -------------------------------------------------------

    def run(self) -> list[Finding]:
        for _ in range(_MAX_ITERATIONS):
            self.changed = False
            for fn in self.mod.functions.values():
                self._analyze_fn(fn)
            if not self.changed:
                break
        self._reporting = True
        for fn in self.mod.functions.values():
            self._analyze_fn(fn)
        return self.findings

    # -- helpers ---------------------------------------------------------------

    def _mark_local(self, fn: FunctionInfo, name: str) -> None:
        st = self.state[fn.qualname]
        if name not in st.tainted:
            st.tainted.add(name)
            self.changed = True

    def _mark_attr(self, attr: str) -> None:
        if attr not in self.attr_taint:
            self.attr_taint.add(attr)
            self.changed = True

    def _mark_returns(self, fn: FunctionInfo) -> None:
        st = self.state[fn.qualname]
        if not st.returns_tainted:
            st.returns_tainted = True
            self.changed = True

    def _is_entry_fn(self, fn: FunctionInfo) -> bool:
        return fn.name in self.spec.entry_methods and any(
            b in self.spec.entry_bases for b in fn.class_bases
        )

    def _callees(self, name: str, fn: FunctionInfo) -> list[FunctionInfo]:
        """Module-local resolution of a call target by simple name.

        ``self._process(...)`` / ``helper(...)`` resolve to every function
        in this module with that simple name, preferring same-class
        methods when the call is through ``self``.
        """
        simple = name.split(".")[-1]
        candidates = self.mod.functions_named(simple)
        if not candidates:
            return []
        if name.startswith("self."):
            cls_prefix = fn.qualname.rsplit(".", 1)[0]
            same_class = [
                c for c in candidates
                if c.qualname.rsplit(".", 1)[0] == cls_prefix
            ]
            if same_class:
                return same_class
        return candidates

    def _report(self, fn: FunctionInfo, anchor: str, lineno: int,
                message: str) -> None:
        key = (anchor, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(
                rule="W002",
                severity=SEVERITY_ERROR,
                module=self.mod.name,
                path=rel_path(self.project, self.mod),
                line=lineno,
                anchor=anchor,
                message=message,
            )
        )

    # -- expression taint ------------------------------------------------------

    def _expr(self, node: ast.expr | None, fn: FunctionInfo) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.state[fn.qualname].tainted
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr in self.attr_taint
            return self._expr(node.value, fn)
        if isinstance(node, ast.Call):
            return self._call(node, fn)
        if isinstance(node, ast.Compare):
            # Comparisons yield decision bits, not payload content; still
            # evaluate operands so call-site effects inside them fire.
            self._expr(node.left, fn)
            for cmp in node.comparators:
                self._expr(cmp, fn)
            return False
        if isinstance(node, ast.Lambda):
            return False
        # Default: any tainted sub-expression taints the whole expression
        # (containers, f-strings, arithmetic, subscripts, conditionals).
        tainted = False
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                if self._expr(child, fn):
                    tainted = True
            elif isinstance(child, ast.comprehension):
                if self._expr(child.iter, fn):
                    tainted = True
        return tainted

    def _pta_read_source(self, node: ast.Call) -> bool:
        """``ctx.invoke_pta(uuid, CMD_READ, ...)`` — a capture-buffer read."""
        for arg in list(node.args) + [k.value for k in node.keywords]:
            for sub in ast.walk(arg):
                name = None
                if isinstance(sub, ast.Attribute):
                    name = sub.attr
                elif isinstance(sub, ast.Name):
                    name = sub.id
                if name is not None and name in self.spec.source_pta_commands:
                    return True
        return False

    def _call(self, node: ast.Call, fn: FunctionInfo) -> bool:
        name = call_name(node.func)
        arg_nodes = list(node.args) + [k.value for k in node.keywords]
        args_tainted = [self._expr(a, fn) for a in arg_nodes]
        any_arg_tainted = any(args_tainted)
        receiver_tainted = (
            isinstance(node.func, ast.Attribute)
            and self._expr(node.func.value, fn)
        )

        if name is None:
            # Call through a computed target (``f()()``, subscripts):
            # propagate conservatively.
            return any_arg_tainted or self._expr(node.func, fn)

        simple = name.split(".")[-1]

        # Declassifiers launder: tainted args are legitimate, result clean.
        if dotted_suffix_match(name, self.spec.declassifiers):
            return False

        if simple in self.spec.clean_builtins and "." not in name:
            return False

        # Sources.
        if dotted_suffix_match(name, self.spec.source_calls):
            return True
        if simple in ("invoke_pta",) and self._pta_read_source(node):
            return True

        # Local callees: propagate argument taint into parameters, pull
        # return-taint summaries back.
        callees = self._callees(name, fn)
        if callees:
            result = False
            for callee in callees:
                for i, arg in enumerate(node.args):
                    if args_tainted[i] and i < len(callee.params):
                        self._mark_local(callee, callee.params[i])
                for kw in node.keywords:
                    if kw.arg and kw.arg in callee.params:
                        if self._expr(kw.value, fn):
                            self._mark_local(callee, kw.arg)
                if self.state[callee.qualname].returns_tainted:
                    result = True
            return result or receiver_tainted

        # Mutators taint their receiver (``buf.append(pcm)``).
        if simple in self.spec.mutators and any_arg_tainted:
            recv = node.func.value if isinstance(node.func, ast.Attribute) else None
            if isinstance(recv, ast.Name):
                self._mark_local(fn, recv.id)
            elif (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                self._mark_attr(recv.attr)
            return False

        # Sinks — report only after the fixpoint has converged.
        sink = dotted_suffix_match(name, self.spec.sink_calls)
        if sink is not None and self._reporting and any_arg_tainted:
            self._report(
                fn,
                anchor=f"{fn.qualname}:call:{sink}",
                lineno=node.lineno,
                message=f"tainted plaintext-derived value reaches "
                        f"normal-world sink {name}() in {fn.qualname} "
                        f"without passing a declassification point",
            )

        # Unknown call: taint flows through (np ops, json.dumps, copies).
        return any_arg_tainted or receiver_tainted

    # -- statements ------------------------------------------------------------

    def _assign_target(self, target: ast.expr, fn: FunctionInfo) -> None:
        if isinstance(target, ast.Name):
            self._mark_local(fn, target.id)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self._mark_attr(target.attr)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, fn)
        elif isinstance(target, ast.Subscript):
            self._assign_target(target.value, fn)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, fn)

    def _analyze_fn(self, fn: FunctionInfo) -> None:
        body = getattr(fn.node, "body", [])
        for stmt in body:
            self._stmt(stmt, fn)

    def _stmt(self, node: ast.stmt, fn: FunctionInfo) -> None:
        if isinstance(node, _SKIP_NESTED):
            return  # nested defs are analyzed as their own functions
        if isinstance(node, ast.Assign):
            if self._expr(node.value, fn):
                for t in node.targets:
                    self._assign_target(t, fn)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None and self._expr(node.value, fn):
                self._assign_target(node.target, fn)
            return
        if isinstance(node, ast.AugAssign):
            if self._expr(node.value, fn) or self._expr(
                node.target, fn
            ):
                self._assign_target(node.target, fn)
            return
        if isinstance(node, ast.Return):
            if self._expr(node.value, fn):
                self._mark_returns(fn)
                if self._reporting and self._is_entry_fn(fn):
                    self._report(
                        fn,
                        anchor=f"{fn.qualname}:return",
                        lineno=node.lineno,
                        message=f"TA entry point {fn.qualname} returns "
                                f"tainted plaintext-derived data to the "
                                f"normal-world client",
                    )
            return
        if isinstance(node, ast.For):
            if self._expr(node.iter, fn):
                target = node.target
                # ``for i, x in enumerate(tainted)``: the counter is clean.
                if (
                    isinstance(node.iter, ast.Call)
                    and call_name(node.iter.func) == "enumerate"
                    and isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                ):
                    target = target.elts[1]
                self._assign_target(target, fn)
            for child in node.body + node.orelse:
                self._stmt(child, fn)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if self._expr(item.context_expr, fn) and item.optional_vars:
                    self._assign_target(item.optional_vars, fn)
            for child in node.body:
                self._stmt(child, fn)
            return
        if isinstance(node, ast.Expr):
            self._expr(node.value, fn)
            return
        # Generic recursion: evaluate contained expressions (call-site
        # effects) and walk nested statement blocks.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child, fn)
            elif isinstance(child, ast.expr):
                self._expr(child, fn)


def check_taint(project: Project, wmap: WorldMap) -> list[Finding]:
    """Run the W002 taint pass over every secure-world module."""
    findings: list[Finding] = []
    for mod in project.modules.values():
        if wmap.world_of(mod.name) is not World.SECURE:
            continue
        findings.extend(_ModuleTaint(project, mod, wmap).run())
    return findings
