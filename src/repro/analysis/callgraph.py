"""Project-wide call graph for the interprocedural taint pass.

The module-local pass (PR 5) resolved only simple-name calls inside one
module; everything else was "unknown" and handled by conservative taint
propagation.  This module adds the resolution layers the whole-program
pass needs, while staying strictly parse-only:

* **import bindings** — ``from .xmod_source import grab`` binds ``grab``
  to a concrete :class:`~repro.analysis.modgraph.FunctionInfo` in another
  module; ``import repro.ml.vad as vad`` binds ``vad`` to a module whose
  attributes resolve on use;
* **static typing** — parameter annotations, ``x = ClassName(...)``
  allocation sites, and :class:`~repro.analysis.modgraph.ClassInfo` field
  types let attribute chains resolve (``self.bundle.asr.transcribe`` walks
  ``AudioFilterTa.bundle: FilterBundle`` → ``FilterBundle.asr:
  MatchedFilterAsr`` → ``MatchedFilterAsr.transcribe``), including methods
  of classes nested inside factory functions;
* **PTA dispatch edges** — ``ctx.invoke_pta(...)`` fans out to every
  entry method of every ``PseudoTa`` subclass, mirroring
  :func:`repro.analysis.deadtcb.static_reachability`.

Resolution happens once per call expression, *before* the taint fixpoint,
and the resulting :class:`CallSite` table is keyed by AST node identity.
Site classification mirrors the taint transfer function's precedence
exactly, so that a call the taint pass short-circuits (declassifier,
clean builtin, source, sink) never grows an edge: declassifiers → clean
builtins → sources / ``invoke_pta`` → module-local simple-name callees →
mutators → sinks → typed cross-module resolution.  The condensation of
the resulting graph (Tarjan SCCs, emitted callees-first) is the schedule
for the bottom-up summary fixpoint in :mod:`repro.analysis.taint`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .modgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    call_name,
    dotted_suffix_match,
)
from .worlds import TaintSpec, WorldMap

# Subtrees that are separate scopes: their calls belong to the nested
# function's own summary (or, for lambdas, are never evaluated — parity
# with the module-local pass).
_SKIP_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

_MAX_BASE_DEPTH = 6  # inheritance / field-chain lookup cap


def fn_key(fn: FunctionInfo) -> str:
    """Stable identity of a function across the whole project."""
    return f"{fn.module}:{fn.qualname}"


@dataclass(frozen=True)
class CallSite:
    """One statically-resolved call expression inside a function body."""

    kind: str                    # "local" | "typed" | "dispatch"
    callees: tuple[str, ...]     # fn_keys, deterministic order
    name: str                    # dotted spelling at the call site
    lineno: int


@dataclass
class CallGraph:
    """Resolved call sites plus the bottom-up SCC schedule."""

    # fn_key -> {id(ast.Call) -> CallSite}
    sites: dict[str, dict[int, CallSite]]
    # fn_key -> set of callee fn_keys (dispatch edges included)
    edges: dict[str, set[str]]
    # SCCs in callees-first (reverse topological) order.
    sccs: list[tuple[str, ...]]
    resolver: "Resolver"


class Resolver:
    """Parse-only name and type resolution over a :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        # module name -> local binding -> (target module name, symbol).
        # symbol == "" means the binding names the module itself.
        self.bindings: dict[str, dict[str, tuple[str, str]]] = {}
        for mod in project.modules.values():
            bmap: dict[str, tuple[str, str]] = {}
            for imp in mod.imports:
                if imp.type_checking:
                    continue  # never executes; useless for call edges
                if not imp.alias:
                    continue
                if imp.target in project.modules:
                    bmap[imp.alias] = (imp.target, imp.symbol)
            self.bindings[mod.name] = bmap
        # simple class name -> [ClassInfo] across the project.
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for mod in project.modules.values():
            for cls in mod.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
        for lst in self.classes_by_name.values():
            lst.sort(key=lambda c: (c.module, c.qualname))

    # -- class / type resolution ------------------------------------------------

    def resolve_class(self, simple: str | None,
                      from_module: str) -> ClassInfo | None:
        """A class by simple name as seen from ``from_module``."""
        if not simple:
            return None
        mod = self.project.modules.get(from_module)
        if mod is not None:
            local = [c for c in mod.classes.values() if c.name == simple]
            if local:
                # Prefer the least-nested definition.
                return min(local, key=lambda c: (c.qualname.count("."),
                                                 c.qualname))
            bound = self.bindings.get(from_module, {}).get(simple)
            if bound is not None:
                tmod_name, symbol = bound
                tmod = self.project.modules.get(tmod_name)
                if tmod is not None:
                    want = symbol or simple
                    cand = [c for c in tmod.classes.values() if c.name == want]
                    if cand:
                        return min(cand, key=lambda c: (c.qualname.count("."),
                                                        c.qualname))
        # Unambiguous project-wide fallback (annotations under
        # TYPE_CHECKING import the name, so the runtime binding is absent).
        cand = self.classes_by_name.get(simple, [])
        if len(cand) == 1:
            return cand[0]
        if cand and len({c.module for c in cand}) == 1:
            return min(cand, key=lambda c: (c.qualname.count("."), c.qualname))
        return None

    def field_type(self, cls: ClassInfo, attr: str,
                   depth: int = 0) -> str | None:
        """Declared/inferred type of ``cls.attr``, walking base classes."""
        if depth > _MAX_BASE_DEPTH:
            return None
        t = cls.fields.get(attr)
        if t:
            return t
        for base in cls.bases:
            bcls = self.resolve_class(base, cls.module)
            if bcls is not None and bcls is not cls:
                t = self.field_type(bcls, attr, depth + 1)
                if t:
                    return t
        return None

    def method_of(self, cls: ClassInfo, name: str,
                  depth: int = 0) -> FunctionInfo | None:
        """Method ``name`` of ``cls``, walking base classes."""
        if depth > _MAX_BASE_DEPTH:
            return None
        mod = self.project.modules.get(cls.module)
        if mod is not None:
            fn = mod.functions.get(f"{cls.qualname}.{name}")
            if fn is not None:
                return fn
        for base in cls.bases:
            bcls = self.resolve_class(base, cls.module)
            if bcls is not None and bcls is not cls:
                fn = self.method_of(bcls, name, depth + 1)
                if fn is not None:
                    return fn
        return None

    def module_function(self, mod: ModuleInfo,
                        simple: str) -> FunctionInfo | None:
        """Top-level function ``simple`` in ``mod`` (qualname has no dot)."""
        fn = mod.functions.get(simple)
        if fn is not None and "." not in fn.qualname:
            return fn
        return None

    # -- per-function local typing ------------------------------------------------

    def local_var_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Variable -> simple class name from allocations and annotations."""
        out = dict(fn.param_types)
        for node in _own_nodes(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = call_name(node.value.func)
                if name is None:
                    continue
                simple = name.split(".")[-1]
                if not simple[:1].isupper():
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = simple
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                from .modgraph import ann_name

                t = ann_name(node.annotation)
                if t:
                    out[node.target.id] = t
        return out

    # -- call resolution ----------------------------------------------------------

    def enclosing_class(self, fn: FunctionInfo) -> ClassInfo | None:
        cq = fn.class_qualname
        if cq is None:
            return None
        mod = self.project.modules.get(fn.module)
        if mod is None:
            return None
        return mod.classes.get(cq)

    def local_callees(self, mod: ModuleInfo, fn: FunctionInfo,
                      name: str) -> list[FunctionInfo]:
        """Module-local simple-name resolution (the PR-5 semantics).

        ``self.x()`` and bare ``x()`` match every local function named
        ``x``; methods of the caller's own class are preferred when the
        call goes through ``self``.
        """
        parts = name.split(".")
        simple = parts[-1]
        if len(parts) > 2 and parts[0] != "self":
            # `obj.a.b()` with a non-self root never matched locally.
            return []
        if len(parts) > 2 and parts[0] == "self" and len(parts) != 2:
            # `self.a.b()` goes through a field: typed resolution's job.
            return []
        cands = mod.functions_named(simple)
        if not cands:
            return []
        if parts[0] == "self" and fn.class_qualname is not None:
            own = [c for c in cands
                   if c.class_qualname == fn.class_qualname]
            if own:
                return own
        return cands

    def typed_callees(self, mod: ModuleInfo, fn: FunctionInfo, name: str,
                      var_types: dict[str, str]) -> list[FunctionInfo]:
        """Cross-module / typed resolution of a dotted call."""
        parts = name.split(".")
        if len(parts) == 1:
            # `grab()` — a from-imported function.
            bound = self.bindings.get(mod.name, {}).get(parts[0])
            if bound is not None:
                tmod_name, symbol = bound
                tmod = self.project.modules.get(tmod_name)
                if tmod is not None and symbol:
                    target = self.module_function(tmod, symbol)
                    if target is not None:
                        return [target]
            return []
        # `alias.fn()` / `alias.Class.method()` through a module binding.
        bound = self.bindings.get(mod.name, {}).get(parts[0])
        if bound is not None and not bound[1]:
            tmod = self.project.modules.get(bound[0])
            if tmod is not None:
                if len(parts) == 2:
                    target = self.module_function(tmod, parts[1])
                    return [target] if target is not None else []
                cls = next(
                    (c for c in tmod.classes.values() if c.name == parts[1]),
                    None,
                )
                if cls is not None and len(parts) == 3:
                    target = self.method_of(cls, parts[2])
                    return [target] if target is not None else []
            return []
        # Typed receiver chain: `self.f1.f2.m()` or `var.f1.m()`.
        if parts[0] == "self":
            cls = self.enclosing_class(fn)
            chain, method = parts[1:-1], parts[-1]
            if not chain:
                return []  # `self.m()` is local resolution's job
        else:
            cls = self.resolve_class(var_types.get(parts[0]), mod.name)
            chain, method = parts[1:-1], parts[-1]
        if cls is None:
            return []
        for attr in chain:
            cls = self.resolve_class(self.field_type(cls, attr), cls.module)
            if cls is None:
                return []
        target = self.method_of(cls, method)
        return [target] if target is not None else []


def _own_nodes(fn: FunctionInfo):
    """Every AST node in ``fn``'s body, excluding nested scopes."""
    stack = list(getattr(fn.node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, _SKIP_NESTED):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _pta_entries(project: Project, wmap: WorldMap) -> tuple[str, ...]:
    """fn_keys of every PTA entry method (``invoke_pta`` dispatch targets)."""
    out: list[str] = []
    entry_methods = set(wmap.taint.entry_methods) | {"invoke"}
    for mod in sorted(project.modules.values(), key=lambda m: m.name):
        for fn in mod.functions.values():
            if fn.name in entry_methods and any(
                b in wmap.pta_bases for b in fn.class_bases
            ):
                out.append(fn_key(fn))
    return tuple(sorted(out))


def build_call_graph(project: Project, wmap: WorldMap) -> CallGraph:
    """Resolve every call site and condense the graph into SCCs."""
    spec: TaintSpec = wmap.taint
    resolver = Resolver(project)
    sites: dict[str, dict[int, CallSite]] = {}
    edges: dict[str, set[str]] = {}
    dispatch = _pta_entries(project, wmap)

    all_fns: list[FunctionInfo] = []
    for mod in sorted(project.modules.values(), key=lambda m: m.name):
        all_fns.extend(
            mod.functions[q] for q in sorted(mod.functions)
        )

    for fn in all_fns:
        key = fn_key(fn)
        mod = project.modules[fn.module]
        fn_sites: dict[int, CallSite] = {}
        fn_edges: set[str] = set()
        var_types = resolver.local_var_types(fn)
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name is None:
                continue
            simple = name.split(".")[-1]
            # Mirror the taint transfer precedence: anything the pass
            # short-circuits never becomes an edge.
            if dotted_suffix_match(name, spec.declassifiers):
                continue
            if simple in spec.clean_builtins and "." not in name:
                continue
            if dotted_suffix_match(name, spec.source_calls):
                continue
            if simple in wmap.pta_dispatch_calls:
                if dispatch:
                    site = CallSite("dispatch", dispatch, name, node.lineno)
                    fn_sites[id(node)] = site
                    fn_edges.update(dispatch)
                continue
            local = resolver.local_callees(mod, fn, name)
            if local:
                callees = tuple(sorted(fn_key(c) for c in local))
                fn_sites[id(node)] = CallSite("local", callees, name,
                                              node.lineno)
                fn_edges.update(callees)
                continue
            if simple in spec.mutators:
                continue
            if dotted_suffix_match(name, spec.sink_calls):
                continue
            typed = resolver.typed_callees(mod, fn, name, var_types)
            if typed:
                callees = tuple(sorted(fn_key(c) for c in typed))
                fn_sites[id(node)] = CallSite("typed", callees, name,
                                              node.lineno)
                fn_edges.update(callees)
        sites[key] = fn_sites
        edges[key] = fn_edges

    sccs = _tarjan(sorted(edges), edges)
    return CallGraph(sites=sites, edges=edges, sccs=sccs, resolver=resolver)


def _tarjan(nodes: list[str],
            edges: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Iterative Tarjan; SCCs emitted callees-first (reverse topological)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        # Explicit DFS stack of (node, iterator over successors).
        work: list[tuple[str, list[str], int]] = []
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, sorted(edges.get(root, ())), 0))
        while work:
            node, succs, i = work.pop()
            advanced = False
            while i < len(succs):
                succ = succs[i]
                i += 1
                if succ not in edges:
                    continue  # edge to a function outside the project
                if succ not in index:
                    work.append((node, succs, i))
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges.get(succ, ())), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                scc: list[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(tuple(sorted(scc)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs
