"""Dead-TCB cross-check: static reachability vs. the dynamic tracer.

The paper minimizes ported drivers by *dynamic* tracing: run the task,
keep what executed.  This module computes the *static* complement — every
driver function reachable (by AST call-graph walk) from the trusted
application's entry points — and diffs the two:

* statically reachable ∧ dynamically traced → needed, kept (healthy);
* statically reachable ∧ never traced across all T2 task profiles →
  **dead TCB**: code an attacker can still reach through the TA interface
  but that no supported task needs — prime candidates for compiling out
  beyond what the per-task plans already strip;
* dynamically traced but not statically reachable → tracer noise or a
  reflection-style call the AST walk cannot see (reported so the static
  graph's blind spots stay visible).

Reachability starts at TrustedApplication entry methods, resolves calls
by simple name within the secure/boundary/shared worlds, and treats
``invoke_pta`` as a dispatch edge into every PTA (``PseudoTa`` subclass)
entry method — the same configured dispatch the world-boundary rules use.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.analysis.findings import Finding, SEVERITY_ERROR
from repro.analysis.modgraph import Project, FunctionInfo, call_name, rel_path
from repro.analysis.worlds import World, WorldMap

_PTA_ENTRY_METHODS = ("on_invoke", "on_open_session", "on_close_session")


@dataclass(frozen=True)
class StaticReachability:
    """Raw result of the AST walk from TA entry points."""

    entry_points: tuple[str, ...]       # "module:qualname" roots
    visited: tuple[str, ...]            # "module:qualname" reached functions
    called_names: frozenset[str]        # simple names of every call made


def static_reachability(project: Project, wmap: WorldMap) -> StaticReachability:
    """Walk the call graph from TA entry points through the secure worlds."""
    spec = wmap.taint
    index: dict[str, list[FunctionInfo]] = {}
    candidates: list[FunctionInfo] = []
    for mod in project.modules.values():
        if wmap.world_of(mod.name) is World.NORMAL:
            continue
        for fn in mod.functions.values():
            index.setdefault(fn.name, []).append(fn)
            candidates.append(fn)

    roots = [
        fn for fn in candidates
        if fn.name in spec.entry_methods
        and any(b in spec.entry_bases for b in fn.class_bases)
    ]
    pta_entries = [
        fn for fn in candidates
        if fn.name in _PTA_ENTRY_METHODS
        and any(b in wmap.pta_bases for b in fn.class_bases)
    ]

    def key(fn: FunctionInfo) -> str:
        return f"{fn.module}:{fn.qualname}"

    visited: dict[str, FunctionInfo] = {}
    called: set[str] = set()
    work = list(roots)
    while work:
        fn = work.pop()
        if key(fn) in visited:
            continue
        visited[key(fn)] = fn
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name is None:
                continue
            simple = name.split(".")[-1]
            called.add(simple)
            work.extend(index.get(simple, ()))
            if simple in wmap.pta_dispatch_calls:
                work.extend(pta_entries)

    return StaticReachability(
        entry_points=tuple(sorted(key(fn) for fn in roots)),
        visited=tuple(sorted(visited)),
        called_names=frozenset(called),
    )


@dataclass(frozen=True)
class DeadTcbReport:
    """Static/dynamic driver-function diff for one driver."""

    driver: str
    entry_points: tuple[str, ...]
    loc: Mapping[str, int]              # driver fn name → declared LoC
    static_reachable: frozenset[str]    # driver fns reachable from TA entries
    dynamic_hit: frozenset[str]         # driver fns traced across all tasks

    @property
    def dead(self) -> tuple[str, ...]:
        """Statically reachable, never dynamically exercised."""
        return tuple(sorted(self.static_reachable - self.dynamic_hit))

    @property
    def untracked_dynamic(self) -> tuple[str, ...]:
        """Traced but not statically reachable — static blind spots."""
        return tuple(sorted(self.dynamic_hit - self.static_reachable))

    @property
    def dead_loc(self) -> int:
        return sum(self.loc.get(fn, 0) for fn in self.dead)

    @property
    def static_loc(self) -> int:
        return sum(self.loc.get(fn, 0) for fn in self.static_reachable)

    def to_doc(self) -> dict:
        return {
            "driver": self.driver,
            "entry_points": list(self.entry_points),
            "static_reachable": sorted(self.static_reachable),
            "dynamic_hit": sorted(self.dynamic_hit),
            "dead": list(self.dead),
            "dead_loc": self.dead_loc,
            "static_loc": self.static_loc,
            "untracked_dynamic": list(self.untracked_dynamic),
        }


def compute_dead_tcb(
    project: Project,
    wmap: WorldMap,
    driver_class: type,
    dynamic_hit: frozenset[str],
) -> DeadTcbReport:
    """Diff static reachability against the union of traced keep-sets.

    ``driver_class`` is a :class:`repro.drivers.base.Driver` subclass; its
    declared function set (names + LoC) scopes the comparison.
    ``dynamic_hit`` is the union of functions the kernel tracer observed
    across the task profiles (plus any always-keep set the plans used).
    """
    fns = driver_class.functions()
    loc = {name: info.loc for name, info in fns.items()}
    reach = static_reachability(project, wmap)
    static_driver = frozenset(n for n in fns if n in reach.called_names)
    return DeadTcbReport(
        driver=driver_class.NAME,
        entry_points=reach.entry_points,
        loc=loc,
        static_reachable=static_driver,
        dynamic_hit=frozenset(dynamic_hit) & frozenset(fns),
    )


# -- parse-only driver extraction + the T001 regression gate -------------------
#
# `compute_dead_tcb` above needs the *runtime* driver class (it calls
# ``Driver.functions()``), which is fine for `repro tcb` but would break
# the analyzer's parse-only guarantee.  The gate below re-derives the same
# name → LoC table from the ``@driver_fn(loc=..., ...)`` decorator
# literals, which are always statically spelled, and diffs the current
# dead set against a committed per-driver baseline
# (``analysis/deadtcb_baseline.json``) so dead-TCB *growth* fails CI the
# way the perf gate bounds cycles.

DEADTCB_BASELINE_NAME = "deadtcb_baseline.json"


@dataclass(frozen=True)
class DriverStatics:
    """Parse-only view of one instrumented driver class."""

    module: str
    class_qualname: str
    name: str                    # the class's NAME attribute
    lineno: int
    loc: Mapping[str, int]       # driver fn -> declared LoC
    fn_lines: Mapping[str, int]  # driver fn -> def lineno
    entry_points: tuple[str, ...]


def _driver_fn_meta(fn_node: ast.FunctionDef) -> tuple[int, bool] | None:
    """(loc, entry_point) from a ``@driver_fn(...)`` decorator, or None."""
    for dec in fn_node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = call_name(dec.func)
        if name is None or name.split(".")[-1] != "driver_fn":
            continue
        loc: int | None = None
        entry = False
        if dec.args and isinstance(dec.args[0], ast.Constant) and isinstance(
            dec.args[0].value, int
        ):
            loc = dec.args[0].value
        for kw in dec.keywords:
            if not isinstance(kw.value, ast.Constant):
                continue
            if kw.arg == "loc" and isinstance(kw.value.value, int):
                loc = kw.value.value
            elif kw.arg == "entry_point" and isinstance(kw.value.value, bool):
                entry = kw.value.value
        if loc is not None:
            return loc, entry
    return None


def driver_statics(project: Project) -> dict[str, DriverStatics]:
    """Every ``Driver`` subclass with instrumented functions, by NAME."""
    out: dict[str, DriverStatics] = {}
    for mod in sorted(project.modules.values(), key=lambda m: m.name):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in node.bases
            }
            if "Driver" not in bases:
                continue
            loc: dict[str, int] = {}
            fn_lines: dict[str, int] = {}
            entries: list[str] = []
            name = ""
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == "NAME"
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str)
                        ):
                            name = stmt.value.value
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                meta = _driver_fn_meta(stmt)
                if meta is None:
                    continue
                loc[stmt.name] = meta[0]
                fn_lines[stmt.name] = stmt.lineno
                if meta[1]:
                    entries.append(stmt.name)
            if not loc or not name:
                continue  # the Driver base class itself, or uninstrumented
            out[name] = DriverStatics(
                module=mod.name,
                class_qualname=node.name,
                name=name,
                lineno=node.lineno,
                loc=dict(loc),
                fn_lines=dict(fn_lines),
                entry_points=tuple(sorted(entries)),
            )
    return out


def compute_dead_tcb_static(
    project: Project,
    wmap: WorldMap,
    statics: DriverStatics,
    dynamic_hit: frozenset[str],
    reach: StaticReachability | None = None,
) -> DeadTcbReport:
    """Parse-only variant of :func:`compute_dead_tcb`.

    LoC figures come from the decorator literals instead of the runtime
    ``Driver.functions()`` table (they are identical by construction:
    ``driver_fn`` stores its ``loc`` argument verbatim).
    """
    if reach is None:
        reach = static_reachability(project, wmap)
    static_driver = frozenset(
        n for n in statics.loc if n in reach.called_names
    )
    return DeadTcbReport(
        driver=statics.name,
        entry_points=reach.entry_points,
        loc=dict(statics.loc),
        static_reachable=static_driver,
        dynamic_hit=frozenset(dynamic_hit) & frozenset(statics.loc),
    )


def deadtcb_baseline_path(project: Project) -> Path:
    """Committed baseline location: ``<package>/analysis/deadtcb_baseline.json``."""
    return project.root / "analysis" / DEADTCB_BASELINE_NAME


def build_deadtcb_doc(
    project: Project,
    wmap: WorldMap,
    dynamic_hits: Mapping[str, frozenset[str]],
) -> dict:
    """The baseline document: per-driver dead set given the traced hits."""
    reach = static_reachability(project, wmap)
    drivers = {}
    for name, statics in sorted(driver_statics(project).items()):
        report = compute_dead_tcb_static(
            project, wmap, statics,
            frozenset(dynamic_hits.get(name, frozenset())), reach,
        )
        drivers[name] = {
            "module": statics.module,
            "dynamic_hit": sorted(report.dynamic_hit),
            "dead": list(report.dead),
            "dead_loc": report.dead_loc,
            "static_loc": report.static_loc,
        }
    return {"version": 1, "drivers": drivers}


def check_dead_tcb(project: Project, wmap: WorldMap) -> list[Finding]:
    """T001 — dead-TCB regressions against the committed baseline.

    For each instrumented driver, recompute static reachability from the
    TA entry points, subtract the *committed* dynamic-trace set, and flag
    (a) functions dead now but not at baseline time, (b) dead-LoC growth,
    and (c) drivers with no baseline entry at all (a new driver must be
    traced and baselined before it ships).  Packages without a committed
    baseline (the test fixtures) skip the pass entirely.
    """
    path = deadtcb_baseline_path(project)
    if not path.exists():
        return []
    doc = json.loads(path.read_text())
    entries: Mapping[str, dict] = doc.get("drivers", {})
    reach = static_reachability(project, wmap)
    findings: list[Finding] = []

    def finding(statics: DriverStatics, anchor: str, lineno: int,
                message: str) -> Finding:
        mod = project.modules[statics.module]
        return Finding(
            rule="T001",
            severity=SEVERITY_ERROR,
            module=statics.module,
            path=rel_path(project, mod),
            line=lineno,
            anchor=anchor,
            message=message,
        )

    for name, statics in sorted(driver_statics(project).items()):
        entry = entries.get(name)
        if entry is None:
            findings.append(finding(
                statics, f"deadtcb:{name}:missing", statics.lineno,
                f"driver {name!r} ({statics.module}.{statics.class_qualname}) "
                f"has no dead-TCB baseline entry; trace it and regenerate "
                f"with `repro tcb --write-deadtcb-baseline`",
            ))
            continue
        report = compute_dead_tcb_static(
            project, wmap, statics,
            frozenset(entry.get("dynamic_hit", ())), reach,
        )
        base_dead = set(entry.get("dead", ()))
        for fn in report.dead:
            if fn in base_dead:
                continue
            findings.append(finding(
                statics, f"deadtcb:{name}:{fn}",
                statics.fn_lines.get(fn, statics.lineno),
                f"dead-TCB regression in driver {name!r}: {fn}() "
                f"({statics.loc.get(fn, 0)} LoC) is statically reachable "
                f"from TA entry points but absent from every traced task "
                f"profile in the committed baseline",
            ))
        base_loc = int(entry.get("dead_loc", 0))
        if report.dead_loc > base_loc:
            findings.append(finding(
                statics, f"deadtcb:{name}:loc", statics.lineno,
                f"dead-TCB LoC of driver {name!r} grew from {base_loc} "
                f"to {report.dead_loc}; minimize the new surface or "
                f"re-trace and regenerate the baseline",
            ))
    return findings
