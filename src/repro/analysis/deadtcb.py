"""Dead-TCB cross-check: static reachability vs. the dynamic tracer.

The paper minimizes ported drivers by *dynamic* tracing: run the task,
keep what executed.  This module computes the *static* complement — every
driver function reachable (by AST call-graph walk) from the trusted
application's entry points — and diffs the two:

* statically reachable ∧ dynamically traced → needed, kept (healthy);
* statically reachable ∧ never traced across all T2 task profiles →
  **dead TCB**: code an attacker can still reach through the TA interface
  but that no supported task needs — prime candidates for compiling out
  beyond what the per-task plans already strip;
* dynamically traced but not statically reachable → tracer noise or a
  reflection-style call the AST walk cannot see (reported so the static
  graph's blind spots stay visible).

Reachability starts at TrustedApplication entry methods, resolves calls
by simple name within the secure/boundary/shared worlds, and treats
``invoke_pta`` as a dispatch edge into every PTA (``PseudoTa`` subclass)
entry method — the same configured dispatch the world-boundary rules use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.modgraph import FunctionInfo, Project, call_name
from repro.analysis.worlds import World, WorldMap

_PTA_ENTRY_METHODS = ("on_invoke", "on_open_session", "on_close_session")


@dataclass(frozen=True)
class StaticReachability:
    """Raw result of the AST walk from TA entry points."""

    entry_points: tuple[str, ...]       # "module:qualname" roots
    visited: tuple[str, ...]            # "module:qualname" reached functions
    called_names: frozenset[str]        # simple names of every call made


def static_reachability(project: Project, wmap: WorldMap) -> StaticReachability:
    """Walk the call graph from TA entry points through the secure worlds."""
    spec = wmap.taint
    index: dict[str, list[FunctionInfo]] = {}
    candidates: list[FunctionInfo] = []
    for mod in project.modules.values():
        if wmap.world_of(mod.name) is World.NORMAL:
            continue
        for fn in mod.functions.values():
            index.setdefault(fn.name, []).append(fn)
            candidates.append(fn)

    roots = [
        fn for fn in candidates
        if fn.name in spec.entry_methods
        and any(b in spec.entry_bases for b in fn.class_bases)
    ]
    pta_entries = [
        fn for fn in candidates
        if fn.name in _PTA_ENTRY_METHODS
        and any(b in wmap.pta_bases for b in fn.class_bases)
    ]

    def key(fn: FunctionInfo) -> str:
        return f"{fn.module}:{fn.qualname}"

    visited: dict[str, FunctionInfo] = {}
    called: set[str] = set()
    work = list(roots)
    while work:
        fn = work.pop()
        if key(fn) in visited:
            continue
        visited[key(fn)] = fn
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name is None:
                continue
            simple = name.split(".")[-1]
            called.add(simple)
            work.extend(index.get(simple, ()))
            if simple in wmap.pta_dispatch_calls:
                work.extend(pta_entries)

    return StaticReachability(
        entry_points=tuple(sorted(key(fn) for fn in roots)),
        visited=tuple(sorted(visited)),
        called_names=frozenset(called),
    )


@dataclass(frozen=True)
class DeadTcbReport:
    """Static/dynamic driver-function diff for one driver."""

    driver: str
    entry_points: tuple[str, ...]
    loc: Mapping[str, int]              # driver fn name → declared LoC
    static_reachable: frozenset[str]    # driver fns reachable from TA entries
    dynamic_hit: frozenset[str]         # driver fns traced across all tasks

    @property
    def dead(self) -> tuple[str, ...]:
        """Statically reachable, never dynamically exercised."""
        return tuple(sorted(self.static_reachable - self.dynamic_hit))

    @property
    def untracked_dynamic(self) -> tuple[str, ...]:
        """Traced but not statically reachable — static blind spots."""
        return tuple(sorted(self.dynamic_hit - self.static_reachable))

    @property
    def dead_loc(self) -> int:
        return sum(self.loc.get(fn, 0) for fn in self.dead)

    @property
    def static_loc(self) -> int:
        return sum(self.loc.get(fn, 0) for fn in self.static_reachable)

    def to_doc(self) -> dict:
        return {
            "driver": self.driver,
            "entry_points": list(self.entry_points),
            "static_reachable": sorted(self.static_reachable),
            "dynamic_hit": sorted(self.dynamic_hit),
            "dead": list(self.dead),
            "dead_loc": self.dead_loc,
            "static_loc": self.static_loc,
            "untracked_dynamic": list(self.untracked_dynamic),
        }


def compute_dead_tcb(
    project: Project,
    wmap: WorldMap,
    driver_class: type,
    dynamic_hit: frozenset[str],
) -> DeadTcbReport:
    """Diff static reachability against the union of traced keep-sets.

    ``driver_class`` is a :class:`repro.drivers.base.Driver` subclass; its
    declared function set (names + LoC) scopes the comparison.
    ``dynamic_hit`` is the union of functions the kernel tracer observed
    across the task profiles (plus any always-keep set the plans used).
    """
    fns = driver_class.functions()
    loc = {name: info.loc for name, info in fns.items()}
    reach = static_reachability(project, wmap)
    static_driver = frozenset(n for n in fns if n in reach.called_names)
    return DeadTcbReport(
        driver=driver_class.NAME,
        entry_points=reach.entry_points,
        loc=loc,
        static_reachable=static_driver,
        dynamic_hit=frozenset(dynamic_hit) & frozenset(fns),
    )
