"""Entry points tying the analysis passes together.

``analyze_package`` parses a package root and runs every rule;
``run_analysis`` additionally loads the committed baseline and returns the
:class:`~repro.analysis.findings.AnalysisReport` the CLI and CI gate on.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.deadtcb import check_dead_tcb
from repro.analysis.findings import AnalysisReport, Baseline, Finding
from repro.analysis.modgraph import load_project
from repro.analysis.rules import (
    check_determinism,
    check_obs_facade,
    check_secret_hygiene,
    check_worlds,
)
from repro.analysis.taint import check_taint
from repro.analysis.worlds import DEFAULT_WORLD_MAP, WorldMap

#: The committed accepted-findings file, next to this module.
DEFAULT_BASELINE_PATH = Path(__file__).with_name("baseline.json")

_PASSES = (
    check_worlds,
    check_taint,
    check_determinism,
    check_secret_hygiene,
    check_obs_facade,
    check_dead_tcb,
)


def analyze_package(
    root: Path,
    package: str = "repro",
    world_map: WorldMap = DEFAULT_WORLD_MAP,
) -> list[Finding]:
    """Run every analysis pass over the package rooted at ``root``.

    ``root`` is the package directory itself (the one holding
    ``__init__.py``).  Results are deterministically ordered.
    """
    project = load_project(Path(root), package=package)
    findings: list[Finding] = []
    for check in _PASSES:
        findings.extend(check(project, world_map))
    findings.sort(key=lambda f: (f.rule, f.path, f.line, f.anchor))
    return findings


def run_analysis(
    root: Path,
    package: str = "repro",
    world_map: WorldMap = DEFAULT_WORLD_MAP,
    baseline_path: Path | None = DEFAULT_BASELINE_PATH,
) -> AnalysisReport:
    """Analyze and split findings against the committed baseline.

    Pass ``baseline_path=None`` to report raw findings (every finding is
    then "new").  A missing baseline file behaves the same way.
    """
    findings = analyze_package(root, package=package, world_map=world_map)
    baseline = None
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = Baseline.load(Path(baseline_path))
    return AnalysisReport(findings=findings, baseline=baseline)
