"""AST-level module, import and function graphs for a Python package.

Everything in :mod:`repro.analysis` works from *parsed* source — modules
are never imported, so a module seeded with violations (or one that would
not even execute) can still be analyzed.  The loader walks a package
directory, derives dotted module names from file paths, and extracts:

* **imports**, each tagged with its scope (module vs. function level) and
  whether it lives under an ``if TYPE_CHECKING:`` guard (those never
  execute, so the world-boundary rules exempt them);
* **function definitions** with their qualified names (nested functions,
  methods, and classes defined inside factory functions all resolve — the
  audio-filter TA is a class inside :func:`make_audio_filter_ta`) and the
  textual base-class names of the enclosing class, which is how rules
  recognize TA / PTA entry points without executing anything.

Call expressions are *not* pre-extracted; rules walk function bodies
themselves via :func:`call_name`, the shared dotted-name printer
(``self.bundle.filter.apply`` and friends).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a dotted target."""

    module: str          # importing module (dotted name)
    target: str          # imported module (dotted name)
    lineno: int
    type_checking: bool  # under `if TYPE_CHECKING:` — never executes
    scope: str           # "module" or "function"
    alias: str = ""      # local name the import binds ("np", "relay", "grab")
    symbol: str = ""     # symbol for from-imports of non-modules ("grab")


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method definition with its resolution context."""

    module: str
    qualname: str               # e.g. "make_audio_filter_ta.AudioFilterTa._process"
    name: str                   # simple name
    lineno: int
    node: ast.AST = field(compare=False, hash=False)
    class_bases: tuple[str, ...] = ()  # simple names of enclosing class bases
    params: tuple[str, ...] = ()       # positional/kw parameter names, self dropped
    # Parameter name -> simple type name from the annotation ("FilterBundle");
    # only annotations with a static spelling are recorded.
    param_types: Mapping[str, str] = field(default_factory=dict)

    @property
    def class_qualname(self) -> str | None:
        """Qualname of the enclosing class, if this is a method."""
        if "." not in self.qualname:
            return None
        return self.qualname.rsplit(".", 1)[0]


@dataclass(frozen=True)
class ClassInfo:
    """One class definition with enough typing context for call resolution."""

    module: str
    qualname: str                      # e.g. "make_audio_filter_ta.AudioFilterTa"
    name: str                          # simple name
    bases: tuple[str, ...] = ()        # simple names of base classes
    # Attribute -> simple type name, from class-body AnnAssigns
    # (``asr: MatchedFilterAsr``), ``self.x: T = ...`` annotations and
    # ``self.x = ClassName(...)`` allocation sites inside methods.
    fields: Mapping[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Parsed view of one module."""

    name: str
    path: Path
    tree: ast.Module
    imports: list[ImportEdge]
    functions: dict[str, FunctionInfo]  # by qualname
    classes: dict[str, ClassInfo] = field(default_factory=dict)  # by qualname

    def functions_named(self, simple: str) -> list[FunctionInfo]:
        """All functions in this module with the given simple name."""
        return [f for f in self.functions.values() if f.name == simple]


@dataclass
class Project:
    """All modules of one package, by dotted name."""

    package: str
    root: Path
    modules: dict[str, ModuleInfo]

    def module_of_path(self, path: Path) -> ModuleInfo | None:
        for mod in self.modules.values():
            if mod.path == path:
                return mod
        return None


def _is_type_checking_test(test: ast.expr) -> bool:
    """Matches ``if TYPE_CHECKING:`` and ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def ann_name(expr: ast.expr | None) -> str | None:
    """Simple type name of an annotation, or None when it has no static one.

    ``FilterBundle`` → ``"FilterBundle"``; ``relay.RelayModule`` →
    ``"RelayModule"``; ``RelayModule | None`` → ``"RelayModule"``; string
    annotations parse recursively.  Subscripted generics (``list[T]``,
    ``dict[...]``) are containers, not the value's class — they return None.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            return ann_name(ast.parse(expr.value, mode="eval").body)
        except SyntaxError:
            return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        # `T | None` — prefer whichever side names a class.
        return ann_name(expr.left) or ann_name(expr.right)
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """Collects imports, function and class definitions in one pass."""

    def __init__(self, module_name: str, known: set[str]):
        self.module_name = module_name
        self.known = known  # dotted names of every module in the package
        self.imports: list[ImportEdge] = []
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._class_fields: list[dict[str, str]] = []  # parallel to class stack
        self._qual: list[str] = []        # qualname stack
        self._class_bases: list[tuple[str, ...]] = []
        self._fn_params: list[dict[str, str]] = []  # enclosing-fn param types
        self._fn_depth = 0
        self._tc_depth = 0                # TYPE_CHECKING nesting

    # -- imports ---------------------------------------------------------------

    def _add_import(self, target: str, lineno: int,
                    alias: str = "", symbol: str = "") -> None:
        self.imports.append(
            ImportEdge(
                module=self.module_name,
                target=target,
                lineno=lineno,
                type_checking=self._tc_depth > 0,
                scope="function" if self._fn_depth else "module",
                alias=alias,
                symbol=symbol,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            # `import a.b` binds `a`; `import a.b as c` binds `c` to a.b.
            bound = alias.asname or alias.name.split(".")[0]
            self._add_import(alias.name, node.lineno, alias=bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import: resolve against this module's package
            base = self.module_name.split(".")
            # level 1 = current package; each extra level pops one more.
            base = base[: len(base) - node.level]
            prefix = ".".join(base + ([node.module] if node.module else []))
        else:
            prefix = node.module or ""
        if not prefix:
            return
        for alias in node.names:
            # `from pkg.mod import name`: if pkg.mod.name is itself a module,
            # the edge targets the submodule; otherwise it targets pkg.mod.
            candidate = f"{prefix}.{alias.name}"
            is_module = candidate in self.known
            self._add_import(
                candidate if is_module else prefix,
                node.lineno,
                alias=alias.asname or alias.name,
                symbol="" if is_module else alias.name,
            )

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._tc_depth += 1
            for child in node.body:
                self.visit(child)
            self._tc_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    # -- definitions -----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for b in node.bases:
            if isinstance(b, ast.Name):
                bases.append(b.id)
            elif isinstance(b, ast.Attribute):
                bases.append(b.attr)
        self._qual.append(node.name)
        self._class_bases.append(tuple(bases))
        fields: dict[str, str] = {}
        self._class_fields.append(fields)
        qualname = ".".join(self._qual)
        # Class-body annotations (dataclass fields: ``asr: MatchedFilterAsr``).
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                t = ann_name(stmt.annotation)
                if t:
                    fields[stmt.target.id] = t
        self.generic_visit(node)
        self.classes[qualname] = ClassInfo(
            module=self.module_name,
            qualname=qualname,
            name=node.name,
            bases=tuple(bases),
            fields=dict(fields),
        )
        self._class_fields.pop()
        self._class_bases.pop()
        self._qual.pop()

    def _self_attr(self, target: ast.expr) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _record_self_field(self, attr: str, type_name: str | None,
                           explicit: bool) -> None:
        if not type_name or not self._class_fields:
            return
        fields = self._class_fields[-1]
        if explicit:
            fields[attr] = type_name
        else:
            fields.setdefault(attr, type_name)

    def _value_type(self, value: ast.expr | None) -> str | None:
        """Static type of an assigned value: allocation site or typed name."""
        if isinstance(value, ast.Call):
            name = call_name(value.func)
            if name is None:
                return None
            simple = name.split(".")[-1]
            # Heuristic: only constructor-looking calls type the target.
            return simple if simple[:1].isupper() else None
        if isinstance(value, ast.Name):
            # `self.bundle = bundle`: the name's annotation, looked up in
            # the enclosing (possibly factory) functions' parameters.
            for params in reversed(self._fn_params):
                if value.id in params:
                    return params[value.id]
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is not None:
                self._record_self_field(attr, self._value_type(node.value),
                                        explicit=False)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            self._record_self_field(attr, ann_name(node.annotation),
                                    explicit=True)
        self.generic_visit(node)

    def _visit_fn(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._qual.append(node.name)
        qualname = ".".join(self._qual)
        args = node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        params = tuple(
            a.arg for a in args if a.arg not in ("self", "cls")
        )
        param_types = {
            a.arg: t for a in args
            if a.arg not in ("self", "cls")
            for t in (ann_name(a.annotation),) if t
        }
        self.functions[qualname] = FunctionInfo(
            module=self.module_name,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            node=node,
            class_bases=self._class_bases[-1] if self._class_bases else (),
            params=params,
            param_types=param_types,
        )
        self._fn_depth += 1
        self._fn_params.append(param_types)
        self.generic_visit(node)
        self._fn_params.pop()
        self._fn_depth -= 1
        self._qual.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node)


def load_project(root: Path, package: str = "repro") -> Project:
    """Parse every ``*.py`` under ``root`` into a :class:`Project`.

    ``root`` is the directory of the package itself (the one containing
    ``__init__.py``); module names are ``package`` + the dotted relative
    path, with ``__init__`` collapsing onto the package name.
    """
    root = Path(root)
    paths = sorted(root.rglob("*.py"))
    names: dict[Path, str] = {}
    for path in paths:
        rel = path.relative_to(root).with_suffix("")
        parts = [package] + [p for p in rel.parts]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        names[path] = ".".join(parts)

    known = set(names.values())
    modules: dict[str, ModuleInfo] = {}
    for path, name in names.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        visitor = _ModuleVisitor(name, known)
        visitor.visit(tree)
        modules[name] = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            imports=visitor.imports,
            functions=visitor.functions,
            classes=visitor.classes,
        )
    return Project(package=package, root=root, modules=modules)


def rel_path(project: Project, mod: ModuleInfo) -> str:
    """Display path for a module, repo-relative when the layout allows.

    Assumes the conventional ``<repo>/src/<package>/`` layout two levels
    up from the package root; falls back to the absolute path.
    """
    try:
        return str(mod.path.relative_to(project.root.parent.parent))
    except ValueError:
        return str(mod.path)


def call_name(func: ast.expr) -> str | None:
    """Dotted name of a call target, or None if it has no static spelling.

    ``ctx.invoke_pta`` → ``"ctx.invoke_pta"``; ``np.random.default_rng`` →
    ``"np.random.default_rng"``.  Chains rooted in calls or subscripts
    (``json.dumps(d).encode``) return None — callers treat those as opaque.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dotted_suffix_match(name: str, patterns: tuple[str, ...]) -> str | None:
    """First pattern that matches ``name`` on dotted-component boundaries.

    ``"self.bundle.filter.apply"`` matches pattern ``"filter.apply"`` but
    not ``"r.apply"``; a pattern with no dot matches the final component.
    """
    for pat in patterns:
        if name == pat or name.endswith("." + pat):
            return pat
    return None
