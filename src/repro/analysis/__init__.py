"""World-boundary static analysis for the secure data path.

A self-contained analyzer (stdlib ``ast`` only — analyzed code is parsed,
never imported) that turns the paper's security argument into a CI gate:

* :mod:`~repro.analysis.worlds` — the authoritative secure/normal/
  boundary/shared partition of the codebase;
* :mod:`~repro.analysis.rules` — W000/W001 world layering, D001
  determinism, S001 secret hygiene, O001 obs-optionality;
* :mod:`~repro.analysis.taint` — W002, the plaintext-audio taint pass;
* :mod:`~repro.analysis.deadtcb` — static-vs-dynamic TCB cross-check;
* :mod:`~repro.analysis.runner` — orchestration + the committed baseline
  (``baseline.json``) so CI fails only on *new* violations.

Run it with ``repro analyze [--format json] [--fail-on-new]``.
"""

from repro.analysis.findings import AnalysisReport, Baseline, Finding
from repro.analysis.runner import (
    DEFAULT_BASELINE_PATH,
    analyze_package,
    run_analysis,
)
from repro.analysis.worlds import DEFAULT_WORLD_MAP, World, WorldMap

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_WORLD_MAP",
    "World",
    "WorldMap",
    "analyze_package",
    "run_analysis",
]
