"""Command-line interface.

Gives downstream users one entry point to the headline flows without
writing Python::

    repro demo                 # Fig. 1 pipeline on a sample stream
    repro privacy              # secure vs baseline leak audit
    repro profile              # per-stage cycle/energy profile, secure vs baseline
    repro trace                # span / trace-event dump of one run
    repro fleet                # N simulated devices, merged fleet telemetry
    repro health               # SLO evaluation + flight-recorder dump
    repro compare              # perf-regression gate vs committed baseline
    repro tcb                  # trace-and-strip the I2S driver (+ dead-TCB)
    repro analyze              # world-boundary static analysis gate
    repro models               # architecture comparison table
    repro info                 # platform/memory-map/cost-model summary

Every subcommand accepts ``--seed`` for reproducibility; heavier flows
accept ``--utterances``.  Installed as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

# Default artifact paths resolve against the repo checkout that holds
# this file, not the CWD, so `repro profile` / `repro fleet` work from
# any directory.  When the package is installed (the `repro` console
# script) that walk lands in site-packages' parents, so fall back to
# CWD-relative defaults instead of paths that can never exist.
def _repo_root() -> pathlib.Path:
    try:
        root = pathlib.Path(__file__).resolve().parents[2]
    except IndexError:
        return pathlib.Path.cwd()
    return root if (root / "benchmarks").is_dir() else pathlib.Path.cwd()


_REPO_ROOT = _repo_root()
_DEFAULT_PROFILE_OUT = _REPO_ROOT / "benchmarks" / "results" / "profile.json"
_DEFAULT_BASELINE = (
    _REPO_ROOT / "benchmarks" / "baselines" / "profile_baseline.json"
)
_DEFAULT_HEALTH_DUMP = (
    _REPO_ROOT / "benchmarks" / "results" / "health_flight.jsonl"
)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import build_demo_pipeline

    secure, workload, platform = build_demo_pipeline(
        seed=args.seed, utterances=args.utterances
    )
    try:
        run = secure.process(workload)
    finally:
        # The TA session holds secure memory; close it even if the run
        # raises so repeated CLI invocations in one process can't leak.
        secure.close()
    for result in run.results:
        action = "forwarded" if result.forwarded else "BLOCKED  "
        print(f"  {action}  \"{result.utterance.text}\"")
    summary = run.summary()
    print(f"\n{summary['forwarded']}/{summary['utterances']} forwarded, "
          f"accuracy {summary['accuracy']:.2f}, "
          f"{summary['total_energy_mj']:.1f} mJ, "
          f"{platform.machine.cpu.switch_count} world switches")
    return 0


def _cmd_privacy(args: argparse.Namespace) -> int:
    from repro.cloud.auditor import LeakAuditor
    from repro.core.baseline import BaselinePipeline
    from repro.core.pipeline import SecurePipeline
    from repro.core.platform import IotPlatform
    from repro.core.workload import UtteranceWorkload
    from repro.kernel.attacks import BufferSnoopAttack
    from repro.ml.dataset import UtteranceGenerator
    from repro.provision import provision_bundle
    from repro.sim.rng import SimRng

    provisioned = provision_bundle(seed=args.seed)
    bundle = provisioned.bundle

    print(f"{'configuration':16s} {'cloud leak':>11s} {'device leak':>12s} "
          f"{'utility':>8s}")
    for label, secure in (("baseline", False), ("secure (ours)", True)):
        platform = IotPlatform.create(seed=args.seed)
        if secure:
            pipeline = SecurePipeline(platform, bundle)
        else:
            pipeline = BaselinePipeline(platform, bundle.asr, use_tls=True)
        corpus = UtteranceGenerator(SimRng(args.seed, "cli")).generate(
            args.utterances, sensitive_fraction=0.5
        )
        workload = UtteranceWorkload.from_corpus(corpus, bundle.vocoder)
        snoop = BufferSnoopAttack(platform.machine)
        captures = []
        try:
            pipeline.process(
                workload,
                after_each=lambda p: captures.extend(
                    snoop.run(p.attack_targets()).captured
                ),
            )
        finally:
            pipeline.close()
        auditor = LeakAuditor(workload.utterances, reference_asr=bundle.asr)
        auditor.decode_device_captures(captures)
        report = auditor.report(platform.cloud.received_transcripts)
        print(f"{label:16s} {report.cloud_leak_rate:>11.0%} "
              f"{report.device_leak_rate:>12.0%} {report.utility_rate:>8.0%}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs.profile import collect_profile

    report = collect_profile(
        seed=args.seed,
        utterances=args.utterances,
        continuous=args.continuous,
    )
    print(report.table())
    # The default path is repo-rooted (not CWD-relative) so the command
    # works from any directory; --output "" skips writing entirely.
    out = _DEFAULT_PROFILE_OUT if args.output is None else (
        pathlib.Path(args.output) if args.output else None
    )
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_doc(), indent=2) + "\n")
        print(f"\nwrote {out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import build_demo_pipeline

    secure, workload, platform = build_demo_pipeline(
        seed=args.seed, utterances=args.utterances
    )
    try:
        if args.continuous:
            secure.process_continuous(workload)
        else:
            secure.process(workload)
    finally:
        secure.close()

    machine = platform.machine
    if args.events:
        lines = machine.trace.to_jsonl(args.category).splitlines()
    elif args.format == "chrome":
        print(machine.obs.tracer.to_chrome_trace(args.category))
        return 0
    else:
        lines = machine.obs.tracer.to_jsonl(args.category).splitlines()
    if args.limit > 0:
        dropped = max(0, len(lines) - args.limit)
        lines = lines[:args.limit]
        if dropped:
            lines.append(f"... {dropped} more (raise --limit)")
    print("\n".join(lines))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import (
        fleet_chrome_trace,
        fleet_trace_jsonl,
        to_openmetrics,
    )
    from repro.obs.fleet import resolve_sample_rate, run_fleet

    sample_rate: int | str = args.sample_rate
    if sample_rate != "auto":
        # Validate eagerly so a typo fails before the simulation runs.
        sample_rate = resolve_sample_rate(sample_rate, "clean")
    collect_traces = bool(args.traces or args.trace_chrome)
    report = run_fleet(
        devices=args.devices, seed=args.seed, utterances=args.utterances,
        chaos=args.chaos, overload=args.overload,
        client_crashes=args.client_crashes,
        shards=args.shards, max_workers=args.max_workers,
        sample_rate=sample_rate, collect_traces=collect_traces,
    )
    print(report.table())
    if args.output:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_doc(), indent=2) + "\n")
        print(f"\nwrote {out}")
    if args.metrics_out:
        out = pathlib.Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(to_openmetrics(report.merged_registry()))
        print(f"wrote {out}")
    if args.traces:
        out = pathlib.Path(args.traces)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(fleet_trace_jsonl(report) + "\n")
        print(f"wrote {out}")
    if args.trace_chrome:
        out = pathlib.Path(args.trace_chrome)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(fleet_chrome_trace(report) + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.obs.fleet import (
        FAULT_PROFILES,
        DeviceSpec,
        simulate_device_runtime,
    )
    from repro.obs.health import (
        FlightRecorder,
        HealthMonitor,
        Watchdog,
        default_slo_rules,
    )
    from repro.provision import provision_bundle

    bundle = provision_bundle(seed=args.seed).bundle
    spec = DeviceSpec(
        device_id="health",
        seed=args.seed,
        utterances=args.utterances,
        sensitive_fraction=0.5,
        fault_profile=args.fault_profile,
        secure_fault_profile="chaos" if args.chaos else "none",
    )
    recorder = FlightRecorder(capacity=args.flight_capacity)
    runtime = simulate_device_runtime(
        spec, bundle, recorder=recorder, collect_traces=args.trace_ids,
    )
    device = runtime.report
    machine = runtime.machine
    monitor = HealthMonitor(
        device.registry,
        rules=default_slo_rules(
            latency_budget_cycles=args.latency_budget_ms / 1e3
            * machine.clock.freq_hz,
            relay_success_min=args.relay_success_min,
            max_queue_depth=args.max_queue_depth,
            recovery_budget_cycles=args.recovery_budget_ms / 1e3
            * machine.clock.freq_hz,
        ),
        recorder=recorder,
        watchdog=Watchdog(machine.obs.tracer, machine.clock),
    )
    # The default dump path is repo-rooted (not CWD-relative) so the
    # command works from any directory; --dump "" skips writing.
    dump = _DEFAULT_HEALTH_DUMP if args.dump is None else (
        pathlib.Path(args.dump) if args.dump else None
    )
    report = monitor.evaluate(
        dump_path=dump,
        burn_window_hours=args.window_hours if args.burn_rate else None,
        burn_factor=args.burn_factor,
        trace_only=args.trace_only,
        freq_hz=machine.clock.freq_hz,
    )
    print(f"device {spec.device_id} (seed {spec.seed}, "
          f"{spec.fault_profile} network, "
          f"{spec.secure_fault_profile} secure faults, "
          f"{device.summary['utterances']} utterances)")
    print(report.table())
    if report.flight_dump is not None:
        spans = len(report.flight_dump.splitlines())
        where = f" -> {dump}" if dump is not None else ""
        print(f"\nflight recorder: {spans} spans captured{where}")
    if not report.ok and args.route_alerts:
        from repro.relay.alerts import route_health_alert

        outcome = route_health_alert(
            runtime.platform, runtime.ta_uuid, report,
            device_id=spec.device_id,
        )
        print(f"alert routed through relay: {outcome.get('status')}"
              + (f" (attempts {outcome['attempts']})"
                 if "attempts" in outcome else ""))
    return report.exit_code


def _cmd_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs.regress import (
        collect_current_for,
        compare_profiles,
        load_profile_doc,
    )

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; commit one with "
              f"`repro profile --output {baseline_path}`", file=sys.stderr)
        return 2
    baseline = load_profile_doc(baseline_path)
    if args.current:
        current = load_profile_doc(args.current)
    else:
        current = collect_current_for(baseline)
    report = compare_profiles(current, baseline)
    print(report.table(only_interesting=not args.full))
    if args.output:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_doc(), indent=2) + "\n")
        print(f"wrote {out}")
    return 0 if report.passed else 1


def _cmd_tcb(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.drivers.i2s_driver import I2sDriver
    from repro.kernel.kernel import I2sCharDevice, Kernel
    from repro.peripherals.audio import ToneSource
    from repro.peripherals.i2s import I2sBus, I2sController
    from repro.peripherals.microphone import DigitalMicrophone
    from repro.tcb.analyze import TcbAnalyzer
    from repro.tz.machine import TrustZoneMachine
    from repro.tz.memory import MemoryRegion, SecurityAttr

    machine = TrustZoneMachine()
    region = machine.memory.add_region(
        MemoryRegion("i2s_mmio", 0x0400_0000, 0x1000,
                     SecurityAttr.NONSECURE, device=True)
    )
    controller = I2sController(machine.clock, machine.trace)
    machine.memory.attach_mmio("i2s_mmio", controller)
    I2sBus(controller, DigitalMicrophone(ToneSource(), fmt=controller.format))
    kernel = Kernel(machine)
    kernel.register_device(
        "/dev/snd/i2s0",
        I2sCharDevice(I2sDriver(kernel.driver_host, controller, region)),
    )

    kernel.tracer.start("record")
    fd = kernel.sys_open("/dev/snd/i2s0")
    kernel.sys_ioctl(fd, "OPEN_CAPTURE", 128)
    kernel.sys_ioctl(fd, "START")
    raw = kernel.sys_read(fd, 512)
    kernel.sys_ioctl(fd, "POINTER")
    kernel.device("/dev/snd/i2s0").driver.encode_chunk(
        np.frombuffer(raw, dtype="<i2").copy()
    )
    kernel.sys_ioctl(fd, "STOP")
    kernel.sys_ioctl(fd, "CLOSE_PCM")
    kernel.sys_close(fd)
    session = kernel.tracer.stop()

    plan = TcbAnalyzer(I2sDriver).analyze(
        [session], task="record",
        always_keep=frozenset({"irq_handler", "_handle_overrun"}),
    )
    r = plan.report
    print(f"full driver  : {r.functions_total} functions, {r.loc_total} LoC")
    print(f"minimized    : {r.functions_kept} functions, {r.loc_kept} LoC")
    print(f"reduction    : {r.function_reduction_pct:.1f}% functions, "
          f"{r.loc_reduction_pct:.1f}% LoC")
    for row in r.rows():
        print(f"  {row['subsystem']:10s} {row['loc_kept']:>5d}/"
              f"{row['loc_total']:<5d} LoC kept")

    # Static complement: driver functions the TA can reach that this
    # traced task never executed (the dead-TCB cross-check).
    from repro.analysis.deadtcb import compute_dead_tcb
    from repro.analysis.modgraph import load_project
    from repro.analysis.worlds import DEFAULT_WORLD_MAP

    project = load_project(pathlib.Path(__file__).resolve().parent)
    dead = compute_dead_tcb(
        project, DEFAULT_WORLD_MAP, I2sDriver, dynamic_hit=plan.keep
    )
    print(f"dead TCB     : {len(dead.dead)}/{len(dead.static_reachable)} "
          f"statically reachable functions never traced "
          f"({dead.dead_loc} LoC)")
    for fn in dead.dead:
        print(f"  dead       {fn} ({dead.loc.get(fn, 0)} LoC)")

    # Same cross-check for the USB audio driver, whose read path the
    # hot-path benchmark now exercises: trace the same record task over
    # the (heavier) USB stack and size its never-traced remainder.
    from repro.drivers.hosting import KernelDriverHost
    from repro.drivers.usb_audio_driver import UsbAudioDriver
    from repro.kernel.tracer import FunctionTracer
    from repro.peripherals.usb import UsbAudioMicrophone, UsbBus

    usb_machine = TrustZoneMachine()
    usb_bus = UsbBus(usb_machine.clock, UsbAudioMicrophone(ToneSource()))
    usb_host = KernelDriverHost(usb_machine)
    usb_driver = UsbAudioDriver(usb_host, usb_bus)
    usb_tracer = FunctionTracer()
    usb_host.attach_tracer(usb_tracer)
    usb_tracer.start("record")
    usb_driver.probe()
    usb_driver.pcm_open_capture(128)
    usb_driver.trigger_start()
    usb_driver.read_chunk()
    usb_driver.trigger_stop()
    usb_driver.pcm_close()
    usb_session = usb_tracer.stop()

    usb_plan = TcbAnalyzer(UsbAudioDriver).analyze(
        [usb_session], task="record",
        always_keep=frozenset({"_handle_stall", "clear_halt"}),
    )
    ur = usb_plan.report
    print(f"\nusb driver   : {ur.functions_total} functions, {ur.loc_total} LoC")
    print(f"usb minimized: {ur.functions_kept} functions, {ur.loc_kept} LoC "
          f"({ur.loc_reduction_pct:.1f}% LoC reduction)")
    usb_dead = compute_dead_tcb(
        project, DEFAULT_WORLD_MAP, UsbAudioDriver, dynamic_hit=usb_plan.keep
    )
    print(f"usb dead TCB : {len(usb_dead.dead)}/{len(usb_dead.static_reachable)} "
          f"statically reachable functions never traced "
          f"({usb_dead.dead_loc} LoC)")
    for fn in usb_dead.dead:
        print(f"  dead       {fn} ({usb_dead.loc.get(fn, 0)} LoC)")

    # And for the camera driver, tracing the image-branch capture task
    # (probe → stream → single frame + block capture → teardown).
    from repro.drivers.camera_driver import CameraDriver
    from repro.peripherals.camera import Camera, SyntheticScene
    from repro.sim.rng import SimRng

    cam_machine = TrustZoneMachine()
    camera = Camera(SyntheticScene(SimRng(args.seed)), width=16, height=12)
    cam_host = KernelDriverHost(cam_machine)
    cam_driver = CameraDriver(cam_host, camera)
    cam_tracer = FunctionTracer()
    cam_host.attach_tracer(cam_tracer)
    cam_tracer.start("camera")
    cam_driver.probe()
    cam_driver.stream_on()
    cam_driver.capture_frame()
    cam_driver.capture_frames(4)
    cam_driver.stream_off()
    cam_driver.remove()
    cam_session = cam_tracer.stop()

    cam_plan = TcbAnalyzer(CameraDriver).analyze(
        [cam_session], task="camera",
        always_keep=frozenset({"remove"}),
    )
    cr = cam_plan.report
    print(f"\ncam driver   : {cr.functions_total} functions, {cr.loc_total} LoC")
    print(f"cam minimized: {cr.functions_kept} functions, {cr.loc_kept} LoC "
          f"({cr.loc_reduction_pct:.1f}% LoC reduction)")
    cam_dead = compute_dead_tcb(
        project, DEFAULT_WORLD_MAP, CameraDriver, dynamic_hit=cam_plan.keep
    )
    print(f"cam dead TCB : {len(cam_dead.dead)}/{len(cam_dead.static_reachable)} "
          f"statically reachable functions never traced "
          f"({cam_dead.dead_loc} LoC)")
    for fn in cam_dead.dead:
        print(f"  dead       {fn} ({cam_dead.loc.get(fn, 0)} LoC)")

    # Dead-TCB regression baseline: the committed document the analyzer's
    # T001 gate (and CI) diff against.
    from repro.analysis.deadtcb import (
        build_deadtcb_doc,
        deadtcb_baseline_path,
    )

    dynamic_hits = {
        I2sDriver.NAME: plan.keep,
        UsbAudioDriver.NAME: usb_plan.keep,
        CameraDriver.NAME: cam_plan.keep,
    }
    doc = build_deadtcb_doc(project, DEFAULT_WORLD_MAP, dynamic_hits)
    default_path = deadtcb_baseline_path(project)

    if args.write_deadtcb_baseline is not None:
        out = (
            pathlib.Path(args.write_deadtcb_baseline)
            if args.write_deadtcb_baseline else default_path
        )
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"\nwrote dead-TCB baseline: {out}")

    if args.check_deadtcb_baseline:
        if not default_path.exists():
            print(f"\nno committed dead-TCB baseline at {default_path}; "
                  f"run `repro tcb --write-deadtcb-baseline`",
                  file=sys.stderr)
            return 1
        committed = json.loads(default_path.read_text())
        if committed != doc:
            print("\ndead-TCB baseline drifted from the committed document:",
                  file=sys.stderr)
            for name in sorted(set(doc["drivers"]) | set(
                committed.get("drivers", {})
            )):
                now = doc["drivers"].get(name)
                was = committed.get("drivers", {}).get(name)
                if now != was:
                    print(f"  {name}:", file=sys.stderr)
                    print(f"    committed: {was}", file=sys.stderr)
                    print(f"    current  : {now}", file=sys.stderr)
            print("re-trace and regenerate with "
                  "`repro tcb --write-deadtcb-baseline`", file=sys.stderr)
            return 1
        print("\ndead-TCB baseline matches the committed document")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.runner import DEFAULT_BASELINE_PATH, run_analysis
    from repro.analysis.worlds import DEFAULT_WORLD_MAP, load_world_map

    root = (
        pathlib.Path(args.root)
        if args.root
        else pathlib.Path(__file__).resolve().parent
    )
    world_map = (
        load_world_map(pathlib.Path(args.world_map))
        if args.world_map else DEFAULT_WORLD_MAP
    )
    expect = (
        [r.strip() for r in args.expect.split(",") if r.strip()]
        if args.expect else None
    )
    baseline = None if (args.no_baseline or expect) else (
        pathlib.Path(args.baseline) if args.baseline else DEFAULT_BASELINE_PATH
    )
    report = run_analysis(
        root, package=args.package, world_map=world_map,
        baseline_path=baseline,
    )
    if args.format == "json":
        text = json.dumps(report.to_doc(), indent=2)
    else:
        text = report.render_text()
    print(text)
    if args.output:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {out}", file=sys.stderr)
    if args.sarif:
        sarif_path = pathlib.Path(args.sarif)
        sarif_path.parent.mkdir(parents=True, exist_ok=True)
        sarif_path.write_text(json.dumps(report.to_sarif(), indent=2) + "\n")
        print(f"wrote {sarif_path}", file=sys.stderr)
    if expect is not None:
        fired = {f.rule for f in report.findings}
        missing = [r for r in expect if r not in fired]
        if missing:
            print(f"expected rules did not fire: {', '.join(missing)} "
                  f"(analyzer self-test over seeded violations FAILED)",
                  file=sys.stderr)
            return 1
        print(f"all expected rules fired: {', '.join(expect)}",
              file=sys.stderr)
        return 0
    status = 0
    if args.fail_on_new and report.new_findings:
        status = 1
    if args.fail_on_stale and report.stale:
        print(f"{len(report.stale)} stale baseline entr"
              f"{'y' if len(report.stale) == 1 else 'ies'} "
              f"(--fail-on-stale)", file=sys.stderr)
        status = 1
    return status


def _cmd_models(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.provision import provision_bundle
    from repro.sim.clock import cycles_to_ms
    from repro.tz.costs import DEFAULT_COSTS

    print(f"{'arch':12s} {'accuracy':>9s} {'params':>8s} {'bytes':>8s} "
          f"{'us/inference':>13s}")
    for arch in ("cnn", "transformer", "hybrid"):
        provisioned = provision_bundle(
            seed=args.seed, architecture=arch, epochs=args.epochs
        )
        model = provisioned.bundle.filter.classifier
        cycles = DEFAULT_COSTS.ml_inference_cycles(
            model.macs_per_inference(), secure=True, int8=False
        )
        print(f"{arch:12s} {provisioned.test_accuracy:>9.3f} "
              f"{model.num_params():>8d} {model.size_bytes():>8d} "
              f"{cycles_to_ms(cycles) * 1e3:>13.2f}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.tz.machine import TrustZoneMachine

    machine = TrustZoneMachine()
    print("memory map:")
    for region in machine.memory.regions():
        attr = machine.memory.tzasc.attr_of(region).value
        kind = "device" if region.device else "memory"
        print(f"  {region.name:12s} 0x{region.base:08x}  "
              f"{region.size // 1024:>8d} KiB  {attr:10s} {kind}")
    costs = machine.costs
    print("\ncost model (cycles):")
    print(f"  world switch (one way)  : {costs.full_world_switch_cycles()}")
    print(f"  TA command dispatch     : {costs.ta_invoke_cycles}")
    print(f"  TA->PTA call            : {costs.pta_invoke_cycles}")
    print(f"  supplicant RPC          : {costs.supplicant_rpc_cycles}")
    print(f"  session open            : {costs.session_open_cycles}")
    print(f"  TLS handshake           : {costs.handshake_cycles}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument grammar."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Enhancing IoT Security and Privacy "
                    "with TEEs and ML' (DSN 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the Fig. 1 pipeline on a sample")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--utterances", type=int, default=10)
    demo.set_defaults(func=_cmd_demo)

    privacy = sub.add_parser("privacy", help="secure vs baseline leak audit")
    privacy.add_argument("--seed", type=int, default=7)
    privacy.add_argument("--utterances", type=int, default=12)
    privacy.set_defaults(func=_cmd_privacy)

    profile = sub.add_parser(
        "profile", help="per-stage cycle/energy profile, secure vs baseline"
    )
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--utterances", type=int, default=8)
    profile.add_argument(
        "--continuous", action="store_true",
        help="drive the secure pipeline in continuous-capture mode",
    )
    profile.add_argument(
        "--output", default=None,
        help="JSON report path (default: benchmarks/results/profile.json "
             "under the repo root; empty string to skip writing)",
    )
    profile.set_defaults(func=_cmd_profile)

    fleet = sub.add_parser(
        "fleet", help="simulate N devices and merge their telemetry"
    )
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--devices", type=int, default=8)
    fleet.add_argument(
        "--utterances", type=int, default=6,
        help="base workload size per device (varies +0..2 across the fleet)",
    )
    fleet.add_argument(
        "--shards", type=int, default=1,
        help="co-simulate the roster across N worker processes; the "
             "merged report is byte-identical to --shards 1",
    )
    fleet.add_argument(
        "--max-workers", type=int, default=None,
        help="cap concurrent shard workers (default: one per shard)",
    )
    fleet.add_argument(
        "--output", default="",
        help="write the fleet JSON document here (empty = print only)",
    )
    fleet.add_argument(
        "--metrics-out", default="",
        help="write the merged registry as OpenMetrics text here",
    )
    fleet.add_argument(
        "--chaos", action="store_true",
        help="inject secure-world faults (TA panics, heap/PTA/DMA/storage) "
             "on every device and run the TAs supervised",
    )
    fleet.add_argument(
        "--overload", action="store_true",
        help="starve the cloud admission tier (token buckets + tiny tenant "
             "queues) so devices see Throttled verdicts and spill into "
             "their sealed store-and-forward queues",
    )
    fleet.add_argument(
        "--client-crashes", action="store_true",
        help="crash/restart the normal-world client app mid-run on every "
             "device; recovery comes from the TA's sealed checkpoint + "
             "queue via CMD_RESUME (runs the TAs supervised)",
    )
    fleet.add_argument(
        "--sample-rate", default="1",
        help="telemetry sampling: keep 1-in-k latency/histogram samples "
             "per device (weighted so merged quantiles stay unbiased); "
             "an integer k, or 'auto' to pick k from each device's "
             "network profile",
    )
    fleet.add_argument(
        "--traces", default="",
        help="write the fleet-wide correlated trace timeline (JSONL, one "
             "doc per span, trace ids thread device->relay->cloud) here; "
             "enables trace-id stamping",
    )
    fleet.add_argument(
        "--trace-chrome", default="",
        help="write the fleet timeline as a Chrome trace (one track per "
             "device, load in about://tracing or Perfetto) here; enables "
             "trace-id stamping",
    )
    fleet.set_defaults(func=_cmd_fleet)

    health = sub.add_parser(
        "health", help="evaluate SLO rules on one device; dump on violation",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes (mirrors `repro compare`):\n"
            "  0  every rule holds, no burn rate firing, nothing stalled\n"
            "  1  SLO violation, firing burn rate, or watchdog stall\n"
            "  2  NO DATA only: a rule's metric was never recorded, or a\n"
            "     burn window had no usable snapshots"
        ),
    )
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--utterances", type=int, default=8)
    health.add_argument(
        "--fault-profile", default="clean",
        choices=("clean", "light", "lossy", "congested"),
        help="network conditions for the device under test",
    )
    health.add_argument(
        "--latency-budget-ms", type=float, default=1000.0,
        help="p99 end-to-end latency SLO in simulated milliseconds",
    )
    health.add_argument(
        "--relay-success-min", type=float, default=0.9,
        help="minimum immediate-delivery rate over forwarded decisions",
    )
    health.add_argument(
        "--max-queue-depth", type=int, default=4,
        help="maximum store-and-forward backlog",
    )
    health.add_argument(
        "--flight-capacity", type=int, default=256,
        help="flight-recorder ring size (spans)",
    )
    health.add_argument(
        "--dump", default=None,
        help="write the flight-recorder JSONL here on violation "
             "(default: benchmarks/results/health_flight.jsonl under the "
             "repo root; empty string to skip writing)",
    )
    health.add_argument(
        "--burn-rate", action="store_true",
        help="additionally evaluate multi-window error-budget burn rates "
             "over the device's metric-snapshot ring (rules with an "
             "hourly budget only)",
    )
    health.add_argument(
        "--window-hours", type=float, default=1.0,
        help="slow burn window in simulated hours (the fast window is "
             "1/12th of it, SRE-style); only with --burn-rate",
    )
    health.add_argument(
        "--burn-factor", type=float, default=1.0,
        help="burn-rate threshold: fire when BOTH windows burn at >= "
             "this multiple of the budget",
    )
    health.add_argument(
        "--trace-ids", action="store_true",
        help="stamp deterministic per-utterance trace ids through spans "
             "and relay sends (adds wire bytes; decisions unchanged)",
    )
    health.add_argument(
        "--trace-only", action="store_true",
        help="on violation, narrow the flight dump to the offending "
             "trace's spans (needs --trace-ids)",
    )
    health.add_argument(
        "--chaos", action="store_true",
        help="inject secure-world faults and run the TA supervised",
    )
    health.add_argument(
        "--recovery-budget-ms", type=float, default=50.0,
        help="p99 TA panic-to-recovered SLO in simulated milliseconds "
             "(gated: only applies when restarts happened)",
    )
    health.add_argument(
        "--route-alerts", action=argparse.BooleanOptionalAction, default=True,
        help="on violation, ship the health report through the TA's "
             "secure relay (sealed store-and-forward on outage)",
    )
    health.set_defaults(func=_cmd_health)

    compare = sub.add_parser(
        "compare", help="perf-regression gate against a committed baseline"
    )
    compare.add_argument(
        "--baseline", default=str(_DEFAULT_BASELINE),
        help="baseline profile.json (committed budget)",
    )
    compare.add_argument(
        "--current", default="",
        help="existing profile.json to gate (default: re-measure with the "
             "baseline's seed/utterances/mode)",
    )
    compare.add_argument(
        "--output", default="",
        help="write the comparison JSON report here",
    )
    compare.add_argument(
        "--full", action="store_true",
        help="show every row, not just regressions",
    )
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser(
        "trace", help="dump spans (or raw trace events) from one secure run"
    )
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--utterances", type=int, default=4)
    trace.add_argument(
        "--continuous", action="store_true",
        help="run in continuous-capture mode",
    )
    trace.add_argument(
        "--events", action="store_true",
        help="dump raw TraceLog events instead of spans",
    )
    trace.add_argument(
        "--category", default=None,
        help="filter to one category subtree (e.g. stage.secure, rpc, tz)",
    )
    trace.add_argument(
        "--format", choices=("jsonl", "chrome"), default="jsonl",
        help="span output format (chrome = trace_event JSON for Perfetto)",
    )
    trace.add_argument(
        "--limit", type=int, default=200,
        help="max lines to print (0 = unlimited)",
    )
    trace.set_defaults(func=_cmd_trace)

    analyze = sub.add_parser(
        "analyze",
        help="world-boundary static analysis (layering, taint, lints)",
    )
    analyze.add_argument(
        "--root", default=None,
        help="package directory to analyze (default: the installed "
             "repro package)",
    )
    analyze.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default: the committed "
             "analysis/baseline.json)",
    )
    analyze.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding as new",
    )
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    analyze.add_argument(
        "--output", default=None,
        help="also write the report to this file",
    )
    analyze.add_argument(
        "--fail-on-new", action="store_true",
        help="exit 1 if any finding is not in the baseline (the CI gate)",
    )
    analyze.add_argument(
        "--fail-on-stale", action="store_true",
        help="exit 1 if the baseline carries fingerprints no longer "
             "produced (dead suppressions)",
    )
    analyze.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write a SARIF 2.1.0 document for code-scanning upload",
    )
    analyze.add_argument(
        "--package", default="repro",
        help="dotted package name of --root (default: repro)",
    )
    analyze.add_argument(
        "--world-map", default=None, metavar="PATH",
        help="world-map JSON for non-default packages (fixtures)",
    )
    analyze.add_argument(
        "--expect", default=None, metavar="RULES",
        help="comma-separated rule ids that MUST fire; exit 1 if any is "
             "missing (self-test over seeded fixtures; skips the baseline)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    tcb = sub.add_parser(
        "tcb", help="trace-and-strip the I2S/USB/camera drivers"
    )
    tcb.add_argument("--seed", type=int, default=7)
    tcb.add_argument(
        "--write-deadtcb-baseline", nargs="?", const="", default=None,
        metavar="PATH",
        help="write the per-driver dead-TCB baseline JSON from this run's "
             "traces (default path: the committed "
             "analysis/deadtcb_baseline.json)",
    )
    tcb.add_argument(
        "--check-deadtcb-baseline", action="store_true",
        help="recompute the dead-TCB document and exit 1 if it drifted "
             "from the committed baseline (the CI gate)",
    )
    tcb.set_defaults(func=_cmd_tcb)

    models = sub.add_parser("models", help="classifier architecture table")
    models.add_argument("--seed", type=int, default=7)
    models.add_argument("--epochs", type=int, default=5)
    models.set_defaults(func=_cmd_models)

    info = sub.add_parser("info", help="platform and cost-model summary")
    info.set_defaults(func=_cmd_info)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly like
        # any well-behaved CLI.
        import os

        os.close(sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
