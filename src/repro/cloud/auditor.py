"""Leak auditing: the evaluation's privacy measurement.

Given the ground-truth utterance stream and the three adversarial vantage
points — the cloud's transcript store, the on-device memory attacker's
PCM captures, and the network eavesdropper's wire log — the auditor
computes the privacy/utility numbers of experiment F2:

* **cloud leakage**: fraction of *sensitive* utterances whose transcript
  reached the provider,
* **utility**: fraction of *benign* utterances that got through (the
  assistant is useless if filtering drops everything),
* **device leakage**: sensitive utterances recoverable from attacker
  memory captures (decoded with the reference ASR),
* **wire leakage**: sensitive transcripts readable in network traffic.

Transcript matching is fuzzy (normalized-word Jaccard ≥ 0.6) so ASR noise
does not mask a real leak.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.asr import MatchedFilterAsr
from repro.ml.dataset import Utterance
from repro.ml.tokenizer import normalize
from repro.peripherals.codec import pcm16_decode


def transcript_match(reference: str, candidate: str, threshold: float = 0.6) -> bool:
    """Fuzzy match: word-set Jaccard similarity above ``threshold``."""
    ref = set(normalize(reference))
    cand = set(normalize(candidate))
    if not ref:
        return not cand
    union = ref | cand
    return len(ref & cand) / len(union) >= threshold


def transcript_contained(
    reference: str, candidate: str, threshold: float = 0.7
) -> bool:
    """Containment match: most of the reference's words appear in the
    candidate.  The right metric for attacker captures, which are often a
    *superset* of one utterance (a reused buffer carries stale tails of
    earlier audio) — symmetric similarity would under-count real leaks.
    """
    ref = set(normalize(reference))
    if not ref:
        return False
    cand = set(normalize(candidate))
    return len(ref & cand) / len(ref) >= threshold


@dataclass(frozen=True)
class LeakReport:
    """Privacy/utility outcome for one pipeline run."""

    sensitive_total: int
    sensitive_leaked_cloud: int
    benign_total: int
    benign_delivered: int
    sensitive_leaked_device: int
    sensitive_leaked_wire: int
    unaddressed_total: int = 0
    unaddressed_leaked_cloud: int = 0

    @property
    def cloud_leak_rate(self) -> float:
        """Sensitive utterances reaching the provider (lower is better)."""
        if self.sensitive_total == 0:
            return 0.0
        return self.sensitive_leaked_cloud / self.sensitive_total

    @property
    def utility_rate(self) -> float:
        """Benign utterances delivered (higher is better)."""
        if self.benign_total == 0:
            return 1.0
        return self.benign_delivered / self.benign_total

    @property
    def device_leak_rate(self) -> float:
        """Sensitive utterances recoverable by the on-device attacker."""
        if self.sensitive_total == 0:
            return 0.0
        return self.sensitive_leaked_device / self.sensitive_total

    @property
    def wire_leak_rate(self) -> float:
        """Sensitive transcripts readable on the wire."""
        if self.sensitive_total == 0:
            return 0.0
        return self.sensitive_leaked_wire / self.sensitive_total

    @property
    def accidental_leak_rate(self) -> float:
        """Overheard (unaddressed) utterances reaching the provider —
        the paper's motivating 2019 incident class."""
        if self.unaddressed_total == 0:
            return 0.0
        return self.unaddressed_leaked_cloud / self.unaddressed_total


@dataclass
class LeakAuditor:
    """Computes a :class:`LeakReport` from the adversarial evidence."""

    ground_truth: list[Utterance]
    reference_asr: MatchedFilterAsr | None = None
    _device_transcripts: list[str] = field(default_factory=list)

    def decode_device_captures(self, captures: list[bytes]) -> list[str]:
        """Decode attacker PCM captures with the reference ASR.

        A capture that is not valid PCM (odd length, ciphertext garbage)
        decodes to noise and simply will not match any transcript.
        """
        if self.reference_asr is None:
            raise ValueError("auditor has no reference ASR for PCM decoding")
        out = []
        for blob in captures:
            if len(blob) < 2:
                continue
            if len(blob) % 2:
                blob = blob[:-1]
            pcm = pcm16_decode(blob)
            if not len(pcm) or not np.any(pcm):
                continue
            text = self.reference_asr.transcribe(pcm)
            if text:
                out.append(text)
        self._device_transcripts.extend(out)
        return out

    def report(
        self,
        cloud_transcripts: list[str],
        wire_bytes: list[bytes] | None = None,
    ) -> LeakReport:
        """Score every ground-truth utterance against the evidence."""
        wire_text = b" ".join(wire_bytes or []).decode("utf-8", errors="replace")
        sensitive_total = benign_total = 0
        leaked_cloud = delivered = leaked_device = leaked_wire = 0
        unaddressed_total = unaddressed_leaked = 0
        for utt in self.ground_truth:
            in_cloud = any(
                transcript_match(utt.text, t) for t in cloud_transcripts
            )
            if not utt.addressed:
                unaddressed_total += 1
                if in_cloud:
                    unaddressed_leaked += 1
            if utt.sensitive:
                sensitive_total += 1
                if in_cloud:
                    leaked_cloud += 1
                if any(
                    transcript_contained(utt.text, t)
                    for t in self._device_transcripts
                ):
                    leaked_device += 1
                if self._wire_match(utt.text, wire_text):
                    leaked_wire += 1
            else:
                benign_total += 1
                if in_cloud:
                    delivered += 1
        return LeakReport(
            sensitive_total=sensitive_total,
            sensitive_leaked_cloud=leaked_cloud,
            benign_total=benign_total,
            benign_delivered=delivered,
            sensitive_leaked_device=leaked_device,
            sensitive_leaked_wire=leaked_wire,
            unaddressed_total=unaddressed_total,
            unaddressed_leaked_cloud=unaddressed_leaked,
        )

    @staticmethod
    def _wire_match(reference: str, wire_text: str) -> bool:
        """A transcript is wire-readable if most of its words appear."""
        words = normalize(reference)
        if not words:
            return False
        hits = sum(1 for w in words if w in wire_text)
        return hits / len(words) >= 0.6

    def report_by_category(
        self, cloud_transcripts: list[str]
    ) -> dict[str, dict[str, int]]:
        """Cloud leakage broken down by utterance category.

        Answers the deployment question a flat rate hides: *which kind* of
        sensitive content slips through (credentials leaking is a very
        different incident from location leaking).
        """
        out: dict[str, dict[str, int]] = {}
        for utt in self.ground_truth:
            bucket = out.setdefault(
                utt.category.value, {"total": 0, "reached_cloud": 0}
            )
            bucket["total"] += 1
            if any(transcript_match(utt.text, t) for t in cloud_transcripts):
                bucket["reached_cloud"] += 1
        return out
