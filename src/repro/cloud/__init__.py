"""The untrusted cloud.

The adversary at the far end of Fig. 1: a voice service that faithfully
implements the AVS-style protocol *and records everything it receives* —
exactly the behaviour behind the 2019 assistant-recording leaks the paper
opens with.  :class:`~repro.cloud.auditor.LeakAuditor` turns the cloud's
records (plus the on-device attack captures) into the leakage metrics of
experiment F2.
"""

from repro.cloud.auditor import LeakAuditor, LeakReport
from repro.cloud.service import VoiceCloudService

__all__ = ["LeakAuditor", "LeakReport", "VoiceCloudService"]
