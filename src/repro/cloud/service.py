"""The cloud voice service (honest-but-curious adversary).

Terminates TLS, speaks the AVS-style protocol, answers every Recognize
with a directive — and appends every transcript it ever sees to
:attr:`received_transcripts`.  Registered as a network endpoint with the
supplicant's :class:`~repro.optee.supplicant.NetworkService`.

A ``plaintext_port`` variant accepts unencrypted events, modelling the
baseline device that sends raw data; the wire eavesdropper sees those
bytes in the clear.

Ingestion tier (production shape)
---------------------------------

Passing an :class:`IngestionConfig` turns the handler into a sharded,
multi-tenant ingestion service: every Recognize gets an *admission
verdict* instead of unconditional acceptance.  Tenants (devices) hash to
shards; each tenant owns a token bucket (rate limit) and a bounded
pending queue.  An event that finds tokens and queue space is admitted —
its dedup key registers *at admission*, so a retry of an
admitted-but-uncommitted event is suppressed exactly like a committed one
— and the reply is byte-identical to the legacy accepted reply.  An
event that finds neither is answered ``{"directive": "Throttled",
"retryAfterCycles": N}`` with a deterministic hint derived from the
bucket's refill rate and the tenant's backlog; nothing registers, so the
device's later re-send (same dialog id, higher attempt) is admitted
normally.  Admitted events *commit* (append to :attr:`received`) as the
service's modelled drain loop catches up — driven by the simulation
clock at ``service_cycles_per_record`` — or all at once via
:meth:`flush` at end of run.

With ``ingestion=None`` (the default) the legacy single-queue behaviour
is preserved exactly, byte for byte — the ingestion tier must be
opt-in so the pre-existing wire and decision baselines stay pinned.
"""

from __future__ import annotations

import json
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.errors import RecordError
from repro.relay.avs import AvsEvent
from repro.relay.tls import TlsServer
from repro.sim.rng import SimRng


@dataclass
class CloudRecord:
    """One transcript as the cloud received it.

    ``trace_id`` is the device-derived correlation id carried on the
    event (empty for trace-off senders) — it lets an operator join this
    record with the device-side spans of the same utterance.
    """

    transcript: str
    dialog_id: int
    encrypted_transport: bool
    attempt: int = 1
    device_id: str = ""
    trace_id: str = ""


@dataclass(frozen=True)
class IngestionConfig:
    """Sizing of the sharded multi-tenant admission tier.

    ``shards`` partitions tenants (by a deterministic CRC of the device
    id — never Python's salted ``hash``); each tenant gets a token
    bucket of ``bucket_capacity`` tokens refilling one token per
    ``refill_cycles_per_token`` cycles, plus a pending queue bounded at
    ``tenant_queue_depth``.  The drain loop commits one pending record
    per ``service_cycles_per_record`` cycles per shard.  Admission
    latency is modelled (not charged to the caller) as
    ``admission_base_cycles + admission_cycles_per_pending × backlog``.
    """

    shards: int = 4
    tenant_queue_depth: int = 8
    bucket_capacity: int = 4
    refill_cycles_per_token: int = 2_000_000
    service_cycles_per_record: int = 500_000
    admission_base_cycles: int = 2_000
    admission_cycles_per_pending: int = 150

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.tenant_queue_depth < 1:
            raise ValueError("tenant_queue_depth must be at least 1")
        if self.bucket_capacity < 1:
            raise ValueError("bucket_capacity must be at least 1")
        for name in (
            "refill_cycles_per_token",
            "service_cycles_per_record",
            "admission_base_cycles",
            "admission_cycles_per_pending",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def overload(cls) -> "IngestionConfig":
        """The ``--overload`` profile: capacity far below offered load.

        One token refills per ~2 s of simulated time (4e9 cycles at the
        2 GHz sim clock — much longer than any utterance cadence) and
        tenants queue at most two pending events, so after the first
        admission a device slams into Throttled verdicts — the profile
        the device-side backpressure loop (server-directed backoff,
        sealed queue, bounded-depth shedding) is proven against.
        """
        return cls(
            shards=2,
            tenant_queue_depth=2,
            bucket_capacity=1,
            refill_cycles_per_token=4_000_000_000,
            service_cycles_per_record=2_000_000_000,
        )

    @classmethod
    def unthrottled(cls) -> "IngestionConfig":
        """An ingestion tier so large it never says Throttled.

        Used by the equivalence proofs: the admission machinery runs on
        every event, yet every verdict is "accepted" — so wire bytes and
        decisions must match a legacy (``ingestion=None``) run exactly.
        """
        return cls(
            shards=4,
            tenant_queue_depth=1_000_000,
            bucket_capacity=1_000_000,
            refill_cycles_per_token=1,
            service_cycles_per_record=1,
        )


def tenant_shard(device_id: str, shards: int) -> int:
    """Deterministic tenant→shard mapping (CRC32, never salted hash)."""
    return zlib.crc32(device_id.encode()) % shards


@dataclass
class _TenantState:
    """One tenant's bucket and pending queue inside a shard."""

    tokens: float
    last_refill: int
    pending: deque = field(default_factory=deque)


class _IngestShard:
    """One shard: tenant states plus a round-robin drain cursor."""

    def __init__(self, config: IngestionConfig):
        self.config = config
        self.tenants: dict[str, _TenantState] = {}
        # Tenant ids in first-seen order; the drain loop round-robins
        # over this list so no tenant starves behind a noisy neighbour.
        self.order: list[str] = []
        self.drain_cursor = 0
        self.last_drain_cycle: int | None = None

    def tenant(self, device_id: str, now: int) -> _TenantState:
        state = self.tenants.get(device_id)
        if state is None:
            state = _TenantState(
                tokens=float(self.config.bucket_capacity), last_refill=now
            )
            self.tenants[device_id] = state
            self.order.append(device_id)
        return state

    def refill(self, state: _TenantState, now: int) -> None:
        """Advance the token bucket to ``now`` (integer-exact)."""
        elapsed = max(0, now - state.last_refill)
        if self.config.refill_cycles_per_token <= 0:
            state.tokens = float(self.config.bucket_capacity)
            state.last_refill = now
            return
        earned = elapsed // self.config.refill_cycles_per_token
        if earned:
            state.tokens = min(
                float(self.config.bucket_capacity), state.tokens + earned
            )
            state.last_refill += earned * self.config.refill_cycles_per_token

    def depth(self) -> int:
        """Pending (admitted, uncommitted) records across the shard."""
        return sum(len(t.pending) for t in self.tenants.values())

    def pop_next(self):
        """Round-robin pop of the oldest pending record, or ``None``."""
        if not self.order:
            return None
        for _ in range(len(self.order)):
            tenant = self.order[self.drain_cursor % len(self.order)]
            self.drain_cursor = (self.drain_cursor + 1) % len(self.order)
            pending = self.tenants[tenant].pending
            if pending:
                return pending.popleft()
        return None


class VoiceCloudService:
    """AVS-flavoured endpoint with adversarial logging."""

    HOST = "avs.cloud.example"
    TLS_PORT = 443
    PLAINTEXT_PORT = 80

    def __init__(self, rng: SimRng, clock=None, metrics=None, ingestion=None):
        """``clock``/``metrics``/``ingestion`` enable the admission tier.

        ``ingestion`` (an :class:`IngestionConfig`) requires ``clock`` (a
        :class:`~repro.sim.clock.SimClock`, read-only — the service never
        advances it); ``metrics`` (a
        :class:`~repro.obs.metrics.MetricsRegistry`) is optional and
        feeds the ``cloud.ingest.*`` namespace.  All three default off,
        which preserves the legacy handler byte for byte.
        """
        self.tls = TlsServer(rng.fork("tls-server"))
        self.tls.set_handler(lambda pt: self._handle_event(pt, encrypted=True))
        self.received: list[CloudRecord] = []
        self.events_handled = 0
        # Delivery is at-least-once under an unreliable network: a retry of
        # a dialog id the service already recorded (attempt > 1, same id,
        # same sender) is acknowledged but not recorded again.  The sender
        # identity is part of the key — dialog ids are per-device counters,
        # so two devices legitimately reuse the same id.
        self._seen_dialogs: set[tuple[bool, str, int]] = set()
        self.duplicates_suppressed = 0
        # Device-health alerts (SLO violations, flight-recorder dumps)
        # delivered through the same relay path as transcripts.
        self.alerts: list[dict] = []
        self.ingestion: IngestionConfig | None = ingestion
        self._clock = clock
        self._metrics = metrics
        if ingestion is not None and clock is None:
            raise ValueError("ingestion tier requires a clock")
        self._shards = (
            [_IngestShard(ingestion) for _ in range(ingestion.shards)]
            if ingestion is not None
            else []
        )
        self.accepted = 0
        self.throttled = 0
        self.committed = 0

    # -- endpoints (supplicant NetworkService interface) ------------------------

    def receive(self, payload: bytes) -> bytes:
        """TLS endpoint: handshake messages and records."""
        return self.tls.handle(payload)

    @property
    def plaintext_endpoint(self) -> "PlaintextEndpoint":
        """The port-80 endpoint accepting raw AVS events (baseline path)."""
        return PlaintextEndpoint(self)

    # -- ingestion tier ---------------------------------------------------------

    def _inc(self, name: str, value: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, value)

    def pending_depth(self) -> int:
        """Admitted-but-uncommitted records across every shard."""
        return sum(shard.depth() for shard in self._shards)

    def _drain_shards(self, now: int) -> None:
        """Commit pending records the modelled drain loop has caught up to.

        Each shard commits one record per ``service_cycles_per_record``
        elapsed cycles, round-robin across its tenants.  Driven lazily
        from event arrivals — the service owns no thread; the simulation
        clock is read, never advanced.
        """
        assert self.ingestion is not None
        per_record = max(1, self.ingestion.service_cycles_per_record)
        for shard in self._shards:
            if shard.last_drain_cycle is None:
                shard.last_drain_cycle = now
                continue
            budget = (now - shard.last_drain_cycle) // per_record
            shard.last_drain_cycle += budget * per_record
            while budget > 0:
                record = shard.pop_next()
                if record is None:
                    break
                self.received.append(record)
                self.committed += 1
                self._inc("cloud.ingest.committed")
                budget -= 1

    def flush(self) -> int:
        """Commit every pending record immediately (end-of-run settle).

        Returns the number committed.  A no-op without an ingestion tier.
        """
        flushed = 0
        for shard in self._shards:
            while True:
                record = shard.pop_next()
                if record is None:
                    break
                self.received.append(record)
                self.committed += 1
                self._inc("cloud.ingest.committed")
                flushed += 1
        return flushed

    def _admit(
        self, record: CloudRecord, key: tuple[bool, str, int]
    ) -> bytes:
        """Admission verdict for one new (non-duplicate) Recognize."""
        assert self.ingestion is not None and self._clock is not None
        config = self.ingestion
        now = int(self._clock.now)
        self._drain_shards(now)
        shard = self._shards[tenant_shard(record.device_id, config.shards)]
        state = shard.tenant(record.device_id, now)
        shard.refill(state, now)
        backlog = len(state.pending)
        if state.tokens < 1.0 or backlog >= config.tenant_queue_depth:
            # Deterministic retry hint: cycles until the bucket earns a
            # token, plus the time the drain loop needs to clear this
            # tenant's backlog — both pure functions of config + state.
            deficit = max(0.0, 1.0 - state.tokens)
            wait = int(deficit * config.refill_cycles_per_token)
            wait += backlog * config.service_cycles_per_record
            self.throttled += 1
            self._inc("cloud.ingest.throttled")
            self._set_depth_gauge()
            return json.dumps(
                {"directive": "Throttled", "retryAfterCycles": max(1, wait)}
            ).encode()
        state.tokens -= 1.0
        # Register at admission, not at commit: a reconnecting device
        # retrying an admitted-but-uncommitted event must be suppressed,
        # or the commit loop would record the decision twice.
        self._seen_dialogs.add(key)
        state.pending.append(record)
        self.accepted += 1
        self._inc("cloud.ingest.accepted")
        if self._metrics is not None:
            self._metrics.observe(
                "cloud.ingest.admission_cycles",
                config.admission_base_cycles
                + config.admission_cycles_per_pending * shard.depth(),
            )
        self._set_depth_gauge()
        # Byte-identical to the legacy accepted reply: the device-side
        # wire-byte baselines must not move when admission always passes.
        return json.dumps(
            {
                "directive": "Response",
                "speech": f"ok: {len(record.transcript)} chars",
            }
        ).encode()

    def _set_depth_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.set("cloud.ingest.queue_depth", self.pending_depth())

    # -- application layer ------------------------------------------------------------

    def _handle_event(self, payload: bytes, encrypted: bool) -> bytes:
        try:
            event = AvsEvent.from_bytes(payload)
        except RecordError:
            return json.dumps({"directive": "error", "reason": "bad event"}).encode()
        self.events_handled += 1
        if event.name == "Recognize":
            transcript = str(event.payload.get("transcript", ""))
            dialog_id = int(event.payload.get("dialogRequestId", -1))
            attempt = int(event.payload.get("attempt", 1))
            device_id = str(event.payload.get("deviceId", ""))
            trace_id = str(event.payload.get("traceId", ""))
            key = (encrypted, device_id, dialog_id)
            if attempt > 1 and key in self._seen_dialogs:
                # Idempotent replay: the sender never saw our first reply.
                self.duplicates_suppressed += 1
                self._inc("cloud.ingest.deduped")
            else:
                record = CloudRecord(
                    transcript=transcript,
                    dialog_id=dialog_id,
                    encrypted_transport=encrypted,
                    attempt=attempt,
                    device_id=device_id,
                    trace_id=trace_id,
                )
                if self.ingestion is not None:
                    return self._admit(record, key)
                self._seen_dialogs.add(key)
                self.received.append(record)
            return json.dumps(
                {"directive": "Response", "speech": f"ok: {len(transcript)} chars"}
            ).encode()
        if event.name == "Alert":
            dialog_id = int(event.payload.get("dialogRequestId", -1))
            attempt = int(event.payload.get("attempt", 1))
            device_id = str(event.payload.get("deviceId", ""))
            key = (encrypted, device_id, dialog_id)
            if attempt > 1 and key in self._seen_dialogs:
                self.duplicates_suppressed += 1
            else:
                self._seen_dialogs.add(key)
                try:
                    doc = json.loads(str(event.payload.get("alert", "{}")))
                except json.JSONDecodeError:
                    doc = {"malformed": True}
                self.alerts.append(doc)
            return json.dumps({"directive": "AlertAck"}).encode()
        return json.dumps({"directive": "Ack"}).encode()

    # -- adversarial view -----------------------------------------------------------------

    @property
    def received_transcripts(self) -> list[str]:
        """Every transcript the provider has stored."""
        return [r.transcript for r in self.received]


@dataclass
class PlaintextEndpoint:
    """Port-80 face of the service: raw AVS events, no TLS."""

    service: VoiceCloudService

    def receive(self, payload: bytes) -> bytes:
        """Handle one unencrypted AVS event."""
        return self.service._handle_event(payload, encrypted=False)
