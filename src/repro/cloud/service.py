"""The cloud voice service (honest-but-curious adversary).

Terminates TLS, speaks the AVS-style protocol, answers every Recognize
with a directive — and appends every transcript it ever sees to
:attr:`received_transcripts`.  Registered as a network endpoint with the
supplicant's :class:`~repro.optee.supplicant.NetworkService`.

A ``plaintext_port`` variant accepts unencrypted events, modelling the
baseline device that sends raw data; the wire eavesdropper sees those
bytes in the clear.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import RecordError
from repro.relay.avs import AvsEvent
from repro.relay.tls import TlsServer
from repro.sim.rng import SimRng


@dataclass
class CloudRecord:
    """One transcript as the cloud received it.

    ``trace_id`` is the device-derived correlation id carried on the
    event (empty for trace-off senders) — it lets an operator join this
    record with the device-side spans of the same utterance.
    """

    transcript: str
    dialog_id: int
    encrypted_transport: bool
    attempt: int = 1
    device_id: str = ""
    trace_id: str = ""


class VoiceCloudService:
    """AVS-flavoured endpoint with adversarial logging."""

    HOST = "avs.cloud.example"
    TLS_PORT = 443
    PLAINTEXT_PORT = 80

    def __init__(self, rng: SimRng):
        self.tls = TlsServer(rng.fork("tls-server"))
        self.tls.set_handler(lambda pt: self._handle_event(pt, encrypted=True))
        self.received: list[CloudRecord] = []
        self.events_handled = 0
        # Delivery is at-least-once under an unreliable network: a retry of
        # a dialog id the service already recorded (attempt > 1, same id,
        # same sender) is acknowledged but not recorded again.  The sender
        # identity is part of the key — dialog ids are per-device counters,
        # so two devices legitimately reuse the same id.
        self._seen_dialogs: set[tuple[bool, str, int]] = set()
        self.duplicates_suppressed = 0
        # Device-health alerts (SLO violations, flight-recorder dumps)
        # delivered through the same relay path as transcripts.
        self.alerts: list[dict] = []

    # -- endpoints (supplicant NetworkService interface) ------------------------

    def receive(self, payload: bytes) -> bytes:
        """TLS endpoint: handshake messages and records."""
        return self.tls.handle(payload)

    @property
    def plaintext_endpoint(self) -> "PlaintextEndpoint":
        """The port-80 endpoint accepting raw AVS events (baseline path)."""
        return PlaintextEndpoint(self)

    # -- application layer ------------------------------------------------------------

    def _handle_event(self, payload: bytes, encrypted: bool) -> bytes:
        try:
            event = AvsEvent.from_bytes(payload)
        except RecordError:
            return json.dumps({"directive": "error", "reason": "bad event"}).encode()
        self.events_handled += 1
        if event.name == "Recognize":
            transcript = str(event.payload.get("transcript", ""))
            dialog_id = int(event.payload.get("dialogRequestId", -1))
            attempt = int(event.payload.get("attempt", 1))
            device_id = str(event.payload.get("deviceId", ""))
            trace_id = str(event.payload.get("traceId", ""))
            key = (encrypted, device_id, dialog_id)
            if attempt > 1 and key in self._seen_dialogs:
                # Idempotent replay: the sender never saw our first reply.
                self.duplicates_suppressed += 1
            else:
                self._seen_dialogs.add(key)
                self.received.append(
                    CloudRecord(
                        transcript=transcript,
                        dialog_id=dialog_id,
                        encrypted_transport=encrypted,
                        attempt=attempt,
                        device_id=device_id,
                        trace_id=trace_id,
                    )
                )
            return json.dumps(
                {"directive": "Response", "speech": f"ok: {len(transcript)} chars"}
            ).encode()
        if event.name == "Alert":
            dialog_id = int(event.payload.get("dialogRequestId", -1))
            attempt = int(event.payload.get("attempt", 1))
            device_id = str(event.payload.get("deviceId", ""))
            key = (encrypted, device_id, dialog_id)
            if attempt > 1 and key in self._seen_dialogs:
                self.duplicates_suppressed += 1
            else:
                self._seen_dialogs.add(key)
                try:
                    doc = json.loads(str(event.payload.get("alert", "{}")))
                except json.JSONDecodeError:
                    doc = {"malformed": True}
                self.alerts.append(doc)
            return json.dumps({"directive": "AlertAck"}).encode()
        return json.dumps({"directive": "Ack"}).encode()

    # -- adversarial view -----------------------------------------------------------------

    @property
    def received_transcripts(self) -> list[str]:
        """Every transcript the provider has stored."""
        return [r.transcript for r in self.received]


@dataclass
class PlaintextEndpoint:
    """Port-80 face of the service: raw AVS events, no TLS."""

    service: VoiceCloudService

    def receive(self, payload: bytes) -> bytes:
        """Handle one unencrypted AVS event."""
        return self.service._handle_event(payload, encrypted=False)
