"""Audio sources and formats.

An :class:`AudioSource` produces mono int16 PCM on demand; the microphone
pulls from it.  Sources included here are synthetic test signals; the
speech-bearing source is built by the pipeline from the vocoder in
:mod:`repro.ml.asr` via :class:`BufferSource`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


@dataclass(frozen=True)
class AudioFormat:
    """PCM stream parameters (defaults match the Knowles I²S mic class)."""

    sample_rate: int = 16_000
    bit_depth: int = 16
    channels: int = 1

    def __post_init__(self) -> None:
        if self.bit_depth not in (16, 24, 32):
            raise ValueError(f"unsupported bit depth {self.bit_depth}")
        if self.channels not in (1, 2):
            raise ValueError(f"unsupported channel count {self.channels}")
        if self.sample_rate <= 0:
            raise ValueError("sample rate must be positive")

    @property
    def bytes_per_frame(self) -> int:
        """Bytes of one frame across all channels."""
        return (self.bit_depth // 8) * self.channels


class AudioSource(Protocol):
    """Anything that can produce mono int16 samples on demand."""

    def next_samples(self, n: int) -> np.ndarray:
        """Return exactly ``n`` int16 samples (zero-padded at stream end)."""
        ...

    def exhausted(self) -> bool:
        """True once the source has no real signal left."""
        ...


class SilenceSource:
    """Endless silence (useful for idle-channel tests)."""

    def next_samples(self, n: int) -> np.ndarray:
        """``n`` zero samples."""
        return np.zeros(n, dtype=np.int16)

    def exhausted(self) -> bool:
        """Silence never ends, but carries no signal either."""
        return True


class ToneSource:
    """A pure sine tone (calibration signal)."""

    def __init__(self, freq_hz: float = 440.0, amplitude: float = 0.5,
                 sample_rate: int = 16_000):
        if not 0.0 < amplitude <= 1.0:
            raise ValueError("amplitude must be in (0, 1]")
        self.freq_hz = freq_hz
        self.amplitude = amplitude
        self.sample_rate = sample_rate
        self._phase = 0

    def next_samples(self, n: int) -> np.ndarray:
        """Next ``n`` samples of the tone, phase-continuous."""
        t = (np.arange(n) + self._phase) / self.sample_rate
        self._phase += n
        wave = self.amplitude * np.sin(2 * np.pi * self.freq_hz * t)
        return (wave * 32767).astype(np.int16)

    def exhausted(self) -> bool:
        """A tone generator never runs out."""
        return False


class BufferSource:
    """Plays back a fixed PCM buffer, then silence."""

    def __init__(self, samples: np.ndarray):
        if samples.dtype != np.int16:
            raise ValueError("BufferSource requires int16 samples")
        self._samples = samples
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Samples of real signal left."""
        return max(0, len(self._samples) - self._pos)

    def next_samples(self, n: int) -> np.ndarray:
        """Next ``n`` samples; zero-padded past the end of the buffer."""
        chunk = self._samples[self._pos : self._pos + n]
        self._pos += len(chunk)
        if len(chunk) < n:
            chunk = np.concatenate([chunk, np.zeros(n - len(chunk), dtype=np.int16)])
        return chunk

    def exhausted(self) -> bool:
        """True once playback has consumed the whole buffer."""
        return self._pos >= len(self._samples)
