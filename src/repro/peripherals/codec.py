"""PCM codecs.

The secure driver "securely processes (e.g., encoding an audio signal)"
the captured data before handing it up (paper Section II).  We provide
plain PCM16 packing and G.711 µ-law companding — the classic lightweight
speech codec — so the driver has a real encode step whose cost and
round-trip fidelity tests can check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PeripheralError

_MULAW_MU = 255.0
_MULAW_CLIP = 32635


def pcm16_encode(samples: np.ndarray) -> bytes:
    """Pack int16 samples little-endian."""
    if samples.dtype != np.int16:
        raise PeripheralError(f"pcm16_encode needs int16, got {samples.dtype}")
    return samples.astype("<i2").tobytes()


def pcm16_decode(data: bytes) -> np.ndarray:
    """Unpack little-endian int16 PCM."""
    if len(data) % 2 != 0:
        raise PeripheralError("pcm16 byte stream has odd length")
    return np.frombuffer(data, dtype="<i2").astype(np.int16)


def mulaw_encode(samples: np.ndarray) -> bytes:
    """G.711 µ-law compand int16 samples to one byte each."""
    if samples.dtype != np.int16:
        raise PeripheralError(f"mulaw_encode needs int16, got {samples.dtype}")
    x = np.clip(samples.astype(np.float64), -_MULAW_CLIP, _MULAW_CLIP) / 32768.0
    y = np.sign(x) * np.log1p(_MULAW_MU * np.abs(x)) / np.log1p(_MULAW_MU)
    quantized = ((y + 1.0) / 2.0 * 255.0 + 0.5).astype(np.uint8)
    return quantized.tobytes()


def mulaw_decode(data: bytes) -> np.ndarray:
    """Expand µ-law bytes back to int16 PCM (lossy round trip)."""
    q = np.frombuffer(data, dtype=np.uint8).astype(np.float64)
    y = q / 255.0 * 2.0 - 1.0
    x = np.sign(y) * (np.expm1(np.abs(y) * np.log1p(_MULAW_MU))) / _MULAW_MU
    return (x * 32768.0).clip(-32768, 32767).astype(np.int16)
