"""Digital I²S microphone.

Substitutes for the Knowles I²S-output digital microphone in the paper's
POC: a device on the I²S bus producing int16 PCM frames from whatever
:class:`~repro.peripherals.audio.AudioSource` it is wired to — the speech
vocoder in the pipeline, a tone generator in calibration tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PeripheralError
from repro.peripherals.audio import AudioFormat, AudioSource


class DigitalMicrophone:
    """A mono digital mic clocked by the I²S controller."""

    def __init__(self, source: AudioSource, fmt: AudioFormat | None = None):
        self.source = source
        self.format = fmt or AudioFormat()
        if self.format.channels != 1:
            raise PeripheralError("digital mic model is mono")
        self.frames_read = 0
        self.powered = True

    def power_off(self) -> None:
        """Cut power (a SeCloak-style peripheral kill switch)."""
        self.powered = False

    def power_on(self) -> None:
        """Restore power."""
        self.powered = True

    def read_frames(self, n: int) -> np.ndarray:
        """Produce the next ``n`` int16 samples (zeros when unpowered)."""
        if n < 0:
            raise PeripheralError("cannot read a negative number of frames")
        if not self.powered:
            return np.zeros(n, dtype=np.int16)
        samples = self.source.next_samples(n)
        if samples.dtype != np.int16 or len(samples) != n:
            raise PeripheralError(
                f"audio source returned bad data: dtype={samples.dtype}, "
                f"len={len(samples)} (wanted {n})"
            )
        self.frames_read += n
        return samples

    def swap_source(self, source: AudioSource) -> None:
        """Point the mic at a new audio source (next utterance)."""
        self.source = source
