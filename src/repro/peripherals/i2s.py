"""Inter-IC Sound (I²S) bus and controller.

The paper's POC targets I²S peripherals "because it is lightweight,
contrary to more complex protocols like USB" (Section III).  We model the
protocol at the level a driver interacts with it:

* :class:`I2sBus` — the three-wire serial link (SCK/WS/SD) between the
  controller and one device.  Frame timing follows the Philips spec: each
  frame carries one sample per channel at the configured bit depth, so the
  bit clock is ``sample_rate * bit_depth * channels``.
* :class:`I2sController` — the SoC-side controller as an MMIO register
  file with an RX FIFO, status/overrun semantics, and an optional DMA
  request interface.  Drivers program it exactly like hardware: store to
  CTRL, poll STATUS/FIFO_LEVEL, load from the FIFO register.

The RX FIFO is stored as numpy word blocks (:class:`_WordFifo`) so the
capture hot path moves level-sized arrays instead of one Python integer
per frame.  The FIFO register additionally supports *window reads*: a
single ``4*n``-byte load from the FIFO offset pops ``n`` words in one
MMIO transaction, modelling the burst access a real bus master issues —
this is what lets the driver drain a whole FIFO level per transaction.
"""

from __future__ import annotations

import enum
import struct
from collections import deque

import numpy as np

from repro.errors import BusProtocolError, FifoUnderrunError
from repro.peripherals.audio import AudioFormat
from repro.peripherals.microphone import DigitalMicrophone
from repro.sim.clock import CycleDomain, SimClock
from repro.sim.trace import TraceLog
from repro.tz.memory import MmioHandler


class I2sReg(enum.IntEnum):
    """Register offsets of the I²S controller window."""

    CTRL = 0x00
    STATUS = 0x04
    FIFO = 0x08
    SAMPLE_RATE = 0x0C
    FIFO_LEVEL = 0x10
    FRAME_COUNT = 0x14
    OVERRUN_COUNT = 0x18


class CtrlBits(enum.IntFlag):
    """CTRL register bit assignments."""

    ENABLE = 1 << 0
    RX_ENABLE = 1 << 1
    LOOPBACK = 1 << 2
    FIFO_RESET = 1 << 3


class StatusBits(enum.IntFlag):
    """STATUS register bit assignments."""

    RX_EMPTY = 1 << 0
    RX_FULL = 1 << 1
    OVERRUN = 1 << 2
    ENABLED = 1 << 3


class _WordFifo:
    """RX FIFO backed by numpy word blocks.

    Hardware-equivalent to a ``deque[int]`` of 32-bit words, but pushes
    and pops whole arrays so a level-sized drain is O(blocks), not
    O(words) of Python-level work.
    """

    __slots__ = ("_blocks", "_head", "_len")

    def __init__(self) -> None:
        self._blocks: deque[np.ndarray] = deque()
        self._head = 0  # consumed words of the front block
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, words: np.ndarray) -> None:
        """Append a block of uint32 words."""
        if len(words):
            self._blocks.append(words)
            self._len += len(words)

    def pop(self) -> int:
        """Pop the oldest word (single FIFO-register load)."""
        if not self._len:
            raise FifoUnderrunError("I2S RX FIFO empty")
        block = self._blocks[0]
        word = int(block[self._head])
        self._head += 1
        self._len -= 1
        if self._head == len(block):
            self._blocks.popleft()
            self._head = 0
        return word

    def pop_array(self, max_words: int) -> np.ndarray:
        """Pop up to ``max_words`` oldest words as one uint32 array."""
        n = min(max_words, self._len)
        out = np.empty(n, dtype=np.uint32)
        filled = 0
        while filled < n:
            block = self._blocks[0]
            take = min(len(block) - self._head, n - filled)
            out[filled : filled + take] = block[self._head : self._head + take]
            filled += take
            self._head += take
            self._len -= take
            if self._head == len(block):
                self._blocks.popleft()
                self._head = 0
        return out

    def clear(self) -> None:
        """Drop all buffered words (FIFO_RESET)."""
        self._blocks.clear()
        self._head = 0
        self._len = 0


class I2sBus:
    """The serial link between a controller and one I²S device."""

    def __init__(self, controller: "I2sController", device: DigitalMicrophone):
        if controller.format != device.format:
            raise BusProtocolError(
                f"format mismatch: controller {controller.format} vs "
                f"device {device.format}"
            )
        self.controller = controller
        self.device = device
        controller._attach_bus(self)

    @property
    def bit_clock_hz(self) -> int:
        """SCK frequency implied by the stream format (Philips spec)."""
        fmt = self.controller.format
        # I²S always clocks two word slots (left/right) per frame.
        return fmt.sample_rate * fmt.bit_depth * 2

    def pull_frames(self, n: int) -> np.ndarray:
        """Clock ``n`` frames out of the device (mono int16 samples)."""
        return self.device.read_frames(n)


class I2sController(MmioHandler):
    """Register-level I²S receive controller with an RX FIFO.

    Word format: the FIFO holds 32-bit words, one frame each — the 16-bit
    sample in the low half, the frame sequence number's low bits in the
    high half (a common debug aid in real controllers; also lets tests
    detect dropped frames).
    """

    def __init__(
        self,
        clock: SimClock,
        trace: TraceLog,
        fmt: AudioFormat | None = None,
        fifo_depth: int = 64,
    ):
        self.clock = clock
        self.trace = trace
        self.format = fmt or AudioFormat()
        self.fifo_depth = fifo_depth
        self._fifo = _WordFifo()
        self._ctrl = 0
        self._frame_count = 0
        self._overrun_count = 0
        self._overrun_sticky = False
        self._bus: I2sBus | None = None
        self._irq_callback = None

    def set_irq_callback(self, callback) -> None:
        """Wire the controller's interrupt output (to a GIC line)."""
        self._irq_callback = callback

    # -- wiring ----------------------------------------------------------------

    def _attach_bus(self, bus: I2sBus) -> None:
        if self._bus is not None:
            raise BusProtocolError("controller already attached to a bus")
        self._bus = bus

    # -- hardware behaviour -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when CTRL.ENABLE and CTRL.RX_ENABLE are both set."""
        return bool(self._ctrl & CtrlBits.ENABLE) and bool(
            self._ctrl & CtrlBits.RX_ENABLE
        )

    @property
    def fifo_level(self) -> int:
        """Words currently buffered in the RX FIFO."""
        return len(self._fifo)

    def capture(self, n_frames: int) -> int:
        """Clock ``n_frames`` in from the bus into the RX FIFO.

        Models the passage of real capture time (charged to the peripheral
        clock domain at the sample rate).  Frames that arrive while the
        FIFO is full are *dropped* and the sticky OVERRUN status is set —
        hardware never blocks.  Returns the number of frames accepted.
        """
        if not self.enabled:
            return 0
        if self._bus is None:
            raise BusProtocolError("controller has no bus attached")
        samples = self._bus.pull_frames(n_frames)
        # Real-time capture: n frames take n/sample_rate seconds.
        capture_cycles = int(n_frames * self.clock.freq_hz / self.format.sample_rate)
        self.clock.advance(capture_cycles, CycleDomain.PERIPHERAL)
        was_overrun = self._overrun_sticky
        # Frames past the FIFO's free space are dropped — hardware never
        # blocks.  Packing is vectorized: seq in the high half, sample low.
        accepted = min(self.fifo_depth - len(self._fifo), len(samples))
        dropped = len(samples) - accepted
        if accepted:
            seq = (self._frame_count + np.arange(accepted, dtype=np.int64)) & 0xFFFF
            low = (samples[:accepted].astype(np.int64) & 0xFFFF).astype(np.uint32)
            self._fifo.push((seq.astype(np.uint32) << np.uint32(16)) | low)
            self._frame_count += accepted
        if dropped:
            self._overrun_sticky = True
            self._overrun_count += dropped
        if self._overrun_sticky:
            self.trace.emit(
                self.clock.now, "periph.i2s", "overrun",
                dropped=n_frames - accepted,
            )
            # Edge-triggered interrupt on the first overrun occurrence.
            if not was_overrun and self._irq_callback is not None:
                self._irq_callback()
        return accepted

    def pop_word(self) -> int:
        """Pop one FIFO word (what a FIFO-register load does)."""
        return self._fifo.pop()

    def drain_array(self, max_words: int) -> np.ndarray:
        """Pop up to ``max_words`` as one uint32 array (burst read)."""
        return self._fifo.pop_array(max_words)

    def drain_words(self, max_words: int) -> list[int]:
        """Pop up to ``max_words`` (DMA burst read), as Python ints."""
        return self._fifo.pop_array(max_words).tolist()

    # -- MMIO register file -----------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> bytes:
        """Load from the register file (32-bit registers).

        The FIFO register additionally accepts *window reads*: a single
        ``4*n``-byte load pops ``n`` words in one bus transaction (the
        burst access a real bus master issues when draining a level).
        The whole burst must be backed by buffered words — hardware
        can't conjure frames mid-burst — so a window read larger than
        the current level underruns.
        """
        if offset == I2sReg.FIFO and size > 4:
            if size % 4:
                raise BusProtocolError(
                    f"I2S FIFO window reads are word-multiples (got {size} bytes)"
                )
            n_words = size // 4
            if self.fifo_level < n_words:
                raise FifoUnderrunError(
                    f"I2S FIFO window read of {n_words} words with only "
                    f"{self.fifo_level} buffered"
                )
            return self.drain_array(n_words).astype("<u4").tobytes()
        if size != 4:
            raise BusProtocolError(f"I2S registers are 32-bit (got {size}-byte read)")
        if offset == I2sReg.CTRL:
            value = self._ctrl
        elif offset == I2sReg.STATUS:
            value = self._status()
        elif offset == I2sReg.FIFO:
            value = self.pop_word()
        elif offset == I2sReg.SAMPLE_RATE:
            value = self.format.sample_rate
        elif offset == I2sReg.FIFO_LEVEL:
            value = self.fifo_level
        elif offset == I2sReg.FRAME_COUNT:
            value = self._frame_count & 0xFFFFFFFF
        elif offset == I2sReg.OVERRUN_COUNT:
            value = self._overrun_count & 0xFFFFFFFF
        else:
            raise BusProtocolError(f"I2S: read of unknown register 0x{offset:x}")
        return struct.pack("<I", value)

    def mmio_write(self, offset: int, data: bytes) -> None:
        """Store to the register file."""
        if len(data) != 4:
            raise BusProtocolError(
                f"I2S registers are 32-bit (got {len(data)}-byte write)"
            )
        (value,) = struct.unpack("<I", data)
        if offset == I2sReg.CTRL:
            self._ctrl = value
            if value & CtrlBits.FIFO_RESET:
                self._fifo.clear()
                self._overrun_sticky = False
                self._ctrl &= ~int(CtrlBits.FIFO_RESET)
        elif offset == I2sReg.STATUS:
            # Write-1-to-clear for the sticky overrun bit.
            if value & StatusBits.OVERRUN:
                self._overrun_sticky = False
        else:
            raise BusProtocolError(f"I2S: write to unknown register 0x{offset:x}")

    def _status(self) -> int:
        status = 0
        if not self._fifo:
            status |= StatusBits.RX_EMPTY
        if len(self._fifo) >= self.fifo_depth:
            status |= StatusBits.RX_FULL
        if self._overrun_sticky:
            status |= StatusBits.OVERRUN
        if self.enabled:
            status |= StatusBits.ENABLED
        return int(status)
