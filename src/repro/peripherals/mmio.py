"""MMIO window multiplexer.

The machine maps one device region; individual peripherals claim offset
windows within it.  The mux routes each access to the owning device and
faults on unclaimed offsets, like a real SoC bus fabric returning an
external abort for holes in the device map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidAddressError
from repro.tz.memory import MmioHandler


@dataclass(frozen=True)
class _Window:
    name: str
    base: int
    size: int
    device: MmioHandler

    def contains(self, offset: int, size: int) -> bool:
        return self.base <= offset and offset + size <= self.base + self.size


class MmioMux(MmioHandler):
    """Routes region-relative offsets to per-device register files."""

    def __init__(self) -> None:
        self._windows: list[_Window] = []

    def claim(self, name: str, base: int, size: int, device: MmioHandler) -> None:
        """Assign ``[base, base+size)`` (region-relative) to ``device``."""
        new = _Window(name, base, size, device)
        for w in self._windows:
            if w.base < new.base + new.size and new.base < w.base + w.size:
                raise ValueError(f"MMIO window {name!r} overlaps {w.name!r}")
        self._windows.append(new)

    def window_base(self, name: str) -> int:
        """Region-relative base of a claimed window."""
        for w in self._windows:
            if w.name == name:
                return w.base
        raise InvalidAddressError(f"no MMIO window named {name!r}")

    def _route(self, offset: int, size: int) -> _Window:
        for w in self._windows:
            if w.contains(offset, size):
                return w
        raise InvalidAddressError(f"MMIO access to unclaimed offset 0x{offset:x}")

    def mmio_read(self, offset: int, size: int) -> bytes:
        """Route a load to the owning device."""
        w = self._route(offset, size)
        return w.device.mmio_read(offset - w.base, size)

    def mmio_write(self, offset: int, data: bytes) -> None:
        """Route a store to the owning device."""
        w = self._route(offset, len(data))
        w.device.mmio_write(offset - w.base, data)
