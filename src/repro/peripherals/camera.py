"""Camera peripheral.

The paper's design generalizes beyond microphones to "cameras" producing
"images" (Section II); research plan item 6 makes generic peripherals an
explicit goal.  This model produces 8-bit grayscale frames from a scene
source, enough to exercise the image branch of the pipeline and the camera
driver.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import PeripheralError
from repro.sim.rng import SimRng


class SceneSource(Protocol):
    """Anything that can render grayscale frames on demand."""

    def next_frame(self, width: int, height: int) -> np.ndarray:
        """Return a ``(height, width)`` uint8 frame."""
        ...


class SyntheticScene:
    """Procedural scene: a moving gradient blob over noise.

    Frames carry a ``label`` stream alongside (``"person"`` /
    ``"empty_room"``) so the image classifier has ground truth; a 'person'
    renders as a bright vertical blob — a toy but learnable distinction.
    """

    def __init__(self, rng: SimRng, person_probability: float = 0.5):
        if not 0.0 <= person_probability <= 1.0:
            raise ValueError("person_probability must be in [0, 1]")
        self._rng = rng
        self.person_probability = person_probability
        self.last_label: str | None = None
        self._t = 0

    def next_frame(self, width: int, height: int) -> np.ndarray:
        """Render one frame and set :attr:`last_label`."""
        gen = self._rng.generator
        frame = gen.integers(0, 40, size=(height, width)).astype(np.uint8)
        self._t += 1
        if self._rng.random() < self.person_probability:
            self.last_label = "person"
            cx = (self._t * 7) % max(1, width - 8)
            x0, x1 = cx, min(width, cx + 8)
            y0, y1 = height // 4, height - height // 4
            frame[y0:y1, x0:x1] = np.clip(
                frame[y0:y1, x0:x1].astype(int) + 160, 0, 255
            ).astype(np.uint8)
        else:
            self.last_label = "empty_room"
        return frame


class Camera:
    """A simple frame-capture camera."""

    def __init__(self, scene: SceneSource, width: int = 32, height: int = 24):
        if width <= 0 or height <= 0:
            raise PeripheralError("camera dimensions must be positive")
        self.scene = scene
        self.width = width
        self.height = height
        self.frames_captured = 0
        self.powered = True

    def capture_frame(self) -> np.ndarray:
        """Capture one grayscale frame (black when unpowered)."""
        if not self.powered:
            return np.zeros((self.height, self.width), dtype=np.uint8)
        frame = self.scene.next_frame(self.width, self.height)
        if frame.shape != (self.height, self.width) or frame.dtype != np.uint8:
            raise PeripheralError(
                f"scene returned bad frame: shape={frame.shape}, dtype={frame.dtype}"
            )
        self.frames_captured += 1
        return frame

    @property
    def frame_bytes(self) -> int:
        """Size of one raw frame in bytes."""
        return self.width * self.height
