"""Hardware peripherals.

Substitutes for the Jetson's I/O (DESIGN.md): an I²S bus with a
register-level controller model (the paper's preliminary use case), a
digital microphone, a camera, and a TrustZone-aware DMA engine.  The
microphone consumes an :class:`~repro.peripherals.audio.AudioSource`, which
the pipeline wires to the synthetic speech vocoder.
"""

from repro.peripherals.audio import (
    AudioFormat,
    AudioSource,
    BufferSource,
    SilenceSource,
    ToneSource,
)
from repro.peripherals.camera import Camera, SceneSource, SyntheticScene
from repro.peripherals.codec import (
    mulaw_decode,
    mulaw_encode,
    pcm16_decode,
    pcm16_encode,
)
from repro.peripherals.dma import DmaEngine
from repro.peripherals.i2s import I2sBus, I2sController, I2sReg
from repro.peripherals.microphone import DigitalMicrophone
from repro.peripherals.mmio import MmioMux

__all__ = [
    "AudioFormat",
    "AudioSource",
    "BufferSource",
    "Camera",
    "DigitalMicrophone",
    "DmaEngine",
    "I2sBus",
    "I2sController",
    "I2sReg",
    "MmioMux",
    "SceneSource",
    "SilenceSource",
    "SyntheticScene",
    "ToneSource",
    "mulaw_decode",
    "mulaw_encode",
    "pcm16_decode",
    "pcm16_encode",
]
