"""USB bus and audio-class microphone device model.

The paper picks I²S for the POC "because it is lightweight, contrary to
more complex protocols like USB" (§III).  To *measure* that claim
(experiment T8) we model just enough USB for an audio-class capture
driver to be realistic: control transfers against binary descriptors,
standard requests (GET_DESCRIPTOR / SET_ADDRESS / SET_CONFIGURATION /
SET_INTERFACE), audio-class requests (sample rate, mute, volume), and an
isochronous IN endpoint streaming microphone samples.

Descriptors are genuine USB wire format (18-byte device descriptor,
9-byte configuration/interface headers, 7-byte endpoints), so the driver
side has the real parsing burden — which is exactly the complexity the
experiment quantifies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import BusProtocolError, PeripheralError
from repro.peripherals.audio import AudioFormat, AudioSource
from repro.sim.clock import CycleDomain, SimClock

# Standard request codes
GET_DESCRIPTOR = 0x06
SET_ADDRESS = 0x05
SET_CONFIGURATION = 0x09
SET_INTERFACE = 0x0B
CLEAR_FEATURE = 0x01

# Descriptor types
DESC_DEVICE = 1
DESC_CONFIGURATION = 2
DESC_STRING = 3
DESC_INTERFACE = 4
DESC_ENDPOINT = 5

# Audio-class requests (subset of UAC1)
UAC_SET_CUR = 0x01
UAC_GET_CUR = 0x81
UAC_SAMPLE_RATE_CONTROL = 0x0100
UAC_MUTE_CONTROL = 0x0101
UAC_VOLUME_CONTROL = 0x0102

ISO_IN_ENDPOINT = 0x81  # EP1, IN


@dataclass(frozen=True)
class SetupPacket:
    """The 8-byte USB control-setup packet."""

    bmRequestType: int
    bRequest: int
    wValue: int
    wIndex: int
    wLength: int
    data: bytes = b""


class UsbAudioMicrophone:
    """A UAC1-flavoured USB microphone device."""

    VENDOR_ID = 0x1D6B
    PRODUCT_ID = 0x0A17

    def __init__(self, source: AudioSource, fmt: AudioFormat | None = None):
        self.source = source
        self.format = fmt or AudioFormat()
        self.address = 0
        self.configured = False
        self.alt_setting = 0  # alt 0 = zero-bandwidth, alt 1 = streaming
        self.muted = False
        self.volume = 100
        self.sample_rate = self.format.sample_rate
        self.stall_next = False  # fault injection hook
        self.frames_streamed = 0

    # -- descriptors (genuine wire format) ----------------------------------

    def device_descriptor(self) -> bytes:
        """18-byte standard device descriptor."""
        return struct.pack(
            "<BBHBBBBHHHBBBB",
            18, DESC_DEVICE, 0x0200,  # bcdUSB 2.0
            0, 0, 0,  # class/subclass/protocol (per interface)
            64,  # ep0 max packet
            self.VENDOR_ID, self.PRODUCT_ID, 0x0100,
            1, 2, 0,  # string indices
            1,  # one configuration
        )

    def configuration_descriptor(self) -> bytes:
        """Config + 2 interfaces (control, streaming alt0/alt1) + iso EP."""
        interface_ctl = struct.pack(
            "<BBBBBBBBB", 9, DESC_INTERFACE, 0, 0, 0, 1, 1, 0, 0
        )  # AudioControl
        interface_alt0 = struct.pack(
            "<BBBBBBBBB", 9, DESC_INTERFACE, 1, 0, 0, 1, 2, 0, 0
        )  # AudioStreaming, zero-bandwidth
        interface_alt1 = struct.pack(
            "<BBBBBBBBB", 9, DESC_INTERFACE, 1, 1, 1, 1, 2, 0, 0
        )  # AudioStreaming, operational
        packet = self.format.sample_rate // 1000 * self.format.bytes_per_frame
        endpoint = struct.pack(
            "<BBBBHB", 7, DESC_ENDPOINT, ISO_IN_ENDPOINT,
            0x01,  # isochronous
            packet, 1,  # 1 ms interval
        )
        body = interface_ctl + interface_alt0 + interface_alt1 + endpoint
        header = struct.pack(
            "<BBHBBBBB", 9, DESC_CONFIGURATION, 9 + len(body),
            2, 1, 0, 0x80, 50,  # two interfaces, bus powered, 100 mA
        )
        return header + body

    def string_descriptor(self, index: int) -> bytes:
        """UTF-16LE string descriptors."""
        strings = {1: "repro devices", 2: "usb audio mic"}
        text = strings.get(index, "?")
        payload = text.encode("utf-16-le")
        return struct.pack("<BB", 2 + len(payload), DESC_STRING) + payload

    # -- control plane ---------------------------------------------------------

    def handle_control(self, setup: SetupPacket) -> bytes:
        """Service one control transfer.

        Dispatch follows the spec: bits 5-6 of ``bmRequestType`` select
        standard vs class requests — necessary because request *codes*
        collide across the spaces (CLEAR_FEATURE and UAC SET_CUR are both
        0x01).
        """
        if self.stall_next:
            self.stall_next = False
            raise BusProtocolError("endpoint stalled")
        if (setup.bmRequestType & 0x60) == 0x20:  # class request
            return self._handle_class_request(setup)
        if setup.bRequest == GET_DESCRIPTOR:
            desc_type = setup.wValue >> 8
            index = setup.wValue & 0xFF
            if desc_type == DESC_DEVICE:
                return self.device_descriptor()[: setup.wLength]
            if desc_type == DESC_CONFIGURATION:
                return self.configuration_descriptor()[: setup.wLength]
            if desc_type == DESC_STRING:
                return self.string_descriptor(index)[: setup.wLength]
            raise BusProtocolError(f"no descriptor type {desc_type}")
        if setup.bRequest == SET_ADDRESS:
            self.address = setup.wValue
            return b""
        if setup.bRequest == SET_CONFIGURATION:
            self.configured = setup.wValue == 1
            return b""
        if setup.bRequest == SET_INTERFACE:
            if setup.wIndex != 1:
                raise BusProtocolError("only interface 1 has alt settings")
            if setup.wValue not in (0, 1):
                raise BusProtocolError(f"no alt setting {setup.wValue}")
            self.alt_setting = setup.wValue
            return b""
        if setup.bRequest == CLEAR_FEATURE:
            return b""  # endpoint halt cleared
        raise BusProtocolError(f"unsupported request 0x{setup.bRequest:02x}")

    def _handle_class_request(self, setup: SetupPacket) -> bytes:
        control = setup.wValue
        if control == UAC_SAMPLE_RATE_CONTROL:
            if setup.bRequest == UAC_SET_CUR:
                (rate,) = struct.unpack("<I", setup.data.ljust(4, b"\x00"))
                if rate != self.format.sample_rate:
                    raise BusProtocolError(
                        f"device supports only {self.format.sample_rate} Hz"
                    )
                self.sample_rate = rate
                return b""
            return struct.pack("<I", self.sample_rate)
        if control == UAC_MUTE_CONTROL:
            if setup.bRequest == UAC_SET_CUR:
                self.muted = bool(setup.data and setup.data[0])
                return b""
            return bytes([int(self.muted)])
        if control == UAC_VOLUME_CONTROL:
            if setup.bRequest == UAC_SET_CUR:
                self.volume = setup.data[0] if setup.data else 100
                return b""
            return bytes([self.volume])
        raise BusProtocolError(f"unknown class control 0x{control:04x}")

    # -- streaming plane ----------------------------------------------------------

    def iso_in(self, n_frames: int) -> np.ndarray:
        """Deliver ``n_frames`` of audio over the isochronous endpoint."""
        if not self.configured or self.alt_setting != 1:
            raise BusProtocolError("streaming interface not selected")
        samples = self.source.next_samples(n_frames)
        if self.muted:
            samples = np.zeros_like(samples)
        elif self.volume != 100:
            samples = (
                samples.astype(np.int32) * self.volume // 100
            ).clip(-32768, 32767).astype(np.int16)
        self.frames_streamed += n_frames
        return samples


class UsbBus:
    """A single-device USB host-controller model."""

    def __init__(self, clock: SimClock, device: UsbAudioMicrophone):
        self.clock = clock
        self.device = device
        self.control_transfers = 0
        self.iso_transfers = 0

    def reset(self) -> None:
        """Bus reset: device back to default state."""
        self.clock.advance(50_000, CycleDomain.PERIPHERAL)  # 10 ms+ on wire
        self.device.address = 0
        self.device.configured = False
        self.device.alt_setting = 0

    def control(self, setup: SetupPacket) -> bytes:
        """One control transfer (setup + data + status stages)."""
        self.control_transfers += 1
        # Control transfers are slow: several bus turnarounds.
        self.clock.advance(4_000, CycleDomain.PERIPHERAL)
        return self.device.handle_control(setup)

    def iso_in(self, endpoint: int, n_frames: int) -> np.ndarray:
        """One isochronous IN transfer burst."""
        if endpoint != ISO_IN_ENDPOINT:
            raise BusProtocolError(f"no such endpoint 0x{endpoint:02x}")
        if n_frames < 0:
            raise PeripheralError("cannot stream a negative frame count")
        self.iso_transfers += 1
        # Real-time capture: n frames take n/sample_rate seconds.
        cycles = int(
            n_frames * self.clock.freq_hz / self.device.format.sample_rate
        )
        self.clock.advance(cycles, CycleDomain.PERIPHERAL)
        return self.device.iso_in(n_frames)
