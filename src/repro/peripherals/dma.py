"""TrustZone-aware DMA engine.

Real SoCs tag each DMA master with a security attribute; a non-secure DMA
cannot write into a secure carveout.  The engine models that: a transfer
declares the world it acts as, and the destination write goes through
:class:`~repro.tz.memory.PhysicalMemory` so the TZASC check applies.  This
matters for the reproduction because the secure driver's DMA lands in
secure buffers — and a normal-world attacker reprogramming DMA cannot make
it scribble into (or read out of) the enclave.
"""

from __future__ import annotations

from repro.peripherals.i2s import I2sController
from repro.sim.clock import CycleDomain
from repro.tz.machine import TrustZoneMachine
from repro.tz.worlds import World


class DmaEngine:
    """A single-channel DMA engine moving I²S FIFO words to memory."""

    def __init__(self, machine: TrustZoneMachine):
        self.machine = machine
        self.transfers = 0
        self.words_moved = 0

    def fifo_to_memory(
        self,
        controller: I2sController,
        dest_addr: int,
        max_words: int,
        world: World,
    ) -> int:
        """Drain up to ``max_words`` FIFO words into memory at ``dest_addr``.

        Acts as a bus master with the given ``world`` security attribute;
        raises :class:`~repro.errors.SecureAccessViolation` if a non-secure
        transfer targets secure memory.  Each 32-bit word is stored
        little-endian.  Returns the number of words moved.
        """
        self.machine.clock.advance(
            self.machine.costs.dma_setup_cycles, CycleDomain.DMA
        )
        faults = self.machine.secure_faults
        if faults is not None and faults.fires("dma"):
            from repro.errors import InjectedFault

            raise InjectedFault(
                f"injected DMA abort (dest=0x{dest_addr:x}, "
                f"world={world.value})"
            )
        words = controller.drain_array(max_words)
        if len(words):
            payload = words.astype("<u4").tobytes()
            self.machine.memory.write(dest_addr, payload, world)
            # Streaming cost over and above the memory-system charge.
            self.machine.clock.advance(len(words) * 2, CycleDomain.DMA)
        self.transfers += 1
        self.words_moved += len(words)
        self.machine.trace.emit(
            self.machine.clock.now, "periph.dma", "transfer",
            words=len(words), dest=dest_addr, world=world.value,
        )
        return len(words)
