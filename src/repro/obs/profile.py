"""Per-stage cost profiling: secure vs baseline, from span data.

This is the measurement the paper defers ("we are yet to perform concrete
experiments"): a per-stage breakdown of where the secure path spends its
cycles and energy relative to the conventional baseline, in the style of
the secure-world cost tables of Fortress (Yuhala et al., 2023) and
Offline Model Guard (Bayerl et al., 2020).

:func:`collect_profile` runs both pipelines on the same workload (each on
its own freshly seeded platform), aggregates their ``stage.*`` spans into
:class:`StageRow` records with exact p50/p95/p99 cycle percentiles and
per-stage energy, and returns a :class:`ProfileReport` that renders as a
text table (``repro profile``) or a JSON document
(``benchmarks/results/profile.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import CycleHistogram
from repro.obs.span import Span

# Fig. 1 order first, connection/transport sub-stages after.
STAGE_ORDER = (
    "capture", "vad", "asr", "classify", "filter", "relay",
    "tls_handshake", "tls_record", "relay_backoff", "supplicant_rpc",
)


@dataclass
class StageRow:
    """Aggregated cost of one pipeline stage across a run."""

    pipeline: str
    stage: str
    count: int
    total_cycles: int
    mean_cycles: float
    p50_cycles: float
    p95_cycles: float
    p99_cycles: float
    energy_mj: float
    world_switches: int

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "pipeline": self.pipeline,
            "stage": self.stage,
            "count": self.count,
            "total_cycles": self.total_cycles,
            "mean_cycles": self.mean_cycles,
            "p50_cycles": self.p50_cycles,
            "p95_cycles": self.p95_cycles,
            "p99_cycles": self.p99_cycles,
            "energy_mj": self.energy_mj,
            "world_switches": self.world_switches,
        }


@dataclass
class ProfileReport:
    """The full secure-vs-baseline profile of one workload."""

    seed: int
    utterances: int
    mode: str
    stages: list[StageRow] = field(default_factory=list)
    pipelines: dict[str, dict[str, Any]] = field(default_factory=dict)

    def rows_for(self, pipeline: str) -> list[StageRow]:
        """Stage rows of one pipeline, in canonical stage order."""
        return [r for r in self.stages if r.pipeline == pipeline]

    def stage(self, pipeline: str, stage: str) -> StageRow | None:
        """One stage's row, or ``None`` if it never ran."""
        for row in self.stages:
            if row.pipeline == pipeline and row.stage == stage:
                return row
        return None

    def to_doc(self) -> dict[str, Any]:
        """JSON document for ``profile.json``."""
        return {
            "seed": self.seed,
            "utterances": self.utterances,
            "mode": self.mode,
            "stages": [r.to_doc() for r in self.stages],
            "pipelines": self.pipelines,
        }

    def table(self) -> str:
        """Human-readable per-stage table, one section per pipeline."""
        lines = []
        for name in sorted(self.pipelines):
            summary = self.pipelines[name]
            freq = summary.get("freq_hz", 2.0e9)
            lines.append(f"{name} pipeline "
                         f"({summary['total_cycles'] / freq * 1e3:.2f} ms "
                         f"simulated, {summary['energy_mj']:.1f} mJ, "
                         f"{summary['world_switches']} world switches)")
            lines.append(
                f"  {'stage':14s} {'count':>6s} {'total cycles':>13s} "
                f"{'p50':>11s} {'p95':>11s} {'energy mJ':>10s}"
            )
            for row in self.rows_for(name):
                lines.append(
                    f"  {row.stage:14s} {row.count:>6d} "
                    f"{row.total_cycles:>13d} {row.p50_cycles:>11.0f} "
                    f"{row.p95_cycles:>11.0f} {row.energy_mj:>10.2f}"
                )
            lines.append("")
        return "\n".join(lines).rstrip()


def _stage_key(stage: str) -> tuple[int, str]:
    try:
        return (STAGE_ORDER.index(stage), stage)
    except ValueError:
        return (len(STAGE_ORDER), stage)


def aggregate_stage_spans(
    spans: list[Span], pipeline: str
) -> list[StageRow]:
    """Collapse stage spans into per-stage rows with percentiles."""
    by_stage: dict[str, list[Span]] = {}
    for sp in spans:
        by_stage.setdefault(sp.name, []).append(sp)
    rows = []
    for stage in sorted(by_stage, key=_stage_key):
        group = by_stage[stage]
        hist = CycleHistogram(name=stage)
        for sp in group:
            hist.observe(sp.cycles)
        rows.append(
            StageRow(
                pipeline=pipeline,
                stage=stage,
                count=hist.count,
                total_cycles=hist.total,
                mean_cycles=hist.mean,
                p50_cycles=hist.p50,
                p95_cycles=hist.p95,
                p99_cycles=hist.p99,
                energy_mj=sum(sp.energy_mj for sp in group),
                world_switches=sum(sp.world_switches for sp in group),
            )
        )
    return rows


def profile_stage_rows(machine, pipeline: str) -> list[StageRow]:
    """Stage rows for one pipeline from its machine's retained spans.

    ``stage.<pipeline>`` spans become stages directly; top-level
    supplicant RPC spans (category ``rpc``) are folded into one
    ``supplicant_rpc`` pseudo-stage so the RPC round-trip cost the paper
    worries about shows up as its own line.
    """
    tracer = machine.obs.tracer
    spans = tracer.spans_in(f"stage.{pipeline}")
    rpc = [
        Span(
            id=sp.id, name="supplicant_rpc", category=sp.category,
            start_cycle=sp.start_cycle, end_cycle=sp.end_cycle,
            parent_id=sp.parent_id, domain_cycles=sp.domain_cycles,
            world_switches=sp.world_switches, energy_mj=sp.energy_mj,
            attrs=sp.attrs,
        )
        for sp in tracer.spans_in("rpc")
    ]
    return aggregate_stage_spans(spans + rpc, pipeline)


def collect_profile(
    seed: int = 7,
    utterances: int = 8,
    bundle=None,
    continuous: bool = False,
    chunk_frames: int = 256,
) -> ProfileReport:
    """Run secure and baseline pipelines and profile both.

    Each pipeline gets its own :class:`~repro.core.platform.IotPlatform`
    seeded identically, so the comparison differs only in the design under
    test.  Pass a pre-provisioned ``bundle`` to skip training (the
    benchmarks reuse their session fixture); otherwise one is trained from
    ``seed``.
    """
    from repro.core.baseline import BaselinePipeline
    from repro.core.pipeline import SecurePipeline
    from repro.core.platform import IotPlatform
    from repro.core.workload import UtteranceWorkload
    from repro.ml.dataset import UtteranceGenerator
    from repro.sim.rng import SimRng

    if bundle is None:
        from repro.provision import provision_bundle

        bundle = provision_bundle(seed=seed).bundle

    corpus = UtteranceGenerator(SimRng(seed, "profile")).generate(
        utterances, sensitive_fraction=0.5
    )
    workload = UtteranceWorkload.from_corpus(corpus, bundle.vocoder)

    report = ProfileReport(
        seed=seed,
        utterances=utterances,
        mode="continuous" if continuous else "batch",
    )
    for name in ("secure", "baseline"):
        platform = IotPlatform.create(seed=seed)
        if name == "secure":
            pipeline = SecurePipeline(
                platform, bundle, chunk_frames=chunk_frames
            )
        else:
            pipeline = BaselinePipeline(
                platform, bundle.asr, bundle=bundle, use_tls=True,
                chunk_frames=chunk_frames,
            )
        try:
            if continuous and name == "secure":
                run = pipeline.process_continuous(workload)
            else:
                run = pipeline.process(workload)
        finally:
            pipeline.close()
        report.stages.extend(profile_stage_rows(platform.machine, name))
        machine = platform.machine
        report.pipelines[name] = {
            **run.summary(),
            "total_cycles": machine.clock.now,
            "freq_hz": machine.clock.freq_hz,
            "energy_mj": platform.energy.report().total_mj,
            "world_switches": machine.cpu.switch_count,
            "smc_calls": machine.monitor.smc_count,
            "supplicant_rpcs": platform.tee.rpc_count,
        }
    return report
