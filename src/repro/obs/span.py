"""Span-based tracing layered on the simulator's :class:`TraceLog`.

A :class:`Span` brackets one region of the simulated run — a pipeline
stage, a TLS handshake, a supplicant RPC — and attributes to it the cycles
(total and per :class:`~repro.sim.clock.CycleDomain`), world switches and
energy spent inside it.  Spans nest: the tracer keeps an enter/exit stack,
so a ``relay`` stage span naturally parents the ``tls_handshake`` and
``tls_record`` spans opened while it is active.

Measurement is *passive*: opening or closing a span reads the clock, the
CPU switch counter and the energy meter but never charges cycles, never
touches the RNG, and never alters control flow — runs are byte-identical
with tracing enabled or disabled.  The TA-side stage accounting
(``CMD_STATS``) reads span durations, so spans always measure even while
*retention* is disabled; disabling only stops the tracer from keeping the
span, feeding metrics and mirroring into the trace log.

Exports: JSON Lines (round-trippable via :meth:`SpanTracer.from_jsonl`)
and the Chrome ``trace_event`` format (load in ``chrome://tracing`` /
Perfetto) via :meth:`SpanTracer.to_chrome_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.sim.clock import CycleDomain, SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.energy.model import EnergyMeter
    from repro.obs.health import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.trace import TraceLog
    from repro.tz.worlds import Cpu


@dataclass
class Span:
    """One measured region of the run.

    ``domain_cycles`` attributes the span's duration to hardware domains
    (secure CPU, monitor, DMA, ...); their sum equals :attr:`cycles`
    because the clock only moves when a domain is charged.
    """

    id: int
    name: str
    category: str
    start_cycle: int
    end_cycle: int = 0
    parent_id: int | None = None
    domain_cycles: dict[CycleDomain, int] = field(default_factory=dict)
    world_switches: int = 0
    energy_mj: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        """Total cycles elapsed inside the span."""
        return self.end_cycle - self.start_cycle

    @property
    def trace_id(self) -> str:
        """The correlated trace this span belongs to ('' when unstamped).

        Trace ids ride the ordinary ``attrs`` bag (key ``trace_id``) so
        stamped spans round-trip through every existing export without a
        schema change.
        """
        return str(self.attrs.get("trace_id", "") or "")

    def matches(self, category_prefix: str) -> bool:
        """True if the category equals or nests under the prefix."""
        return self.category == category_prefix or self.category.startswith(
            category_prefix + "."
        )

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_doc`)."""
        return {
            "id": self.id,
            "parent": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start_cycle,
            "end": self.end_cycle,
            "domains": {d.value: c for d, c in self.domain_cycles.items()},
            "switches": self.world_switches,
            "energy_mj": self.energy_mj,
            "attrs": self.attrs,
        }

    @staticmethod
    def from_doc(doc: dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_doc` form."""
        return Span(
            id=int(doc["id"]),
            parent_id=None if doc.get("parent") is None else int(doc["parent"]),
            name=str(doc["name"]),
            category=str(doc["category"]),
            start_cycle=int(doc["start"]),
            end_cycle=int(doc["end"]),
            domain_cycles={
                CycleDomain(k): int(v)
                for k, v in dict(doc.get("domains", {})).items()
            },
            world_switches=int(doc.get("switches", 0)),
            energy_mj=float(doc.get("energy_mj", 0.0)),
            attrs=dict(doc.get("attrs", {})),
        )


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "span", "_start_domains", "_start_switches",
                 "_start_energy")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._begin(self)
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._end(self)


class SpanTracer:
    """Creates, nests, retains and exports spans.

    ``capacity`` bounds retention the same way :class:`TraceLog` does:
    when full, the oldest half is evicted and ``dropped_spans`` counts the
    loss.  Wiring the optional collaborators (``trace`` mirror, ``cpu``
    for switch counts, energy meter, metrics registry) is additive — the
    tracer degrades gracefully when any is absent, so unit tests can run
    it against a bare clock.
    """

    def __init__(
        self,
        clock: SimClock,
        trace: "TraceLog | None" = None,
        cpu: "Cpu | None" = None,
        metrics: "MetricsRegistry | None" = None,
        capacity: int = 100_000,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self._trace = trace
        self._cpu = cpu
        self._metrics = metrics
        self._energy: "EnergyMeter | None" = None
        self._recorder: "FlightRecorder | None" = None
        self.capacity = capacity
        self.enabled = True
        self.spans: list[Span] = []
        self.dropped_spans = 0
        self._stack: list[Span] = []
        self._next_id = 1

    def attach_energy(self, meter: "EnergyMeter") -> None:
        """Wire the platform's energy meter for per-span energy deltas."""
        self._energy = meter

    def attach_recorder(self, recorder: "FlightRecorder | None") -> None:
        """Feed every closed span into a health flight recorder.

        The recorder sees spans even while retention is disabled —
        attachment is the opt-in, and recording is as passive as
        measuring is.
        """
        self._recorder = recorder

    # -- recording --------------------------------------------------------------

    def span(self, name: str, category: str = "span", **attrs: Any) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("asr", "stage.secure"):``."""
        sp = Span(
            id=self._next_id,
            name=name,
            category=category,
            start_cycle=0,  # set at __enter__
            attrs=attrs,
        )
        self._next_id += 1
        return _ActiveSpan(self, sp)

    def _begin(self, active: _ActiveSpan) -> None:
        sp = active.span
        sp.parent_id = self._stack[-1].id if self._stack else None
        sp.start_cycle = self._clock.now
        active._start_domains = dict(self._clock._per_domain)
        active._start_switches = (
            self._cpu.switch_count if self._cpu is not None else 0
        )
        active._start_energy = (
            self._energy.snapshot() if self._energy is not None else None
        )
        self._stack.append(sp)

    def _end(self, active: _ActiveSpan) -> None:
        sp = active.span
        # Pop through anything left behind by a span abandoned to an
        # exception; the stack discipline must survive unwinding.
        while self._stack and self._stack[-1] is not sp:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        sp.end_cycle = self._clock.now
        start_domains = active._start_domains
        sp.domain_cycles = {
            d: v - start_domains.get(d, 0)
            for d, v in self._clock._per_domain.items()
            if v - start_domains.get(d, 0)
        }
        if self._cpu is not None:
            sp.world_switches = self._cpu.switch_count - active._start_switches
        if self._energy is not None and active._start_energy is not None:
            sp.energy_mj = self._energy.delta_since(active._start_energy).total_mj
        if self._recorder is not None:
            self._recorder.record(sp)
        if not self.enabled:
            return
        if len(self.spans) >= self.capacity:
            drop = max(1, self.capacity // 2)
            drop = max(drop, len(self.spans) - self.capacity + 1)
            del self.spans[:drop]
            self.dropped_spans += drop
        self.spans.append(sp)
        if self._metrics is not None:
            self._metrics.observe(f"{sp.category}.{sp.name}.cycles", sp.cycles)
            self._metrics.inc(f"{sp.category}.{sp.name}.count")
        if self._trace is not None:
            self._trace.emit(
                sp.end_cycle, "obs.span", sp.name,
                span_category=sp.category, cycles=sp.cycles, id=sp.id,
                parent=sp.parent_id,
            )

    # -- reading back ------------------------------------------------------------

    def spans_in(self, category_prefix: str | None = None) -> list[Span]:
        """Retained spans, optionally filtered to a category subtree."""
        if category_prefix is None:
            return list(self.spans)
        return [s for s in self.spans if s.matches(category_prefix)]

    def spans_for_trace(self, trace_id: str) -> list[Span]:
        """Retained spans stamped with ``trace_id``, in close order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def clear(self) -> None:
        """Drop retained spans (open spans and ids are unaffected)."""
        self.spans.clear()
        self.dropped_spans = 0

    # -- export ------------------------------------------------------------------

    def to_jsonl(self, category_prefix: str | None = None) -> str:
        """Spans as JSON Lines; inverse of :meth:`from_jsonl`."""
        import json

        return "\n".join(
            json.dumps(s.to_doc(), default=str)
            for s in self.spans_in(category_prefix)
        )

    @staticmethod
    def from_jsonl(text: str) -> list[Span]:
        """Parse a JSONL export back into spans."""
        import json

        return [
            Span.from_doc(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]

    def to_chrome_trace(self, category_prefix: str | None = None) -> str:
        """Spans as Chrome ``trace_event`` JSON (complete/'X' events).

        Timestamps are microseconds of simulated time at the clock's
        configured frequency; open the output in ``chrome://tracing`` or
        Perfetto.  Each top-level category gets its own track (``tid``).
        """
        import json

        scale = 1e6 / self._clock.freq_hz
        tids: dict[str, int] = {}
        events = []
        for sp in self.spans_in(category_prefix):
            track = sp.category.split(".")[0]
            tid = tids.setdefault(track, len(tids) + 1)
            events.append({
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "ts": sp.start_cycle * scale,
                "dur": sp.cycles * scale,
                "pid": 1,
                "tid": tid,
                "args": {
                    "cycles": sp.cycles,
                    "world_switches": sp.world_switches,
                    "energy_mj": sp.energy_mj,
                    "domains": {
                        d.value: c for d, c in sp.domain_cycles.items()
                    },
                    **sp.attrs,
                },
            })
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"clock_freq_hz": self._clock.freq_hz},
        }
        return json.dumps(doc, default=str)
