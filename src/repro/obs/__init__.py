"""Observability: spans, metrics and profiling for the simulated platform.

Layers on the existing :class:`~repro.sim.trace.TraceLog` event stream:

* :mod:`repro.obs.span` — enter/exit spans with cycle, per-domain,
  world-switch and energy attribution; JSONL and Chrome ``trace_event``
  export.
* :mod:`repro.obs.metrics` — counters, gauges and cycle histograms with
  exact p50/p95/p99.
* :mod:`repro.obs.context` — the per-machine bundle (``machine.obs``).
* :mod:`repro.obs.profile` — per-stage secure-vs-baseline cost profiles
  backing ``repro profile`` and the T10 benchmark.
* :mod:`repro.obs.export` — OpenMetrics / Prometheus-text and JSONL
  registry exporters.
* :mod:`repro.obs.fleet` — N simulated devices merged into one fleet
  report (``repro fleet``, T11).
* :mod:`repro.obs.health` — declarative SLO rules, a span-heartbeat
  watchdog and the violation-triggered flight recorder
  (``repro health``).
* :mod:`repro.obs.regress` — the CI perf-regression gate
  (``repro compare``).

The layer is strictly read-only with respect to the simulation: it never
charges cycles or consumes randomness, so enabling or disabling it leaves
every pipeline decision byte-identical.
"""

from repro.obs.context import Observability
from repro.obs.health import (
    FlightRecorder,
    HealthMonitor,
    SloRule,
    Watchdog,
)
from repro.obs.metrics import (
    BucketHistogram,
    Counter,
    CycleHistogram,
    Gauge,
    MetricsRegistry,
)
from repro.obs.span import Span, SpanTracer

__all__ = [
    "BucketHistogram",
    "Counter",
    "CycleHistogram",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "MetricsRegistry",
    "Observability",
    "SloRule",
    "Span",
    "SpanTracer",
    "Watchdog",
]
