"""Fleet simulation: N devices, sharded co-simulation, one merged picture.

The paper's deployment target is "millions of users", so per-device
observability (PR 2's span profile) has to aggregate: this module runs a
simulated fleet — each device its own freshly seeded
:class:`~repro.core.platform.IotPlatform` with a varied workload and
network fault profile — and folds the per-device telemetry into a single
:class:`FleetReport` via :meth:`BucketHistogram.merge` and
:meth:`MetricsRegistry.merge`.  The merged latency quantiles equal the
quantiles of the concatenated per-device streams within one bucket's
relative error (exactly, while under the sample cap).

At fleet scale the runner *shards*: :func:`run_fleet` partitions the
roster into contiguous groups and co-simulates the groups across worker
processes (``shards=N``).  Each worker reduces its devices to
:class:`DeviceReport` *documents* — plain picklable telemetry, no machine
or platform object graphs — which the parent reassembles in roster order
and folds through the same merge machinery, so the sharded merged report
is byte-identical to the sequential run for the same ``(seed, devices)``.
The full simulation state of a device (machine, platform, TA handle) is
only retained on request via :func:`simulate_device_runtime`, for
in-process consumers like the health CLI.

Everything stays inside the repo's determinism contract: device seeds
derive from the fleet seed, fault sequences come from each device's
:class:`~repro.sim.faults.FaultInjector` fork, and no wall-clock or
global RNG is consulted — the same ``(seed, devices)`` pair always
produces the same fleet report regardless of ``shards``, and running
with observability disabled leaves every pipeline decision
byte-identical.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import reduce
from typing import Any

from repro.cloud.service import IngestionConfig
from repro.energy.battery import project_battery_life
from repro.obs.health import WatchdogAlert, check_heartbeats, span_heartbeats
from repro.obs.metrics import BucketHistogram, MetricsRegistry
from repro.sim.clock import DEFAULT_FREQ_HZ, cycles_to_ms
from repro.sim.faults import (
    ClientCrashConfig,
    ClientCrashInjector,
    FaultConfig,
    SecureFaultConfig,
)

# Deterministic rotation of network conditions across the fleet.
FAULT_PROFILES: dict[str, FaultConfig | None] = {
    "clean": None,
    "light": FaultConfig.send_failure(0.1),
    "lossy": FaultConfig.send_failure(0.3),
    "congested": FaultConfig(latency_rate=0.5, latency_cycles=400_000),
}

# Secure-world (TEE) fault profiles — chaos engineering for the enclave.
# Orthogonal to the network profiles above: a device can have a lossy
# link AND a panicking TA.
SECURE_FAULT_PROFILES: dict[str, SecureFaultConfig | None] = {
    "none": None,
    "chaos": SecureFaultConfig.chaos(),
}

# Cloud admission-tier profiles.  "overload" starves the token buckets and
# shrinks the tenant queues so the cloud actively throttles — the knob the
# backpressure round trip (throttle → sealed queue → drain) is proved under.
INGEST_PROFILES: dict[str, IngestionConfig | None] = {
    "none": None,
    "overload": IngestionConfig.overload(),
}

# Normal-world client crash/restart chaos.  Orthogonal to every profile
# above: the client process dies mid-run and recovery must come from the
# TA's sealed checkpoint + store-and-forward queue via CMD_RESUME.
CLIENT_CRASH_PROFILES: dict[str, ClientCrashConfig | None] = {
    "none": None,
    "chaos": ClientCrashConfig.chaos(),
}

_SENSITIVE_MIX = (0.25, 0.5, 0.75)

LATENCY_METRIC = "fleet.e2e_latency_cycles"
ENERGY_METRIC = "fleet.e2e_energy_mj"

#: ``--sample-rate auto``: per-profile telemetry sampling (1-in-k).
#: Constrained-network devices burn energy and bandwidth on retries —
#: that budget pressure is exactly when telemetry volume should drop, so
#: lossy/congested profiles sample half as often.  All rates are powers
#: of two so merged weights stay exact integers.
AUTO_SAMPLE_RATES: dict[str, int] = {
    "clean": 8,
    "light": 8,
    "lossy": 16,
    "congested": 16,
}


def resolve_sample_rate(rate: int | str, fault_profile: str) -> int:
    """The effective 1-in-k sampling rate for a device.

    ``"auto"`` maps through :data:`AUTO_SAMPLE_RATES` by the device's
    network fault profile; anything else must parse as an integer >= 1.
    """
    if rate == "auto":
        return AUTO_SAMPLE_RATES[fault_profile]
    out = int(rate)
    if out < 1:
        raise ValueError(f"sample rate must be >= 1, got {rate!r}")
    return out


@dataclass(frozen=True)
class DeviceSpec:
    """One simulated device's identity and operating conditions."""

    device_id: str
    seed: int
    utterances: int
    sensitive_fraction: float
    fault_profile: str
    secure_fault_profile: str = "none"
    ingest_profile: str = "none"
    client_crash_profile: str = "none"

    def fault_config(self) -> FaultConfig | None:
        """The named fault profile's config (``None`` for a clean link)."""
        return FAULT_PROFILES[self.fault_profile]

    def secure_fault_config(self) -> SecureFaultConfig | None:
        """The named secure-world profile (``None`` = faults off)."""
        return SECURE_FAULT_PROFILES[self.secure_fault_profile]

    def ingest_config(self) -> IngestionConfig | None:
        """The named cloud admission profile (``None`` = accept-all)."""
        return INGEST_PROFILES[self.ingest_profile]

    def client_crash_config(self) -> ClientCrashConfig | None:
        """The named client-crash profile (``None`` = crashes off)."""
        return CLIENT_CRASH_PROFILES[self.client_crash_profile]


def device_specs(
    devices: int,
    seed: int = 7,
    utterances: int = 6,
    chaos: bool = False,
    overload: bool = False,
    client_crashes: bool = False,
) -> list[DeviceSpec]:
    """Deterministic fleet roster: varied seeds, workloads and networks.

    Device ``i`` gets seed ``seed + 1000 + i`` (offset so no device
    shares the provisioning seed), a workload size in
    ``utterances .. utterances + 2``, a rotating sensitive-content mix
    and a rotating fault profile.  ``chaos=True`` additionally puts every
    device under the ``chaos`` secure-world fault profile (and thus TA
    supervision).  ``overload=True`` puts every device's cloud behind the
    starved ``overload`` admission profile, and ``client_crashes=True``
    applies the client crash/restart chaos profile (which also runs the
    TA supervised, since recovery needs sealed checkpoints).
    """
    if devices <= 0:
        raise ValueError("fleet needs at least one device")
    profiles = list(FAULT_PROFILES)
    return [
        DeviceSpec(
            device_id=f"d{i:02d}",
            seed=seed + 1000 + i,
            utterances=utterances + (i % 3),
            sensitive_fraction=_SENSITIVE_MIX[i % len(_SENSITIVE_MIX)],
            fault_profile=profiles[i % len(profiles)],
            secure_fault_profile="chaos" if chaos else "none",
            ingest_profile="overload" if overload else "none",
            client_crash_profile="chaos" if client_crashes else "none",
        )
        for i in range(devices)
    ]


def partition_specs(
    specs: list[DeviceSpec], shards: int
) -> list[list[DeviceSpec]]:
    """Contiguous, balanced partition of the roster into shard groups.

    Groups preserve roster order and their sizes differ by at most one,
    so concatenating the groups reproduces the roster exactly — which is
    what makes the sharded report byte-identical to the sequential one.
    ``shards`` is clamped to ``1 .. len(specs)``.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    shards = min(shards, len(specs))
    base, extra = divmod(len(specs), shards)
    groups: list[list[DeviceSpec]] = []
    start = 0
    for s in range(shards):
        n = base + (1 if s < extra else 0)
        groups.append(specs[start : start + n])
        start += n
    return groups


@dataclass
class DeviceReport:
    """One device's run, reduced to mergeable, *picklable* telemetry.

    A pure document: plain data plus :class:`BucketHistogram` /
    :class:`MetricsRegistry` (both process-portable), never the machine
    or platform object graphs — a report must cross a shard worker's
    process boundary and must not pin O(devices) simulation state in the
    parent.  Consumers that need the live machine (the health CLI's
    watchdog/alert routing) use :func:`simulate_device_runtime` instead.

    ``clock_now``/``heartbeats``/``freq_hz`` carry the serializable
    inputs of the span watchdog and the cycle→wall-clock conversion, so
    both work from a deserialized report.
    """

    spec: DeviceSpec
    summary: dict[str, Any]
    relay: dict[str, int]
    latencies: list[int]
    latency_hist: BucketHistogram
    registry: MetricsRegistry
    world_switches: int
    energy_mj: float
    battery_days: float
    restarts: int = 0
    degraded: int = 0
    client_restarts: int = 0
    freq_hz: float = DEFAULT_FREQ_HZ
    clock_now: int = 0
    heartbeats: dict[str, int] = field(default_factory=dict)
    # Telemetry reduction: 1-in-k sampling weight applied to latencies /
    # histograms (1 = unsampled) and the trace-stamped span docs kept for
    # the fleet timeline (empty unless the run collected traces).
    sample_rate: int = 1
    trace_spans: list[dict[str, Any]] = field(default_factory=list)

    @property
    def relay_success_rate(self) -> float:
        """Forwarded decisions delivered without spilling to the queue."""
        forwarded = self.summary["forwarded"]
        return self.summary["sent"] / forwarded if forwarded else 1.0

    def stalled(
        self, stall_cycles: int = 10_000_000_000
    ) -> list[WatchdogAlert]:
        """Watchdog verdict from the serialized heartbeat map.

        Same semantics as :meth:`repro.obs.health.Watchdog.check`, but
        computed from the report document alone — no live tracer or
        clock needed, so it works on reports shipped back from shard
        workers (a device that ran with observability disabled has no
        spans and reports the ``(no spans)`` sentinel).
        """
        return check_heartbeats(self.heartbeats, self.clock_now, stall_cycles)

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready per-device row for ``fleet.json``."""
        return {
            "device": self.spec.device_id,
            "seed": self.spec.seed,
            "fault_profile": self.spec.fault_profile,
            "utterances": self.summary["utterances"],
            "sensitive_fraction": self.spec.sensitive_fraction,
            "accuracy": self.summary["accuracy"],
            "forwarded": self.summary["forwarded"],
            "sent": self.summary["sent"],
            "queued": self.summary["queued"],
            "throttled": self.summary.get("throttled", 0),
            "shed": self.summary.get("shed", 0),
            "relay_attempts": self.summary["relay_attempts"],
            "relay_success_rate": self.relay_success_rate,
            "queue_depth": self.relay.get("queue_depth", 0),
            "retries": self.relay.get("retries", 0),
            "latency_p50_cycles": self.latency_hist.p50,
            "latency_p95_cycles": self.latency_hist.p95,
            "latency_p99_cycles": self.latency_hist.p99,
            "world_switches": self.world_switches,
            "energy_mj": self.energy_mj,
            "battery_days": self.battery_days,
            "secure_fault_profile": self.spec.secure_fault_profile,
            "ingest_profile": self.spec.ingest_profile,
            "client_crash_profile": self.spec.client_crash_profile,
            "restarts": self.restarts,
            "degraded": self.degraded,
            "client_restarts": self.client_restarts,
            "sample_rate": self.sample_rate,
        }


@dataclass
class DeviceRuntime:
    """A device report plus the live simulation objects behind it.

    For in-process consumers only (the health CLI reads the machine's
    tracer/clock and routes alerts through the platform's relay); never
    crosses a process boundary and never appears in fleet documents.
    """

    report: DeviceReport
    machine: Any
    platform: Any
    ta_uuid: Any


def _run_with_client_crashes(pipeline, workload, config: ClientCrashConfig):
    """Run a workload with client crash/restart chaos at utterance bounds.

    Before each utterance the injector may kill the client application
    (:meth:`SecurePipeline.crash_client` — session, supervisor and
    sequence counter gone, TA instance torn down with it) and immediately
    restart it (:meth:`SecurePipeline.recover_client` — fresh session,
    TA restored from sealed checkpoint + queue, sequence resumed from
    ``CMD_RESUME``).  The results list lives harness-side (it stands in
    for decisions already committed at the cloud), so the run document
    keeps every utterance while the client loses all in-process state.
    """
    from repro.core.results import PipelineRunResult

    injector = ClientCrashInjector(config, pipeline.platform.rng)
    run = PipelineRunResult(pipeline=pipeline.name)
    for item in workload:
        if injector.fires():
            pipeline.crash_client()
            pipeline.recover_client()
        run.results.append(pipeline.process_item(item))
    pipeline._collect_stats(run)
    return run


def simulate_device_runtime(
    spec: DeviceSpec,
    bundle,
    observability: bool = True,
    recorder=None,
    sample_rate: int | str = 1,
    collect_traces: bool = False,
) -> DeviceRuntime:
    """Run one device's workload, keeping the live machine around.

    Fleet-level metrics (``fleet.*``) are recorded into the device's own
    registry so that merging registries yields the fleet rollup for free;
    recording is a no-op when the machine's observability is disabled
    (``observability=False``), and either way the pipeline's decisions
    are untouched.  ``recorder`` attaches a health
    :class:`~repro.obs.health.FlightRecorder` before the run so a later
    SLO violation can dump the spans that led up to it.

    ``sample_rate`` (an int or ``"auto"``, see :func:`resolve_sample_rate`)
    reduces telemetry 1-in-k: the registry samples histogram observations
    with weight ``k`` and the report keeps every k-th latency and trace.
    ``collect_traces`` turns on deterministic trace-id stamping in the
    pipeline and retains the trace-stamped span docs on the report.
    Neither knob touches decisions — they change what telemetry is
    *kept*, never what the pipeline does.
    """
    from repro.core.pipeline import SecurePipeline
    from repro.core.platform import IotPlatform
    from repro.core.workload import UtteranceWorkload
    from repro.ml.dataset import UtteranceGenerator
    from repro.optee.supervise import SupervisorPolicy
    from repro.sim.rng import SimRng

    sample_rate = resolve_sample_rate(sample_rate, spec.fault_profile)
    secure_faults = spec.secure_fault_config()
    crash_config = spec.client_crash_config()
    platform = IotPlatform.create(
        seed=spec.seed,
        network_faults=spec.fault_config(),
        secure_faults=secure_faults,
        ingestion=spec.ingest_config(),
    )
    if not observability:
        platform.machine.obs.disable()
    if recorder is not None:
        platform.machine.obs.attach_recorder(recorder)
    # Sampling must be live before the run so span-fed histograms sample
    # at record time (systematic 1-in-k, weight k — see set_sampling).
    platform.machine.obs.metrics.set_sampling(sample_rate)
    # Secure-world faults without supervision would just kill the run;
    # chaos devices therefore run supervised (checkpoint + restart).
    # Client-crash devices run supervised too: CMD_RESUME recovery is
    # only meaningful when checkpoints are actually sealed.
    supervised = secure_faults is not None or (
        crash_config is not None and crash_config.enabled
    )
    pipeline = SecurePipeline(
        platform,
        bundle,
        supervisor=SupervisorPolicy() if supervised else None,
        device_id=spec.device_id,
        trace_ids=collect_traces,
    )
    corpus = UtteranceGenerator(SimRng(spec.seed, "fleet")).generate(
        spec.utterances, sensitive_fraction=spec.sensitive_fraction
    )
    workload = UtteranceWorkload.from_corpus(corpus, bundle.vocoder)
    try:
        if crash_config is not None and crash_config.enabled:
            run = _run_with_client_crashes(pipeline, workload, crash_config)
        else:
            run = pipeline.process(workload)
        # Commit whatever the admission tier still holds in its tenant
        # queues so the device report reflects the cloud's final state
        # (a no-op for the legacy accept-all cloud).
        platform.cloud.flush()
        client_restarts = pipeline.client_restarts
    finally:
        pipeline.close()

    summary = run.summary()
    relay = dict(run.relay_stats)
    all_latencies = [r.latency_cycles for r in run.results]
    # The report ships every k-th latency with weight k — same phase as
    # the registry's systematic sampler, so the two stay consistent and
    # merged fleet quantiles remain unbiased.
    latencies = all_latencies[::sample_rate]
    hist = BucketHistogram(LATENCY_METRIC)
    for lat in latencies:
        hist.observe(lat, weight=sample_rate)

    machine = platform.machine
    energy_mj = platform.energy.report().total_mj
    per_utt_mj = energy_mj / len(run.results) if run.results else 0.0
    battery = project_battery_life(per_utt_mj)

    metrics = machine.obs.metrics
    # Pre-create every fleet counter so the registry's counter set is
    # identical whether the run had traffic for it or not (merges and
    # exports depend on the namespace, not the values).
    for name in (
        "fleet.utterances", "fleet.relay.forwarded", "fleet.relay.sent",
        "fleet.relay.queued", "fleet.relay.throttled", "fleet.relay.shed",
        "fleet.relay.retries", "fleet.relay.rehandshakes",
        "fleet.world_switches", "fleet.client_restarts",
    ):
        metrics.inc(name, 0)
    # Per-result recording on a synthetic device timeline (cumulative
    # end-to-end cycles): each utterance advances the cursor and stamps
    # one snapshot, which is the time series burn-rate SLOs window over.
    # The totals are provably the old bulk totals — summary() counts
    # exactly these predicates over the same results.
    cursor = 0
    for i, r in enumerate(run.results):
        metrics.observe(LATENCY_METRIC, r.latency_cycles)
        metrics.observe(ENERGY_METRIC, r.energy_mj)
        metrics.inc("fleet.utterances", 1)
        if r.forwarded:
            metrics.inc("fleet.relay.forwarded", 1)
        if r.relay_status == "sent":
            metrics.inc("fleet.relay.sent", 1)
        elif r.relay_status == "queued":
            metrics.inc("fleet.relay.queued", 1)
        elif r.relay_status == "throttled":
            metrics.inc("fleet.relay.throttled", 1)
        elif r.relay_status == "shed":
            metrics.inc("fleet.relay.shed", 1)
        cursor += r.latency_cycles
        # The snapshot ring is shipped telemetry too, so its cadence
        # follows the sampling rate: a 1-in-k device stamps every k-th
        # utterance, plus the final one so the totals always land in the
        # ring.  Counters are cumulative, so deltas stay exact — coarser
        # cadence trades burn-rate detection latency for bytes (T15
        # measures that trade), never correctness.
        if (i + 1) % sample_rate == 0 or i + 1 == len(run.results):
            metrics.record_snapshot(cursor)
    metrics.inc("fleet.relay.retries", relay.get("retries", 0))
    metrics.inc("fleet.relay.rehandshakes", relay.get("rehandshakes", 0))
    metrics.inc("fleet.world_switches", machine.cpu.switch_count)
    metrics.inc("fleet.client_restarts", client_restarts)
    # Per-utterance energy lives in the ENERGY_METRIC histogram above —
    # an intensive (per-utterance) gauge would sum to devices× the true
    # value under registry merge.  Gauges here must stay extensive.
    metrics.set("fleet.relay.queue_depth", relay.get("queue_depth", 0))

    trace_spans: list[dict[str, Any]] = []
    if collect_traces:
        # Keep every k-th *trace* (whole utterances, by first appearance)
        # rather than every k-th span, so kept traces stay complete
        # device→relay→queue stories under sampling.
        order: dict[str, int] = {}
        for sp in machine.obs.tracer.spans:
            tid = sp.trace_id
            if tid and tid not in order:
                order[tid] = len(order)
        keep = {tid for tid, i in order.items() if i % sample_rate == 0}
        trace_spans = [
            sp.to_doc()
            for sp in machine.obs.tracer.spans
            if sp.trace_id in keep
        ]

    restarts = (
        pipeline.supervisor.restarts if pipeline.supervisor is not None else 0
    )
    report = DeviceReport(
        spec=spec,
        summary=summary,
        relay=relay,
        latencies=latencies,
        latency_hist=hist,
        registry=metrics,
        world_switches=machine.cpu.switch_count,
        energy_mj=energy_mj,
        battery_days=battery.days,
        restarts=restarts,
        degraded=run.degraded_count(),
        client_restarts=client_restarts,
        freq_hz=machine.clock.freq_hz,
        clock_now=machine.clock.now,
        heartbeats=span_heartbeats(machine.obs.tracer.spans),
        sample_rate=sample_rate,
        trace_spans=trace_spans,
    )
    return DeviceRuntime(
        report=report,
        machine=machine,
        platform=platform,
        ta_uuid=pipeline.ta_uuid,
    )


def simulate_device(
    spec: DeviceSpec,
    bundle,
    observability: bool = True,
    recorder=None,
    sample_rate: int | str = 1,
    collect_traces: bool = False,
) -> DeviceReport:
    """Run one device's workload and reduce it to a :class:`DeviceReport`.

    The document-only form of :func:`simulate_device_runtime`: the
    machine and platform are released as soon as the telemetry is
    extracted, so a fleet run holds O(1) simulation state per completed
    device and the report pickles cleanly across shard workers.
    """
    return simulate_device_runtime(
        spec, bundle, observability=observability, recorder=recorder,
        sample_rate=sample_rate, collect_traces=collect_traces,
    ).report


# -- shard workers ---------------------------------------------------------
#
# Workers are spawned (never forked): the parent ships the provisioned
# bundle ONCE per worker through the pool initializer, and each task is
# just (specs, observability) — tiny picklables.  The module global is
# re-created inside each worker process; it never leaks state between
# runs because every pool gets its own initializer call.

_WORKER_BUNDLE: Any = None


def _init_shard_worker(bundle_blob: bytes) -> None:
    """Pool initializer: unpack the shared filter bundle once per worker."""
    global _WORKER_BUNDLE
    _WORKER_BUNDLE = pickle.loads(bundle_blob)


def _run_shard(
    specs: list[DeviceSpec],
    observability: bool,
    sample_rate: int | str = 1,
    collect_traces: bool = False,
) -> list[DeviceReport]:
    """Simulate one contiguous roster slice; returns picklable reports."""
    return [
        simulate_device(
            spec, _WORKER_BUNDLE, observability=observability,
            sample_rate=sample_rate, collect_traces=collect_traces,
        )
        for spec in specs
    ]


@dataclass
class FleetReport:
    """Per-device rows plus the merged fleet-wide aggregates."""

    seed: int
    devices: list[DeviceReport] = field(default_factory=list)

    @property
    def latency_hist(self) -> BucketHistogram:
        """All devices' end-to-end latencies, merged.

        The empty-fleet reduction folds from an explicit empty histogram
        — an empty device list yields an empty histogram, not a
        ``TypeError`` from an initializer-less ``reduce``.
        """
        return reduce(
            BucketHistogram.merge,
            (d.latency_hist for d in self.devices),
            BucketHistogram(LATENCY_METRIC),
        )

    def merged_registry(self) -> MetricsRegistry:
        """Every device registry folded into one fleet registry."""
        merged = MetricsRegistry()
        for device in self.devices:
            merged.merge(device.registry)
        return merged

    @property
    def freq_hz(self) -> float:
        """The fleet's clock frequency (for cycle→ms rendering).

        Every roster device shares the default machine config today; the
        first device's frequency stands for the fleet, falling back to
        the simulator default for an empty report.
        """
        return self.devices[0].freq_hz if self.devices else DEFAULT_FREQ_HZ

    @property
    def relay_success_rate(self) -> float:
        """Fleet-wide immediate-delivery rate over forwarded decisions."""
        forwarded = sum(d.summary["forwarded"] for d in self.devices)
        sent = sum(d.summary["sent"] for d in self.devices)
        return sent / forwarded if forwarded else 1.0

    @property
    def queue_depth(self) -> int:
        """Store-and-forward backlog across the fleet."""
        return sum(d.relay.get("queue_depth", 0) for d in self.devices)

    @property
    def throttled(self) -> int:
        """Decisions spilled under cloud admission backpressure."""
        return sum(d.summary.get("throttled", 0) for d in self.devices)

    @property
    def shed(self) -> int:
        """Decisions refused fail-closed by bounded queues (accounted)."""
        return sum(d.summary.get("shed", 0) for d in self.devices)

    @property
    def restarts(self) -> int:
        """TA restarts across the fleet (chaos runs)."""
        return sum(d.restarts for d in self.devices)

    @property
    def client_restarts(self) -> int:
        """Client application crash/restart cycles across the fleet."""
        return sum(d.client_restarts for d in self.devices)

    @property
    def degraded(self) -> int:
        """Fail-closed (degraded) utterances across the fleet."""
        return sum(d.degraded for d in self.devices)

    def to_doc(self) -> dict[str, Any]:
        """JSON document for ``benchmarks/results/fleet.json``."""
        hist = self.latency_hist
        return {
            "seed": self.seed,
            "devices": [d.to_doc() for d in self.devices],
            "fleet": {
                "devices": len(self.devices),
                # Summary counts, not len(latencies): a sampled device
                # keeps 1-in-k latencies but still ran every utterance.
                "utterances": sum(
                    d.summary["utterances"] for d in self.devices
                ),
                "latency_p50_cycles": hist.p50,
                "latency_p95_cycles": hist.p95,
                "latency_p99_cycles": hist.p99,
                "latency_hist": hist.to_doc(),
                "relay_success_rate": self.relay_success_rate,
                "queue_depth": self.queue_depth,
                "throttled": self.throttled,
                "shed": self.shed,
                "restarts": self.restarts,
                "degraded": self.degraded,
                "client_restarts": self.client_restarts,
                "world_switches": sum(d.world_switches for d in self.devices),
                "energy_mj": sum(d.energy_mj for d in self.devices),
                "battery_days_min": min(
                    (d.battery_days for d in self.devices), default=0.0
                ),
            },
        }

    def table(self) -> str:
        """Human-readable fleet report (``repro fleet``)."""
        lines = [
            f"{'device':8s} {'profile':>10s} {'utt':>4s} {'fwd':>4s} "
            f"{'sent':>5s} {'queued':>6s} {'p50 ms':>7s} {'p95 ms':>7s} "
            f"{'switches':>8s} {'mJ':>8s} {'days':>7s}"
        ]
        for d in self.devices:
            lines.append(
                f"{d.spec.device_id:8s} {d.spec.fault_profile:>10s} "
                f"{d.summary['utterances']:>4d} {d.summary['forwarded']:>4d} "
                f"{d.summary['sent']:>5d} {d.summary['queued']:>6d} "
                f"{cycles_to_ms(d.latency_hist.p50, d.freq_hz):>7.2f} "
                f"{cycles_to_ms(d.latency_hist.p95, d.freq_hz):>7.2f} "
                f"{d.world_switches:>8d} {d.energy_mj:>8.1f} "
                f"{d.battery_days:>7.1f}"
            )
        hist = self.latency_hist
        freq = self.freq_hz
        lines.append("")
        lines.append(
            f"fleet    p50 {cycles_to_ms(hist.p50, freq):.2f} ms   "
            f"p95 {cycles_to_ms(hist.p95, freq):.2f} ms   "
            f"p99 {cycles_to_ms(hist.p99, freq):.2f} ms   "
            f"relay success {self.relay_success_rate:.0%}   "
            f"queue depth {self.queue_depth}"
        )
        if any(d.spec.secure_fault_profile != "none" for d in self.devices):
            lines.append(
                f"chaos    restarts {self.restarts}   "
                f"degraded {self.degraded}"
            )
        if self.throttled or self.shed or self.client_restarts:
            lines.append(
                f"ingest   throttled {self.throttled}   shed {self.shed}   "
                f"client restarts {self.client_restarts}"
            )
        return "\n".join(lines)


def run_fleet(
    devices: int = 8,
    seed: int = 7,
    utterances: int = 6,
    bundle=None,
    observability: bool = True,
    chaos: bool = False,
    overload: bool = False,
    client_crashes: bool = False,
    shards: int = 1,
    max_workers: int | None = None,
    sample_rate: int | str = 1,
    collect_traces: bool = False,
) -> FleetReport:
    """Simulate the fleet and return the merged report.

    One bundle is trained from ``seed`` and shared by every device (the
    fleet ships one model); pass a pre-provisioned ``bundle`` to skip
    training.  ``observability=False`` disables each device's obs layer —
    used by the determinism tests to show decisions are byte-identical
    either way.  ``chaos=True`` injects secure-world faults on every
    device and runs the TAs supervised.  ``overload=True`` starves every
    device's cloud admission tier so throttling (and, at bounded queue
    depth, fail-closed shedding) actually happens; ``client_crashes=True``
    adds normal-world client crash/restart chaos recovered through the
    TA's sealed state.  ``sample_rate`` (int or
    ``"auto"``) and ``collect_traces`` are the telemetry-volume knobs —
    see :func:`simulate_device_runtime`; neither affects decisions.

    ``shards > 1`` co-simulates the roster across that many worker
    processes (spawn-safe; at most ``max_workers`` concurrent, default
    one per shard capped by the executor).  Devices are independent
    simulations and shard groups are contiguous roster slices reassembled
    in order, so the merged report is byte-identical to ``shards=1`` for
    the same arguments — sharding is free parallelism, never a different
    answer.
    """
    if bundle is None:
        from repro.provision import provision_bundle

        bundle = provision_bundle(seed=seed).bundle

    specs = device_specs(
        devices, seed=seed, utterances=utterances, chaos=chaos,
        overload=overload, client_crashes=client_crashes,
    )
    report = FleetReport(seed=seed)
    if shards <= 1:
        for spec in specs:
            report.devices.append(
                simulate_device(
                    spec, bundle, observability=observability,
                    sample_rate=sample_rate, collect_traces=collect_traces,
                )
            )
        return report

    import multiprocessing

    groups = partition_specs(specs, shards)
    # Ship the (largest) shared object exactly once per worker, not once
    # per task: the initializer unpacks it into the worker's module
    # global.  Spawn (not fork) so workers never inherit parent state the
    # determinism contract doesn't account for.
    blob = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=max_workers or len(groups),
        mp_context=ctx,
        initializer=_init_shard_worker,
        initargs=(blob,),
    ) as pool:
        futures = [
            pool.submit(
                _run_shard, group, observability, sample_rate, collect_traces
            )
            for group in groups
        ]
        # Collect in submission order (== roster order), regardless of
        # which shard finishes first.
        for future in futures:
            report.devices.extend(future.result())
    return report
