"""The machine-level observability context.

One :class:`Observability` instance hangs off every
:class:`~repro.tz.machine.TrustZoneMachine` as ``machine.obs``, bundling
the span tracer and the metrics registry so instrumented subsystems reach
both through a single attribute.  It also subscribes to the clock to keep
live per-domain cycle counters in the registry (``cycles.<domain>``),
which gives ``repro profile`` whole-run domain totals without any
subsystem having to report them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import SpanTracer, _ActiveSpan
from repro.sim.clock import CycleDomain, SimClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.energy.model import EnergyMeter
    from repro.obs.health import FlightRecorder
    from repro.sim.trace import TraceLog
    from repro.tz.worlds import Cpu


class Observability:
    """Span tracer + metrics registry for one machine."""

    def __init__(
        self,
        clock: SimClock,
        trace: "TraceLog | None" = None,
        cpu: "Cpu | None" = None,
    ):
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(clock, trace=trace, cpu=cpu, metrics=self.metrics)
        self._clock = clock
        clock.subscribe(self._on_charge)

    def _on_charge(self, domain: CycleDomain, cycles: int) -> None:
        if self.metrics.enabled:
            self.metrics.counter(f"cycles.{domain.value}").inc(cycles)

    # -- convenience -----------------------------------------------------------

    def span(self, name: str, category: str = "span", **attrs: Any) -> _ActiveSpan:
        """Open a span on the machine's tracer."""
        return self.tracer.span(name, category=category, **attrs)

    def attach_energy(self, meter: "EnergyMeter") -> None:
        """Wire the platform energy meter into span attribution."""
        self.tracer.attach_energy(meter)

    def attach_recorder(self, recorder: "FlightRecorder | None") -> None:
        """Feed closed spans into a health flight recorder."""
        self.tracer.attach_recorder(recorder)

    def enable(self) -> None:
        """Resume span retention and metric recording."""
        self.tracer.enabled = True
        self.metrics.enabled = True

    def disable(self) -> None:
        """Stop retaining spans and recording metrics.

        Spans still *measure* (TA stage accounting depends on their
        durations); they just are not kept, counted or mirrored.  Because
        instrumentation is passive either way, a disabled run produces
        byte-identical pipeline outcomes to an enabled one.
        """
        self.tracer.enabled = False
        self.metrics.enabled = False
