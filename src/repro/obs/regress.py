"""Perf-regression gate: compare a profile against a committed baseline.

``repro profile`` measures where the cycles go; this module *enforces*
it.  A fresh :class:`~repro.obs.profile.ProfileReport` document is
compared per stage and per pipeline against a committed baseline
(``benchmarks/baselines/profile_baseline.json``) with tolerances on
cycles, world switches and energy.  CI runs it as the ``perf-gate`` job:
a change that blows a stage's budget fails the build with a table
pointing at the exact stage and metric.

The simulator is deterministic, so the baseline is tight: tolerances
exist to absorb numeric drift across numpy versions, not real
regressions.  Spending *less* than the baseline is reported as
``improved`` and passes — the gate is one-sided.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

_BASELINE_REL = (
    pathlib.Path("benchmarks") / "baselines" / "profile_baseline.json"
)


def _default_baseline_path() -> pathlib.Path:
    """Repo-rooted from a source checkout, CWD-relative when installed.

    From a checkout, ``parents[3]`` of this file is the repo root and the
    committed baseline lives there.  From an installed package that walk
    lands in site-packages' parents, so fall back to resolving against
    the current working directory instead of pointing at a path that can
    never exist.
    """
    try:
        root = pathlib.Path(__file__).resolve().parents[3]
    except IndexError:
        return _BASELINE_REL
    return root / _BASELINE_REL if (root / "benchmarks").is_dir() else (
        _BASELINE_REL
    )


BASELINE_PATH = _default_baseline_path()

@dataclass(frozen=True)
class Tolerance:
    """Allowed overshoot: ``current <= baseline * (1 + rel) + abs``."""

    rel: float = 0.10
    abs: float = 0.0

    def limit(self, baseline: float) -> float:
        """The largest passing value for ``baseline``."""
        return baseline * (1.0 + self.rel) + self.abs


# Per-metric budgets: relative headroom over baseline plus an absolute
# slack floor so near-zero baselines (e.g. 0 world switches) don't turn
# into zero-tolerance gates.
STAGE_METRICS: dict[str, Tolerance] = {
    "total_cycles": Tolerance(rel=0.10, abs=10_000),
    "world_switches": Tolerance(rel=0.10, abs=4),
    "energy_mj": Tolerance(rel=0.10, abs=0.5),
}

PIPELINE_METRICS: dict[str, Tolerance] = {
    "total_cycles": Tolerance(rel=0.10, abs=10_000),
    "world_switches": Tolerance(rel=0.10, abs=4),
    "energy_mj": Tolerance(rel=0.10, abs=0.5),
}


@dataclass(frozen=True)
class RegressionRow:
    """One (scope, metric) comparison."""

    scope: str  # "stage" or "pipeline"
    pipeline: str
    stage: str  # "" for pipeline-level rows
    metric: str
    baseline: float
    current: float
    limit: float
    status: str  # "ok" | "improved" | "regressed" | "missing" | "new"

    @property
    def delta_pct(self) -> float:
        """Relative change vs baseline (0 when the baseline is 0)."""
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.current - self.baseline) / self.baseline

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready comparison row."""
        return {
            "scope": self.scope,
            "pipeline": self.pipeline,
            "stage": self.stage,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "limit": self.limit,
            "delta_pct": self.delta_pct,
            "status": self.status,
        }


@dataclass
class RegressionReport:
    """Every comparison row plus the overall verdict."""

    rows: list[RegressionRow] = field(default_factory=list)

    @property
    def failures(self) -> list[RegressionRow]:
        """Rows that fail the gate."""
        return [r for r in self.rows if r.status in ("regressed", "missing")]

    @property
    def passed(self) -> bool:
        """True when no stage regressed or disappeared."""
        return not self.failures

    def to_doc(self) -> dict[str, Any]:
        """JSON document for artifacts."""
        return {
            "passed": self.passed,
            "rows": [r.to_doc() for r in self.rows],
        }

    def table(self, only_interesting: bool = True) -> str:
        """Human-readable gate output (``repro compare``).

        By default rows within budget are collapsed into a count; pass
        ``only_interesting=False`` for the full matrix.
        """
        shown = [
            r for r in self.rows
            if not only_interesting or r.status != "ok"
        ]
        lines = [
            f"{'scope':26s} {'metric':>14s} {'baseline':>13s} "
            f"{'current':>13s} {'Δ%':>7s} {'status':>9s}"
        ]
        for r in shown:
            where = f"{r.pipeline}/{r.stage}" if r.stage else r.pipeline
            lines.append(
                f"{where:26s} {r.metric:>14s} {r.baseline:>13.6g} "
                f"{r.current:>13.6g} {r.delta_pct:>+7.1f} {r.status:>9s}"
            )
        hidden = len(self.rows) - len(shown)
        if hidden:
            lines.append(f"... {hidden} within budget")
        lines.append(
            f"perf gate: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.failures)} failing of {len(self.rows)} checks)"
        )
        return "\n".join(lines)


def _judge(baseline: float, current: float, tol: Tolerance) -> str:
    if current > tol.limit(baseline):
        return "regressed"
    if current < baseline:
        return "improved"
    return "ok"


def compare_profiles(
    current: dict[str, Any],
    baseline: dict[str, Any],
    stage_tolerances: dict[str, Tolerance] | None = None,
    pipeline_tolerances: dict[str, Tolerance] | None = None,
) -> RegressionReport:
    """Compare two ``profile.json`` documents stage by stage.

    Baseline stages missing from the current profile fail (a stage that
    stopped running is a broken measurement, not a win); stages new in
    the current profile are reported as ``new`` and pass so adding
    instrumentation never blocks the gate.
    """
    stage_tols = stage_tolerances or STAGE_METRICS
    pipe_tols = pipeline_tolerances or PIPELINE_METRICS
    report = RegressionReport()

    def stage_key(doc_row: dict[str, Any]) -> tuple[str, str]:
        return (doc_row["pipeline"], doc_row["stage"])

    base_stages = {stage_key(r): r for r in baseline.get("stages", [])}
    cur_stages = {stage_key(r): r for r in current.get("stages", [])}

    for key, base_row in base_stages.items():
        pipeline, stage = key
        cur_row = cur_stages.get(key)
        for metric, tol in stage_tols.items():
            base_val = float(base_row.get(metric, 0))
            if cur_row is None:
                report.rows.append(RegressionRow(
                    scope="stage", pipeline=pipeline, stage=stage,
                    metric=metric, baseline=base_val, current=0.0,
                    limit=tol.limit(base_val), status="missing",
                ))
                continue
            cur_val = float(cur_row.get(metric, 0))
            report.rows.append(RegressionRow(
                scope="stage", pipeline=pipeline, stage=stage,
                metric=metric, baseline=base_val, current=cur_val,
                limit=tol.limit(base_val),
                status=_judge(base_val, cur_val, tol),
            ))
    for key, cur_row in cur_stages.items():
        if key in base_stages:
            continue
        pipeline, stage = key
        for metric, tol in stage_tols.items():
            cur_val = float(cur_row.get(metric, 0))
            report.rows.append(RegressionRow(
                scope="stage", pipeline=pipeline, stage=stage,
                metric=metric, baseline=0.0, current=cur_val,
                limit=0.0, status="new",
            ))

    base_pipes = baseline.get("pipelines", {})
    cur_pipes = current.get("pipelines", {})
    for name, base_summary in base_pipes.items():
        cur_summary = cur_pipes.get(name)
        for metric, tol in pipe_tols.items():
            base_val = float(base_summary.get(metric, 0))
            if cur_summary is None:
                report.rows.append(RegressionRow(
                    scope="pipeline", pipeline=name, stage="",
                    metric=metric, baseline=base_val, current=0.0,
                    limit=tol.limit(base_val), status="missing",
                ))
                continue
            cur_val = float(cur_summary.get(metric, 0))
            report.rows.append(RegressionRow(
                scope="pipeline", pipeline=name, stage="",
                metric=metric, baseline=base_val, current=cur_val,
                limit=tol.limit(base_val),
                status=_judge(base_val, cur_val, tol),
            ))
    return report


def load_profile_doc(path) -> dict[str, Any]:
    """Read a ``profile.json`` document from disk."""
    return json.loads(pathlib.Path(path).read_text())


def collect_current_for(baseline: dict[str, Any]) -> dict[str, Any]:
    """Re-measure a profile with the baseline's own parameters.

    Uses the seed/utterances/mode recorded in the baseline document so
    the comparison is measurement-for-measurement, never
    workload-vs-workload.
    """
    from repro.obs.profile import collect_profile

    report = collect_profile(
        seed=int(baseline.get("seed", 7)),
        utterances=int(baseline.get("utterances", 8)),
        continuous=baseline.get("mode") == "continuous",
    )
    return report.to_doc()
