"""Registry exporters: OpenMetrics / Prometheus text, JSONL, timelines.

The fleet tier needs metrics to leave the process: the OpenMetrics text
format feeds any Prometheus-compatible scraper or pushgateway, and the
JSONL form round-trips (``registry_from_jsonl``) so per-device registries
can be written by one run and merged by another — the transport behind
``repro fleet``'s merged report and the CI perf-gate artifacts.

Metric names are sanitized to the Prometheus grammar (dots become
underscores); :class:`~repro.obs.metrics.BucketHistogram` metrics export
as native Prometheus histograms with cumulative ``le`` buckets at the
log-spaced bucket upper bounds.

Trace correlation exporters: a fleet run that collected trace-stamped
spans (``run_fleet(collect_traces=True)``) exports a fleet-wide
correlated timeline — :func:`fleet_trace_jsonl` (one span per line, each
carrying its ``device`` and ``trace_id``) and :func:`fleet_chrome_trace`
(Chrome ``trace_event`` JSON with one track per device), so one utterance
can be followed device → relay → cloud across the whole roster.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import (
    BucketHistogram,
    MetricsRegistry,
    RegistrySnapshot,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.fleet import FleetReport

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar."""
    out = _NAME_OK.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label(value: str) -> str:
    """Inverse of the OpenMetrics label escaping applied on export.

    Walks the string left-to-right so ``\\\\n`` (escaped backslash then
    ``n``) is not confused with ``\\n`` (newline) — a naive chain of
    ``str.replace`` calls gets that wrong.
    """
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _render_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_name(k)}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(
    labels: dict[str, str] | None, extra: dict[str, str]
) -> dict[str, str]:
    return {**(labels or {}), **extra}


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_openmetrics(
    registry: MetricsRegistry,
    namespace: str = "repro",
    labels: dict[str, str] | None = None,
) -> str:
    """The registry in OpenMetrics / Prometheus text exposition format.

    ``labels`` (e.g. ``{"device": "d03"}``) are attached to every sample
    so fleet exports stay distinguishable after aggregation.  The output
    ends with ``# EOF`` per the OpenMetrics spec.
    """
    lines: list[str] = []
    snap_labels = _render_labels(labels)
    for name, value in registry.counters().items():
        metric = f"{namespace}_{sanitize_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total{snap_labels} {_format_value(float(value))}")
    for name, value in registry.gauges().items():
        metric = f"{namespace}_{sanitize_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{snap_labels} {_format_value(float(value))}")
    for name, hist in registry.histograms().items():
        metric = f"{namespace}_{sanitize_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cum = hist._zero
        if hist._zero:
            le = _render_labels(_merge_labels(labels, {"le": "0"}))
            lines.append(f"{metric}_bucket{le} {cum}")
        for idx in sorted(hist._buckets):
            cum += hist._buckets[idx]
            bound = hist.gamma ** idx
            le = _render_labels(_merge_labels(labels, {"le": repr(bound)}))
            lines.append(f"{metric}_bucket{le} {cum}")
        le = _render_labels(_merge_labels(labels, {"le": "+Inf"}))
        lines.append(f"{metric}_bucket{le} {hist.count}")
        lines.append(f"{metric}_sum{snap_labels} {_format_value(float(hist.total))}")
        lines.append(f"{metric}_count{snap_labels} {hist.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per metric; inverse of :func:`registry_from_jsonl`.

    Histograms carry their full bucket state so a reader can rebuild and
    *merge* them, not just read point summaries.
    """
    lines = []
    for name, value in registry.counters().items():
        lines.append(json.dumps(
            {"kind": "counter", "name": name, "value": value},
            sort_keys=True,
        ))
    for name, value in registry.gauges().items():
        lines.append(json.dumps(
            {"kind": "gauge", "name": name, "value": value},
            sort_keys=True,
        ))
    for name, hist in registry.histograms().items():
        lines.append(json.dumps(
            {"kind": "histogram", "name": name, "state": hist.to_doc()},
            sort_keys=True,
        ))
    snapshots = registry.snapshots
    if snapshots:
        lines.append(json.dumps(
            {"kind": "snapshots", "ring": [s.to_doc() for s in snapshots]},
            sort_keys=True,
        ))
    return "\n".join(lines)


def registry_from_jsonl(text: str) -> MetricsRegistry:
    """Rebuild a registry from its :func:`to_jsonl` export."""
    registry = MetricsRegistry()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        doc: dict[str, Any] = json.loads(line)
        kind = doc["kind"]
        if kind == "counter":
            registry.counter(doc["name"]).inc(int(doc["value"]))
        elif kind == "gauge":
            registry.gauge(doc["name"]).set(doc["value"])
        elif kind == "histogram":
            hist = BucketHistogram.from_doc(doc["state"])
            registry._histograms[hist.name] = hist
        elif kind == "snapshots":
            registry._snapshots = [
                RegistrySnapshot.from_doc(s) for s in doc["ring"]
            ]
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
    return registry


def fleet_trace_jsonl(report: "FleetReport") -> str:
    """Fleet-wide correlated timeline: one span document per line.

    Each line is a span doc (from :meth:`Span.to_doc`) extended with the
    owning ``device`` id, so a reader can follow a single ``trace_id``
    across every device, relay send, and queue drain that touched it.
    Requires the fleet to have been run with ``collect_traces=True``;
    devices that collected no trace spans contribute nothing.
    """
    lines = []
    for dev in report.devices:
        for doc in dev.trace_spans:
            lines.append(json.dumps({"device": dev.spec.device_id, **doc},
                                    sort_keys=True))
    return "\n".join(lines)


def fleet_chrome_trace(report: "FleetReport") -> str:
    """Chrome ``trace_event`` JSON for the fleet: one track per device.

    Timestamps convert device cycles to microseconds at the fleet clock
    rate; ``pid`` is the fleet, ``tid`` indexes the device roster so
    ``chrome://tracing`` / Perfetto renders one horizontal track per
    device with the trace id attached to each slice's args.
    """
    scale = 1e6 / float(report.freq_hz)
    events: list[dict[str, Any]] = []
    for tid, dev in enumerate(report.devices, start=1):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": dev.spec.device_id},
        })
        for doc in dev.trace_spans:
            events.append({
                "name": doc["name"],
                "cat": doc.get("category", "span"),
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": doc["start"] * scale,
                "dur": max(doc["end"] - doc["start"], 0) * scale,
                "args": dict(doc.get("attrs", {})),
            })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      sort_keys=True)
