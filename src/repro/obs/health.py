"""SLO health evaluation, span watchdog and flight recorder.

This is the alerting tier on top of the metrics registry: declarative
:class:`SloRule` budgets (latency quantiles, relay success ratios, queue
depth, battery drain) evaluated by a :class:`HealthMonitor`, a
:class:`Watchdog` that flags pipelines whose span heartbeats have gone
quiet, and a bounded :class:`FlightRecorder` ring that preserves the last
N spans so a firing rule dumps the run-up to the violation as JSONL — the
in-simulator equivalent of a crash dump attached to a page.

Like the rest of ``repro.obs``, all of it is passive: rules read the
registry, the watchdog reads the clock and retained spans, and the
recorder copies spans the tracer already measured.  Nothing here charges
cycles or consumes randomness, so health monitoring on or off leaves
pipeline decisions byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.span import Span, SpanTracer
    from repro.sim.clock import SimClock

_OPS = ("<=", ">=")


@dataclass(frozen=True)
class SloRule:
    """One declarative budget against the metrics registry.

    The measured value is, in order of precedence: the ``quantile`` of
    the histogram ``metric``; the ratio ``metric / denominator`` of two
    counters (1.0 when the denominator is zero or absent — no traffic
    means no violation); else the counter or gauge named ``metric``.
    The rule holds when ``value <op> threshold``.

    Measurement never creates metrics in the registry it observes: a
    quantile/scalar rule whose metric does not exist measures ``None``
    and :meth:`evaluate` reports it as failing with ``missing=True``, so
    a typo'd metric name surfaces instead of silently reading 0.

    ``gate`` names a counter that must be non-zero for the rule to apply
    at all: when the gate counter is absent or zero the rule passes
    vacuously (``gated=True``).  This is how conditional budgets avoid
    the no-data failure — e.g. ``recovery_time`` is only meaningful on
    runs where ``tee.restarts`` actually happened.
    """

    name: str
    metric: str
    op: str
    threshold: float
    quantile: float | None = None
    denominator: str | None = None
    description: str = ""
    gate: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.quantile}")

    def measure(self, registry: MetricsRegistry) -> float | None:
        """The rule's current value under ``registry`` (None = no data)."""
        if self.quantile is not None:
            hist = registry.histograms().get(self.metric)
            return None if hist is None else hist.quantile(self.quantile)
        counters = registry.counters()
        if self.denominator is not None:
            den = counters.get(self.denominator, 0)
            if den == 0:
                return 1.0
            return counters.get(self.metric, 0) / den
        if self.metric in counters:
            return float(counters[self.metric])
        gauges = registry.gauges()
        if self.metric in gauges:
            return float(gauges[self.metric])
        return None

    def evaluate(self, registry: MetricsRegistry) -> "SloEvaluation":
        """Measure and judge the rule (a missing metric fails as no-data).

        A gated rule whose gate counter is absent or zero passes
        vacuously — the condition it budgets never occurred.
        """
        if (
            self.gate is not None
            and registry.counters().get(self.gate, 0) == 0
        ):
            return SloEvaluation(rule=self, value=0.0, ok=True, gated=True)
        value = self.measure(registry)
        if value is None:
            return SloEvaluation(rule=self, value=0.0, ok=False, missing=True)
        ok = value <= self.threshold if self.op == "<=" else value >= self.threshold
        return SloEvaluation(rule=self, value=value, ok=ok)


@dataclass(frozen=True)
class SloEvaluation:
    """One rule's verdict (``missing`` = metric absent, not a budget miss)."""

    rule: SloRule
    value: float
    ok: bool
    missing: bool = False
    gated: bool = False

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready row for health reports."""
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "value": self.value,
            "ok": self.ok,
            "missing": self.missing,
            "gated": self.gated,
        }


def default_slo_rules(
    latency_budget_cycles: float = 2.0e9,  # 1 s at the 2 GHz sim clock
    relay_success_min: float = 0.9,
    max_queue_depth: int = 4,
    battery_drain_max_mj: float = 2_000.0,
    recovery_budget_cycles: float = 1.0e8,  # 50 ms at the 2 GHz sim clock
) -> list[SloRule]:
    """The stock fleet SLOs over the ``fleet.*`` metric namespace.

    Plus one recovery budget over ``tee.*``: the ``recovery_time`` rule
    bounds p99 panic-to-recovered time and is gated on ``tee.restarts``,
    so runs without any TA restart pass it vacuously instead of failing
    with NO DATA.
    """
    return [
        SloRule(
            name="p99_latency",
            metric="fleet.e2e_latency_cycles",
            quantile=0.99,
            op="<=",
            threshold=latency_budget_cycles,
            description="p99 end-to-end utterance latency budget",
        ),
        SloRule(
            name="relay_success",
            metric="fleet.relay.sent",
            denominator="fleet.relay.forwarded",
            op=">=",
            threshold=relay_success_min,
            description="forwarded decisions delivered without queueing",
        ),
        SloRule(
            name="queue_depth",
            metric="fleet.relay.queue_depth",
            op="<=",
            threshold=float(max_queue_depth),
            description="store-and-forward backlog bound",
        ),
        # Histogram-backed (not a gauge): per-utterance values merge
        # distribution-exactly across devices, so the rule reads the same
        # on one registry or a fleet-merged one.
        SloRule(
            name="battery_drain",
            metric="fleet.e2e_energy_mj",
            quantile=0.99,
            op="<=",
            threshold=battery_drain_max_mj,
            description="p99 per-utterance energy (battery drain) budget",
        ),
        # Histogram-backed for the same merge-exactness reason; gated so
        # restart-free runs pass vacuously rather than failing NO DATA.
        SloRule(
            name="recovery_time",
            metric="tee.recovery_cycles",
            quantile=0.99,
            op="<=",
            threshold=recovery_budget_cycles,
            gate="tee.restarts",
            description="p99 TA panic-to-recovered time budget",
        ),
    ]


@dataclass(frozen=True)
class WatchdogAlert:
    """A pipeline whose heartbeat went quiet."""

    category: str
    last_seen_cycle: int
    idle_cycles: int

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready alert row."""
        return {
            "category": self.category,
            "last_seen_cycle": self.last_seen_cycle,
            "idle_cycles": self.idle_cycles,
        }


def span_heartbeats(spans) -> dict[str, int]:
    """Last heartbeat cycle per top-level span category.

    Each span counts as a heartbeat for its top-level category
    (``stage.secure`` beats ``stage``); the returned map is the newest
    ``end_cycle`` per track.  This is the serializable essence of the
    watchdog's input: a fleet device report carries it across process
    boundaries so the watchdog can run without the live tracer.
    """
    last_end: dict[str, int] = {}
    for sp in spans:
        track = sp.category.split(".")[0]
        last_end[track] = max(last_end.get(track, 0), sp.end_cycle)
    return last_end


def check_heartbeats(
    heartbeats: dict[str, int],
    now: int,
    stall_cycles: int = 10_000_000_000,
) -> list[WatchdogAlert]:
    """Stalled tracks in a heartbeat map as of cycle ``now``.

    The doc-level form of :meth:`Watchdog.check`: works on a serialized
    ``{track: last_end_cycle}`` map (e.g. from a fleet device report)
    instead of a live tracer.  An *empty* map reports the sentinel
    ``(no spans)`` category so a dead pipeline cannot look healthy.
    """
    if stall_cycles <= 0:
        raise ValueError("stall_cycles must be positive")
    if not heartbeats:
        return [WatchdogAlert("(no spans)", 0, now)]
    return [
        WatchdogAlert(track, end, now - end)
        for track, end in sorted(heartbeats.items())
        if now - end > stall_cycles
    ]


class Watchdog:
    """Flags span categories that stopped producing heartbeats.

    Each retained span counts as a heartbeat for its top-level category
    (``stage.secure`` beats ``stage``).  A category whose newest span
    ended more than ``stall_cycles`` before the clock's current cycle is
    stalled; a tracer with *no* retained spans at all reports the
    sentinel ``(no spans)`` category so a dead pipeline cannot look
    healthy.
    """

    def __init__(self, tracer: "SpanTracer", clock: "SimClock",
                 stall_cycles: int = 10_000_000_000):
        if stall_cycles <= 0:
            raise ValueError("stall_cycles must be positive")
        self._tracer = tracer
        self._clock = clock
        self.stall_cycles = stall_cycles

    def check(self) -> list[WatchdogAlert]:
        """Stalled categories as of the clock's current cycle."""
        return check_heartbeats(
            span_heartbeats(self._tracer.spans),
            self._clock.now,
            self.stall_cycles,
        )


class FlightRecorder:
    """Bounded ring of the most recent spans, dumped when a rule fires.

    The ring is fed by the tracer (``tracer.attach_recorder``) on every
    span close, independent of span *retention* — the recorder keeps
    working even when the tracer's own buffer is disabled or has evicted
    history, which is exactly when a post-incident dump matters.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: deque["Span"] = deque(maxlen=capacity)

    def record(self, span: "Span") -> None:
        """Append one closed span (oldest falls off when full)."""
        self._ring.append(span)

    def __len__(self) -> int:
        return len(self._ring)

    def spans(self) -> list["Span"]:
        """The retained window, oldest first."""
        return list(self._ring)

    def dump_jsonl(self) -> str:
        """The window as JSON Lines (same schema as span exports)."""
        import json

        return "\n".join(
            json.dumps(sp.to_doc(), default=str) for sp in self._ring
        )


@dataclass
class HealthReport:
    """Every rule's verdict plus watchdog alerts and the flight dump."""

    evaluations: list[SloEvaluation] = field(default_factory=list)
    stalled: list[WatchdogAlert] = field(default_factory=list)
    flight_dump: str | None = None

    @property
    def violations(self) -> list[SloEvaluation]:
        """The rules that failed."""
        return [e for e in self.evaluations if not e.ok]

    @property
    def ok(self) -> bool:
        """True when every rule holds and nothing stalled."""
        return not self.violations and not self.stalled

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready health document."""
        return {
            "ok": self.ok,
            "rules": [e.to_doc() for e in self.evaluations],
            "stalled": [a.to_doc() for a in self.stalled],
            "flight_recorder_spans": (
                len(self.flight_dump.splitlines()) if self.flight_dump else 0
            ),
        }

    def table(self) -> str:
        """Human-readable verdict table (``repro health``)."""
        lines = [
            f"{'rule':16s} {'value':>14s} {'budget':>14s} {'status':>8s}"
        ]
        for e in self.evaluations:
            if e.gated:
                status = "gated"
            else:
                status = "ok" if e.ok else ("NO DATA" if e.missing else "VIOLATED")
            lines.append(
                f"{e.rule.name:16s} {e.value:>14.3g} "
                f"{e.rule.op + ' ' + format(e.rule.threshold, '.3g'):>14s} "
                f"{status:>8s}"
            )
        for alert in self.stalled:
            lines.append(
                f"{'watchdog':16s} {alert.category:>14s} "
                f"{alert.idle_cycles:>14d} {'STALLED':>8s}"
            )
        return "\n".join(lines)


class HealthMonitor:
    """Evaluates SLO rules and triggers the flight recorder.

    Wire it with the registry under observation, the rules, and
    optionally a recorder (for violation dumps) and a watchdog (for
    stall detection).  :meth:`evaluate` is pure observation and can run
    at any cadence.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: list[SloRule] | None = None,
        recorder: FlightRecorder | None = None,
        watchdog: Watchdog | None = None,
    ):
        self.registry = registry
        self.rules = list(rules) if rules is not None else default_slo_rules()
        self.recorder = recorder
        self.watchdog = watchdog

    def evaluate(self, dump_path=None) -> HealthReport:
        """Judge every rule; dump the flight recorder if anything fired.

        ``dump_path`` (a path-like) additionally writes the dump to disk,
        creating parent directories — the alerting hook a deployment
        would replace with its pager.
        """
        report = HealthReport(
            evaluations=[rule.evaluate(self.registry) for rule in self.rules]
        )
        if self.watchdog is not None:
            report.stalled = self.watchdog.check()
        if not report.ok and self.recorder is not None:
            report.flight_dump = self.recorder.dump_jsonl()
            if dump_path is not None:
                import pathlib

                path = pathlib.Path(dump_path)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(report.flight_dump + "\n")
        return report
