"""SLO health evaluation, burn rates, span watchdog and flight recorder.

This is the alerting tier on top of the metrics registry: declarative
:class:`SloRule` budgets (latency quantiles, relay success ratios, queue
depth, battery drain) evaluated by a :class:`HealthMonitor`, a
:class:`Watchdog` that flags pipelines whose span heartbeats have gone
quiet, and a bounded :class:`FlightRecorder` ring that preserves the last
N spans so a firing rule dumps the run-up to the violation as JSONL — the
in-simulator equivalent of a crash dump attached to a page.

Beyond point-in-time rule checks, rules that declare an *error budget*
(``budget_per_hour``) are evaluated as SRE-style multi-window burn rates
(:func:`evaluate_burn_rates`): bad events are counted from snapshot-ring
*deltas* — not lifetime totals — over a slow window and a 12×-faster
window, and the budget only "burns" when both windows exceed the factor.
Because the ring merges associatively (see
:func:`repro.obs.metrics.merge_snapshot_rings`), the same evaluation on a
merged sharded fleet report is byte-identical to the sequential run.

Like the rest of ``repro.obs``, all of it is passive: rules read the
registry, the watchdog reads the clock and retained spans, and the
recorder copies spans the tracer already measured.  Nothing here charges
cycles or consumes randomness, so health monitoring on or off leaves
pipeline decisions byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry, RegistrySnapshot
from repro.sim.clock import DEFAULT_FREQ_HZ

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.span import Span, SpanTracer
    from repro.sim.clock import SimClock

_OPS = ("<=", ">=")

_SECONDS_PER_HOUR = 3600.0

#: Fast-window divisor for multi-window burn alerts: the classic SRE
#: pairing is a 1 h slow window with a 5 min fast window (12:1), so the
#: fast window is always ``window_hours / 12``.
FAST_WINDOW_DIVISOR = 12.0


@dataclass(frozen=True)
class SloRule:
    """One declarative budget against the metrics registry.

    The measured value is, in order of precedence: the ``quantile`` of
    the histogram ``metric``; the ratio ``metric / denominator`` of two
    counters (1.0 when the denominator is zero or absent — no traffic
    means no violation); else the counter or gauge named ``metric``.
    The rule holds when ``value <op> threshold``.

    Measurement never creates metrics in the registry it observes: a
    quantile/scalar rule whose metric does not exist measures ``None``
    and :meth:`evaluate` reports it as failing with ``missing=True``, so
    a typo'd metric name surfaces instead of silently reading 0.

    ``gate`` names a counter that must be non-zero for the rule to apply
    at all: when the gate counter is absent or zero the rule passes
    vacuously (``gated=True``).  This is how conditional budgets avoid
    the no-data failure — e.g. ``recovery_time`` is only meaningful on
    runs where ``tee.restarts`` actually happened.

    ``budget_per_hour`` opts the rule into burn-rate evaluation: it is
    the number of *bad events* the rule tolerates per simulated hour
    (observations past a quantile threshold, or failed events of a
    ratio/counter rule).  Rules without a budget — and gauge rules,
    whose values are not event streams — are skipped by
    :func:`evaluate_burn_rates`.
    """

    name: str
    metric: str
    op: str
    threshold: float
    quantile: float | None = None
    denominator: str | None = None
    description: str = ""
    gate: str | None = None
    budget_per_hour: float | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.quantile}")
        if self.budget_per_hour is not None and self.budget_per_hour <= 0:
            raise ValueError(
                f"budget_per_hour must be positive, got {self.budget_per_hour}"
            )

    def measure(self, registry: MetricsRegistry) -> float | None:
        """The rule's current value under ``registry`` (None = no data)."""
        if self.quantile is not None:
            hist = registry.histograms().get(self.metric)
            return None if hist is None else hist.quantile(self.quantile)
        counters = registry.counters()
        if self.denominator is not None:
            den = counters.get(self.denominator, 0)
            if den == 0:
                return 1.0
            return counters.get(self.metric, 0) / den
        if self.metric in counters:
            return float(counters[self.metric])
        gauges = registry.gauges()
        if self.metric in gauges:
            return float(gauges[self.metric])
        return None

    def evaluate(self, registry: MetricsRegistry) -> "SloEvaluation":
        """Measure and judge the rule (a missing metric fails as no-data).

        A gated rule whose gate counter is absent or zero passes
        vacuously — the condition it budgets never occurred.
        """
        if (
            self.gate is not None
            and registry.counters().get(self.gate, 0) == 0
        ):
            return SloEvaluation(rule=self, value=0.0, ok=True, gated=True)
        value = self.measure(registry)
        if value is None:
            return SloEvaluation(rule=self, value=0.0, ok=False, missing=True)
        ok = value <= self.threshold if self.op == "<=" else value >= self.threshold
        return SloEvaluation(rule=self, value=value, ok=ok)


@dataclass(frozen=True)
class SloEvaluation:
    """One rule's verdict (``missing`` = metric absent, not a budget miss)."""

    rule: SloRule
    value: float
    ok: bool
    missing: bool = False
    gated: bool = False

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready row for health reports."""
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "value": self.value,
            "ok": self.ok,
            "missing": self.missing,
            "gated": self.gated,
        }


def default_slo_rules(
    latency_budget_cycles: float = 2.0e9,  # 1 s at the 2 GHz sim clock
    relay_success_min: float = 0.9,
    max_queue_depth: int = 4,
    battery_drain_max_mj: float = 2_000.0,
    recovery_budget_cycles: float = 1.0e8,  # 50 ms at the 2 GHz sim clock
    shed_rate_max: float = 0.5,
    admission_p99_max_cycles: float = 50_000.0,
) -> list[SloRule]:
    """The stock fleet SLOs over the ``fleet.*`` metric namespace.

    Plus one recovery budget over ``tee.*``: the ``recovery_time`` rule
    bounds p99 panic-to-recovered time and is gated on ``tee.restarts``,
    so runs without any TA restart pass it vacuously instead of failing
    with NO DATA.  The two ingestion rules are gated the same way:
    ``shed_rate`` only applies once a bounded queue actually shed
    (fail-closed loss is budgeted, never unbounded), and
    ``admission_latency`` only applies on runs where the cloud admission
    tier accepted traffic at all.
    """
    return [
        SloRule(
            name="p99_latency",
            metric="fleet.e2e_latency_cycles",
            quantile=0.99,
            op="<=",
            threshold=latency_budget_cycles,
            description="p99 end-to-end utterance latency budget",
            budget_per_hour=60.0,
        ),
        SloRule(
            name="relay_success",
            metric="fleet.relay.sent",
            denominator="fleet.relay.forwarded",
            op=">=",
            threshold=relay_success_min,
            description="forwarded decisions delivered without queueing",
            budget_per_hour=60.0,
        ),
        SloRule(
            name="queue_depth",
            metric="fleet.relay.queue_depth",
            op="<=",
            threshold=float(max_queue_depth),
            description="store-and-forward backlog bound",
        ),
        # Histogram-backed (not a gauge): per-utterance values merge
        # distribution-exactly across devices, so the rule reads the same
        # on one registry or a fleet-merged one.
        SloRule(
            name="battery_drain",
            metric="fleet.e2e_energy_mj",
            quantile=0.99,
            op="<=",
            threshold=battery_drain_max_mj,
            description="p99 per-utterance energy (battery drain) budget",
        ),
        # Histogram-backed for the same merge-exactness reason; gated so
        # restart-free runs pass vacuously rather than failing NO DATA.
        SloRule(
            name="recovery_time",
            metric="tee.recovery_cycles",
            quantile=0.99,
            op="<=",
            threshold=recovery_budget_cycles,
            gate="tee.restarts",
            description="p99 TA panic-to-recovered time budget",
        ),
        # Shedding is deliberate, accounted loss under overload — but it
        # must stay a bounded fraction of forwarded decisions.  Gated on
        # the shed counter itself: no sheds, nothing to budget.
        SloRule(
            name="shed_rate",
            metric="fleet.relay.shed",
            denominator="fleet.relay.forwarded",
            op="<=",
            threshold=shed_rate_max,
            gate="fleet.relay.shed",
            description="fail-closed queue sheds per forwarded decision",
            budget_per_hour=60.0,
        ),
        # Histogram-backed admission decision latency at the cloud's
        # multi-tenant ingestion tier; gated so accept-all (legacy) runs
        # pass vacuously rather than failing NO DATA.
        SloRule(
            name="admission_latency",
            metric="cloud.ingest.admission_cycles",
            quantile=0.99,
            op="<=",
            threshold=admission_p99_max_cycles,
            gate="cloud.ingest.accepted",
            description="p99 cloud admission decision latency budget",
        ),
    ]


@dataclass(frozen=True)
class BurnRateEvaluation:
    """One budgeted rule's multi-window burn verdict.

    ``burn_slow``/``burn_fast`` are the observed bad-event rate divided
    by the budgeted rate over the slow window and the 12×-faster window;
    a burn of 1.0 means the budget is being consumed exactly as fast as
    it refills.  ``firing`` requires *both* windows past the factor —
    the fast window confirms the problem is still happening, the slow
    window that it is material.  ``no_data`` means the snapshot ring had
    no usable window for the rule's metric (too few snapshots, or the
    metric never appeared).
    """

    rule: SloRule
    window_hours: float
    fast_window_hours: float
    bad_slow: int = 0
    bad_fast: int = 0
    burn_slow: float = 0.0
    burn_fast: float = 0.0
    firing: bool = False
    no_data: bool = False

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready row for health reports."""
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "budget_per_hour": self.rule.budget_per_hour,
            "window_hours": self.window_hours,
            "fast_window_hours": self.fast_window_hours,
            "bad_slow": self.bad_slow,
            "bad_fast": self.bad_fast,
            "burn_slow": self.burn_slow,
            "burn_fast": self.burn_fast,
            "firing": self.firing,
            "no_data": self.no_data,
        }


def _bad_events(rule: SloRule, delta: RegistrySnapshot) -> int | None:
    """Bad events for ``rule`` inside a snapshot delta (None = no data).

    Quantile rules count observations in wholly-violating histogram
    buckets — bucket ``idx`` spans ``(gamma**(idx-1), gamma**idx]``, so
    under ``<=`` a bucket is bad iff its lower bound already exceeds the
    threshold (a conservative, merge-stable count).  Ratio rules count
    failed events from the counter deltas; plain counters count their
    own increments.  Gauge rules have no event stream and return None.
    """
    if rule.quantile is not None:
        state = delta.hists.get(rule.metric)
        if state is None:
            return None
        gamma = state["gamma"]
        bad = 0
        if rule.op == "<=":
            for idx, n in state["buckets"].items():
                if gamma ** (idx - 1) >= rule.threshold:
                    bad += n
        else:
            if rule.threshold > 0.0:
                bad += state["zero"]
            for idx, n in state["buckets"].items():
                if gamma ** idx < rule.threshold:
                    bad += n
        return bad
    if rule.denominator is not None:
        num = delta.counters.get(rule.metric)
        den = delta.counters.get(rule.denominator)
        if num is None and den is None:
            return None
        num = num or 0
        den = den or 0
        return max(den - num, 0) if rule.op == ">=" else num
    if rule.metric in delta.counters:
        return delta.counters[rule.metric] if rule.op == "<=" else None
    return None


def _window_start(
    snaps: list[RegistrySnapshot], horizon_cycle: int
) -> RegistrySnapshot:
    """Newest snapshot at/before ``horizon_cycle`` (oldest when none).

    Clamping to the oldest snapshot means short runs evaluate over the
    history they actually have instead of reporting NO DATA — the window
    is "up to W hours", never more.
    """
    start = snaps[0]
    for s in snaps:
        if s.cycle <= horizon_cycle:
            start = s
        else:
            break
    return start


def evaluate_burn_rates(
    registry: MetricsRegistry,
    rules: list[SloRule] | None = None,
    window_hours: float = 1.0,
    freq_hz: float = DEFAULT_FREQ_HZ,
    factor: float = 1.0,
) -> list[BurnRateEvaluation]:
    """Multi-window burn rates for every budgeted rule.

    For each rule with ``budget_per_hour`` set, bad events are counted
    over two windows of the registry's snapshot ring — ``window_hours``
    and ``window_hours / 12`` (the SRE 1 h / 5 min pairing) — and the
    rule fires when *both* windows burn past ``factor``.  Windows clamp
    to recorded history; elapsed time comes from the snapshots' actual
    cycle stamps, so the math is exact on any ring, including a merged
    sharded fleet ring (where it is byte-identical to the sequential
    run's).
    """
    if window_hours <= 0:
        raise ValueError(f"window_hours must be positive, got {window_hours}")
    if freq_hz <= 0:
        raise ValueError(f"freq_hz must be positive, got {freq_hz}")
    if rules is None:
        rules = default_slo_rules()
    budgeted = [r for r in rules if r.budget_per_hour is not None]
    snaps = registry.snapshots
    out: list[BurnRateEvaluation] = []
    fast_hours = window_hours / FAST_WINDOW_DIVISOR
    for rule in budgeted:
        windows: list[tuple[int, float] | None] = []
        for hours in (window_hours, fast_hours):
            result: tuple[int, float] | None = None
            if len(snaps) >= 2:
                end = snaps[-1]
                horizon = end.cycle - int(
                    hours * _SECONDS_PER_HOUR * freq_hz
                )
                start = _window_start(snaps, horizon)
                elapsed = end.cycle - start.cycle
                if elapsed > 0:
                    bad = _bad_events(rule, end.delta(start))
                    if bad is not None:
                        elapsed_hours = elapsed / (
                            _SECONDS_PER_HOUR * freq_hz
                        )
                        burn = (bad / elapsed_hours) / rule.budget_per_hour
                        result = (bad, burn)
            windows.append(result)
        slow, fast = windows
        if slow is None or fast is None:
            out.append(BurnRateEvaluation(
                rule=rule, window_hours=window_hours,
                fast_window_hours=fast_hours, no_data=True,
            ))
            continue
        out.append(BurnRateEvaluation(
            rule=rule,
            window_hours=window_hours,
            fast_window_hours=fast_hours,
            bad_slow=slow[0],
            bad_fast=fast[0],
            burn_slow=slow[1],
            burn_fast=fast[1],
            firing=slow[1] >= factor and fast[1] >= factor,
        ))
    return out


@dataclass(frozen=True)
class WatchdogAlert:
    """A pipeline whose heartbeat went quiet."""

    category: str
    last_seen_cycle: int
    idle_cycles: int

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready alert row."""
        return {
            "category": self.category,
            "last_seen_cycle": self.last_seen_cycle,
            "idle_cycles": self.idle_cycles,
        }


def span_heartbeats(spans) -> dict[str, int]:
    """Last heartbeat cycle per top-level span category.

    Each span counts as a heartbeat for its top-level category
    (``stage.secure`` beats ``stage``); the returned map is the newest
    ``end_cycle`` per track.  This is the serializable essence of the
    watchdog's input: a fleet device report carries it across process
    boundaries so the watchdog can run without the live tracer.
    """
    last_end: dict[str, int] = {}
    for sp in spans:
        track = sp.category.split(".")[0]
        last_end[track] = max(last_end.get(track, 0), sp.end_cycle)
    return last_end


def check_heartbeats(
    heartbeats: dict[str, int],
    now: int,
    stall_cycles: int = 10_000_000_000,
) -> list[WatchdogAlert]:
    """Stalled tracks in a heartbeat map as of cycle ``now``.

    The doc-level form of :meth:`Watchdog.check`: works on a serialized
    ``{track: last_end_cycle}`` map (e.g. from a fleet device report)
    instead of a live tracer.  An *empty* map reports the sentinel
    ``(no spans)`` category so a dead pipeline cannot look healthy.
    """
    if stall_cycles <= 0:
        raise ValueError("stall_cycles must be positive")
    if not heartbeats:
        return [WatchdogAlert("(no spans)", 0, now)]
    return [
        WatchdogAlert(track, end, now - end)
        for track, end in sorted(heartbeats.items())
        if now - end > stall_cycles
    ]


class Watchdog:
    """Flags span categories that stopped producing heartbeats.

    Each retained span counts as a heartbeat for its top-level category
    (``stage.secure`` beats ``stage``).  A category whose newest span
    ended more than ``stall_cycles`` before the clock's current cycle is
    stalled; a tracer with *no* retained spans at all reports the
    sentinel ``(no spans)`` category so a dead pipeline cannot look
    healthy.
    """

    def __init__(self, tracer: "SpanTracer", clock: "SimClock",
                 stall_cycles: int = 10_000_000_000):
        if stall_cycles <= 0:
            raise ValueError("stall_cycles must be positive")
        self._tracer = tracer
        self._clock = clock
        self.stall_cycles = stall_cycles

    def check(self) -> list[WatchdogAlert]:
        """Stalled categories as of the clock's current cycle."""
        return check_heartbeats(
            span_heartbeats(self._tracer.spans),
            self._clock.now,
            self.stall_cycles,
        )


class FlightRecorder:
    """Bounded ring of the most recent spans, dumped when a rule fires.

    The ring is fed by the tracer (``tracer.attach_recorder``) on every
    span close, independent of span *retention* — the recorder keeps
    working even when the tracer's own buffer is disabled or has evicted
    history, which is exactly when a post-incident dump matters.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: deque["Span"] = deque(maxlen=capacity)

    def record(self, span: "Span") -> None:
        """Append one closed span (oldest falls off when full)."""
        self._ring.append(span)

    def __len__(self) -> int:
        return len(self._ring)

    def spans(self) -> list["Span"]:
        """The retained window, oldest first."""
        return list(self._ring)

    def offending_trace(self) -> str:
        """The trace id of the worst trace-stamped span in the ring.

        "Worst" is the span with the most cycles (ties broken by later
        end cycle, then lexical trace id, so the choice is deterministic
        on any replay).  Returns ``""`` when no retained span carries a
        trace id.
        """
        best: tuple[tuple[int, int, str], str] | None = None
        for sp in self._ring:
            tid = sp.trace_id
            if not tid:
                continue
            key = (sp.cycles, sp.end_cycle, tid)
            if best is None or key > best[0]:
                best = (key, tid)
        return best[1] if best is not None else ""

    def dump_jsonl(self, trace_id: str | None = None) -> str:
        """The window as JSON Lines (same schema as span exports).

        With ``trace_id``, only spans stamped with that trace are dumped
        — the post-incident artifact is *the offending utterance's*
        device→relay→queue story, not everything the ring happened to
        hold.
        """
        import json

        spans = self._ring
        if trace_id:
            spans = [sp for sp in spans if sp.trace_id == trace_id]
        return "\n".join(
            json.dumps(sp.to_doc(), default=str) for sp in spans
        )


@dataclass
class HealthReport:
    """Every rule's verdict plus burn rates, watchdog alerts and the dump."""

    evaluations: list[SloEvaluation] = field(default_factory=list)
    stalled: list[WatchdogAlert] = field(default_factory=list)
    flight_dump: str | None = None
    burn_rates: list[BurnRateEvaluation] = field(default_factory=list)
    offending_trace: str = ""

    @property
    def violations(self) -> list[SloEvaluation]:
        """The rules that failed."""
        return [e for e in self.evaluations if not e.ok]

    @property
    def ok(self) -> bool:
        """True when every rule holds, no budget burns, nothing stalled."""
        return (
            not self.violations
            and not self.stalled
            and not any(b.firing for b in self.burn_rates)
        )

    @property
    def exit_code(self) -> int:
        """The ``repro health`` process contract (mirrors ``repro compare``).

        ``1`` for a real problem — a measured rule violation, a firing
        burn rate, or a watchdog stall; ``2`` when the only failures are
        NO DATA (missing metrics, or burn windows with no usable
        snapshots); ``0`` when everything holds.
        """
        real_violations = [e for e in self.violations if not e.missing]
        if (
            real_violations
            or self.stalled
            or any(b.firing for b in self.burn_rates)
        ):
            return 1
        if (
            any(e.missing for e in self.evaluations)
            or any(b.no_data for b in self.burn_rates)
        ):
            return 2
        return 0

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready health document."""
        return {
            "ok": self.ok,
            "exit_code": self.exit_code,
            "rules": [e.to_doc() for e in self.evaluations],
            "burn_rates": [b.to_doc() for b in self.burn_rates],
            "stalled": [a.to_doc() for a in self.stalled],
            "offending_trace": self.offending_trace,
            "flight_recorder_spans": (
                len(self.flight_dump.splitlines()) if self.flight_dump else 0
            ),
        }

    def table(self) -> str:
        """Human-readable verdict table (``repro health``)."""
        lines = [
            f"{'rule':16s} {'value':>14s} {'budget':>14s} {'status':>8s}"
        ]
        for e in self.evaluations:
            if e.gated:
                status = "gated"
            else:
                status = "ok" if e.ok else ("NO DATA" if e.missing else "VIOLATED")
            lines.append(
                f"{e.rule.name:16s} {e.value:>14.3g} "
                f"{e.rule.op + ' ' + format(e.rule.threshold, '.3g'):>14s} "
                f"{status:>8s}"
            )
        for b in self.burn_rates:
            if b.no_data:
                status = "NO DATA"
            else:
                status = "BURNING" if b.firing else "ok"
            lines.append(
                f"{'burn:' + b.rule.name:16s} {b.burn_slow:>14.3g} "
                f"{b.burn_fast:>14.3g} {status:>8s}"
            )
        for alert in self.stalled:
            lines.append(
                f"{'watchdog':16s} {alert.category:>14s} "
                f"{alert.idle_cycles:>14d} {'STALLED':>8s}"
            )
        if self.offending_trace:
            lines.append(f"offending trace: {self.offending_trace}")
        return "\n".join(lines)


class HealthMonitor:
    """Evaluates SLO rules and triggers the flight recorder.

    Wire it with the registry under observation, the rules, and
    optionally a recorder (for violation dumps) and a watchdog (for
    stall detection).  :meth:`evaluate` is pure observation and can run
    at any cadence.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: list[SloRule] | None = None,
        recorder: FlightRecorder | None = None,
        watchdog: Watchdog | None = None,
    ):
        self.registry = registry
        self.rules = list(rules) if rules is not None else default_slo_rules()
        self.recorder = recorder
        self.watchdog = watchdog

    def evaluate(
        self,
        dump_path=None,
        burn_window_hours: float | None = None,
        burn_factor: float = 1.0,
        trace_only: bool = False,
        freq_hz: float = DEFAULT_FREQ_HZ,
    ) -> HealthReport:
        """Judge every rule; dump the flight recorder if anything fired.

        ``dump_path`` (a path-like) additionally writes the dump to disk,
        creating parent directories — the alerting hook a deployment
        would replace with its pager.

        ``burn_window_hours`` additionally evaluates multi-window burn
        rates over the registry's snapshot ring (see
        :func:`evaluate_burn_rates`); a firing burn fails the report the
        same way a violated rule does.  ``trace_only`` narrows the
        flight dump to the offending trace's spans when one can be
        identified.
        """
        report = HealthReport(
            evaluations=[rule.evaluate(self.registry) for rule in self.rules]
        )
        if burn_window_hours is not None:
            report.burn_rates = evaluate_burn_rates(
                self.registry,
                self.rules,
                window_hours=burn_window_hours,
                freq_hz=freq_hz,
                factor=burn_factor,
            )
        if self.watchdog is not None:
            report.stalled = self.watchdog.check()
        if not report.ok and self.recorder is not None:
            report.offending_trace = self.recorder.offending_trace()
            narrowed = (
                report.offending_trace
                if trace_only and report.offending_trace
                else None
            )
            report.flight_dump = self.recorder.dump_jsonl(trace_id=narrowed)
            if dump_path is not None:
                import pathlib

                path = pathlib.Path(dump_path)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(report.flight_dump + "\n")
        return report
