"""Metrics registry: counters, gauges and cycle histograms.

The registry is the aggregate side of the observability layer: spans and
instrumented subsystems feed it, and ``repro profile`` / benchmarks read
it back.  Everything here is pure observation — recording a metric never
charges simulated cycles, touches the RNG, or otherwise perturbs the run,
which is what lets the instrumentation guarantee byte-identical pipeline
outcomes whether observability is enabled or not.

Two histogram flavours:

* :class:`CycleHistogram` keeps raw samples (bounded by ``max_samples``
  with head-keep semantics) so percentiles are exact for bounded runs —
  the per-stage profiler uses it because stage counts are small.
* :class:`BucketHistogram` is the fleet-scale variant: deterministic
  log-spaced buckets (DDSketch-style, relative-error bound ``gamma``)
  that stay exact while under the sample cap, degrade to bucket
  estimates for unbounded streams, and — the point — **merge** across
  devices without bias.  Registry histograms are bucketed so whole
  registries can be merged into fleet aggregates.

Two fleet-scale additions ride on the bucket machinery:

* **Weighted observations / adaptive sampling** — ``observe(v, weight=k)``
  records one retained sample standing for ``k`` identical stream values
  (bucket counts, count and total all advance by ``k``).  A registry put
  into 1-in-``k`` sampling mode (:meth:`MetricsRegistry.set_sampling`)
  records every ``k``-th histogram observation with weight ``k``, so a
  sampled device ships ~``1/k`` of the telemetry while merged fleet
  rates stay unbiased and merged quantiles stay within one bucket of the
  unsampled stream (systematic sampling; weights ride the ordinary
  bucket counts, so ``merge``/``to_doc`` need no special cases).
* **Snapshot ring** — :meth:`MetricsRegistry.record_snapshot` appends a
  compact cumulative :class:`RegistrySnapshot` (counters + histogram
  bucket state, no raw samples) at a simulated cycle, giving the health
  tier a *windowed* time series: burn-rate SLOs compute from snapshot
  deltas rather than lifetime totals.  Rings merge index-aligned
  (associative and commutative, like the histograms), so a merged fleet
  registry carries a fleet-wide snapshot timeline that is byte-identical
  whether devices were folded sequentially or across shards.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counter:
    """A monotonically increasing count (events, bytes, cycles)."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value (queue depth, heap usage)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value


@dataclass
class CycleHistogram:
    """Distribution of a cycle-valued measurement with exact percentiles.

    Samples are retained with *head-keep* semantics: the first
    ``max_samples`` observations are kept verbatim and later ones still
    update ``count``/``total``/``min``/``max`` but are **not** retained,
    so once :attr:`truncated` is true the percentiles describe only the
    head of the stream (a biased subset if the distribution drifts).
    :meth:`summary` reports ``truncated`` and ``retained`` so consumers
    can tell exact percentiles from head-kept ones; use
    :class:`BucketHistogram` when the stream is unbounded.
    """

    name: str
    max_samples: int = 65_536
    count: int = 0
    total: int = 0
    min: int | None = None
    max: int | None = None
    _samples: list[int] = field(default_factory=list, repr=False)

    def observe(self, value: int) -> None:
        """Record one sample."""
        value = int(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) over retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99)

    @property
    def mean(self) -> float:
        """Arithmetic mean over all observed samples."""
        return self.total / self.count if self.count else 0.0

    @property
    def truncated(self) -> bool:
        """True once percentiles cover only a head-kept subset."""
        return self.count > len(self._samples)

    def summary(self) -> dict[str, Any]:
        """Flat dict for reports (count/total/mean/min/max/percentiles).

        ``truncated`` / ``retained`` expose the head-keep cap: when
        ``truncated`` is true, only the first ``retained`` samples back
        the percentile fields.
        """
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min or 0,
            "max": self.max or 0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "truncated": self.truncated,
            "retained": len(self._samples),
        }


class BucketHistogram:
    """Mergeable distribution with deterministic log-spaced buckets.

    DDSketch-style: a positive value lands in the bucket ``i`` with
    ``gamma**(i-1) < value <= gamma**i`` (zero gets its own bucket), so a
    bucket-based quantile estimate is the true quantile within one
    bucket's relative error — ``q <= estimate <= q * gamma``.  While the
    total count is at most ``max_samples`` the raw samples are retained
    too and quantiles are *exact* (interpolated, matching
    :class:`CycleHistogram`); past the cap the samples are dropped and
    estimates come from the buckets — no head-keep truncation bias.

    ``merge`` combines two histograms of the same ``gamma`` into the
    distribution of the concatenated streams; it is associative and
    commutative, which is what lets a fleet report fold per-device
    histograms in any order.  Bucket indexing uses no RNG and is
    FP-guarded, so equal value streams always produce equal histograms.
    """

    __slots__ = ("name", "gamma", "max_samples", "count", "total",
                 "min", "max", "_zero", "_buckets", "_samples")

    def __init__(self, name: str, gamma: float = 1.2,
                 max_samples: int = 65_536):
        if gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1.0, got {gamma}")
        if max_samples < 0:
            raise ValueError("max_samples cannot be negative")
        self.name = name
        self.gamma = gamma
        self.max_samples = max_samples
        self.count = 0
        self.total = 0
        self.min: float | None = None
        self.max: float | None = None
        self._zero = 0
        self._buckets: dict[int, int] = {}
        # Kept sorted (insort) so quantiles never re-sort; None once the
        # stream outgrew the cap (estimates only).
        self._samples: list[float] | None = []

    # -- recording ---------------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        i = math.ceil(math.log(value) / math.log(self.gamma))
        # FP guard: enforce gamma**(i-1) < value <= gamma**i exactly so
        # boundary values bucket identically on every platform.
        while self.gamma ** i < value:
            i += 1
        while self.gamma ** (i - 1) >= value:
            i -= 1
        return i

    def observe(self, value: float, weight: int = 1) -> None:
        """Record one sample (non-negative), optionally weighted.

        ``weight=k`` records this value as standing for ``k`` identical
        stream observations — the adaptive-sampling contract: a device
        sampling 1-in-``k`` observes every kept value with weight ``k``,
        so counts, totals and bucket populations (and therefore merged
        fleet rates and bucket quantiles) stay unbiased.  Weighted
        observations drop the retained raw samples (``exact`` becomes
        false): a weight is a bucket-resolution statement, not ``k``
        recoverable values.
        """
        value = float(value)
        if value < 0:
            raise ValueError(
                f"histogram {self.name!r} cannot observe negative {value}"
            )
        weight = int(weight)
        if weight < 1:
            raise ValueError(
                f"histogram {self.name!r} weight must be >= 1, got {weight}"
            )
        self.count += weight
        self.total += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value == 0.0:
            self._zero += weight
        else:
            idx = self._bucket_index(value)
            self._buckets[idx] = self._buckets.get(idx, 0) + weight
        if self._samples is not None:
            if weight == 1 and self.count <= self.max_samples:
                bisect.insort(self._samples, value)
            else:
                self._samples = None

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "BucketHistogram") -> "BucketHistogram":
        """The histogram of the two concatenated streams (a new object).

        Associative and commutative: retained samples are kept sorted and
        only while the combined count fits under ``max_samples``, so the
        result depends on the merged multiset of values alone, never on
        merge order.
        """
        if not math.isclose(self.gamma, other.gamma):
            raise ValueError(
                f"cannot merge gamma={self.gamma} with gamma={other.gamma}"
            )
        out = BucketHistogram(
            self.name, gamma=self.gamma,
            max_samples=min(self.max_samples, other.max_samples),
        )
        out.count = self.count + other.count
        out.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        out.min = min(mins) if mins else None
        out.max = max(maxs) if maxs else None
        out._zero = self._zero + other._zero
        out._buckets = dict(self._buckets)
        for idx, n in other._buckets.items():
            out._buckets[idx] = out._buckets.get(idx, 0) + n
        if (self._samples is not None and other._samples is not None
                and out.count <= out.max_samples):
            out._samples = sorted(self._samples + other._samples)
        else:
            out._samples = None
        return out

    # -- reading back ------------------------------------------------------------

    @property
    def exact(self) -> bool:
        """True while quantiles come from retained raw samples."""
        return self._samples is not None

    @property
    def mean(self) -> float:
        """Arithmetic mean over all observed samples."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1): exact under the cap, else bucketed.

        The bucket estimate is each bucket's upper bound (clamped to the
        observed maximum), so it sits within ``gamma`` relative error
        above the nearest-rank exact quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self._samples is not None:
            ordered = self._samples  # kept sorted by observe/merge
            if len(ordered) == 1:
                return float(ordered[0])
            rank = q * (len(ordered) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(ordered) - 1)
            frac = rank - lo
            return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        rank = max(1, math.ceil(q * self.count))
        cum = self._zero
        if rank <= cum:
            return 0.0
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            if rank <= cum:
                estimate = self.gamma ** idx
                return min(estimate, self.max or estimate)
        return float(self.max or 0.0)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100); see :meth:`quantile`."""
        return self.quantile(p / 100.0)

    @property
    def p50(self) -> float:
        """Median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.quantile(0.99)

    def summary(self) -> dict[str, Any]:
        """Flat dict for reports; ``exact`` flags sample-backed quantiles."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min or 0,
            "max": self.max or 0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "exact": self.exact,
        }

    # -- (de)serialization -------------------------------------------------------

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready state (inverse of :meth:`from_doc`)."""
        return {
            "name": self.name,
            "gamma": self.gamma,
            "max_samples": self.max_samples,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "zero": self._zero,
            "buckets": {str(i): n for i, n in sorted(self._buckets.items())},
            "samples": self._samples,
        }

    @staticmethod
    def from_doc(doc: dict[str, Any]) -> "BucketHistogram":
        """Rebuild a histogram from its :meth:`to_doc` form."""
        h = BucketHistogram(
            str(doc["name"]), gamma=float(doc["gamma"]),
            max_samples=int(doc["max_samples"]),
        )
        h.count = int(doc["count"])
        h.total = doc["total"]
        h.min = doc["min"]
        h.max = doc["max"]
        h._zero = int(doc["zero"])
        h._buckets = {int(i): int(n) for i, n in doc["buckets"].items()}
        samples = doc.get("samples")
        # Re-sort defensively: quantiles assume the invariant even if the
        # doc was produced or edited elsewhere.
        h._samples = None if samples is None else sorted(
            float(v) for v in samples
        )
        return h


@dataclass(frozen=True)
class RegistrySnapshot:
    """Cumulative registry state at one simulated cycle (picklable).

    The unit of the windowed time series behind burn-rate SLOs: counters
    are carried verbatim and histograms as bucket state only
    (``{"gamma", "count", "zero", "buckets"}`` — no retained samples, so
    a snapshot is a few hundred bytes regardless of stream length).  Two
    snapshots subtract (:meth:`delta`) into the events of the window
    between them, and snapshots at the same ring index add
    (:meth:`merge`) into the fleet-wide snapshot for that epoch.
    """

    cycle: int
    counters: dict[str, int]
    hists: dict[str, dict[str, Any]]

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Pointwise sum (counters and bucket counts add, cycle = max)."""
        counters = dict(self.counters)
        for name, v in other.counters.items():
            counters[name] = counters.get(name, 0) + v
        hists = {n: _copy_hist_state(s) for n, s in self.hists.items()}
        for name, state in other.hists.items():
            mine = hists.get(name)
            if mine is None:
                hists[name] = _copy_hist_state(state)
                continue
            if not math.isclose(mine["gamma"], state["gamma"]):
                raise ValueError(
                    f"snapshot merge: gamma mismatch on {name!r}"
                )
            mine["count"] += state["count"]
            mine["zero"] += state["zero"]
            for idx, n in state["buckets"].items():
                mine["buckets"][idx] = mine["buckets"].get(idx, 0) + n
        return RegistrySnapshot(
            cycle=max(self.cycle, other.cycle), counters=counters, hists=hists
        )

    def delta(self, earlier: "RegistrySnapshot") -> "RegistrySnapshot":
        """Events between ``earlier`` and this snapshot (both cumulative).

        Counter and bucket values subtract (clamped at zero so a metric
        that first appears mid-ring never goes negative); ``cycle`` is
        the window length in cycles.
        """
        counters = {
            name: max(0, v - earlier.counters.get(name, 0))
            for name, v in self.counters.items()
        }
        hists: dict[str, dict[str, Any]] = {}
        for name, state in self.hists.items():
            prev = earlier.hists.get(
                name, {"gamma": state["gamma"], "count": 0, "zero": 0,
                       "buckets": {}},
            )
            hists[name] = {
                "gamma": state["gamma"],
                "count": max(0, state["count"] - prev["count"]),
                "zero": max(0, state["zero"] - prev["zero"]),
                "buckets": {
                    idx: n - prev["buckets"].get(idx, 0)
                    for idx, n in state["buckets"].items()
                    if n - prev["buckets"].get(idx, 0) > 0
                },
            }
        return RegistrySnapshot(
            cycle=self.cycle - earlier.cycle, counters=counters, hists=hists
        )

    def to_doc(self) -> dict[str, Any]:
        """JSON-ready form (inverse of :meth:`from_doc`)."""
        return {
            "cycle": self.cycle,
            "counters": dict(sorted(self.counters.items())),
            "hists": {
                name: {
                    "gamma": state["gamma"],
                    "count": state["count"],
                    "zero": state["zero"],
                    "buckets": {
                        str(i): n for i, n in sorted(state["buckets"].items())
                    },
                }
                for name, state in sorted(self.hists.items())
            },
        }

    @staticmethod
    def from_doc(doc: dict[str, Any]) -> "RegistrySnapshot":
        """Rebuild a snapshot from its :meth:`to_doc` form."""
        return RegistrySnapshot(
            cycle=int(doc["cycle"]),
            counters={n: int(v) for n, v in doc.get("counters", {}).items()},
            hists={
                name: {
                    "gamma": float(state["gamma"]),
                    "count": int(state["count"]),
                    "zero": int(state["zero"]),
                    "buckets": {
                        int(i): int(n)
                        for i, n in state.get("buckets", {}).items()
                    },
                }
                for name, state in doc.get("hists", {}).items()
            },
        )


def _copy_hist_state(state: dict[str, Any]) -> dict[str, Any]:
    return {
        "gamma": state["gamma"],
        "count": state["count"],
        "zero": state["zero"],
        "buckets": dict(state["buckets"]),
    }


def merge_snapshot_rings(
    a: list[RegistrySnapshot], b: list[RegistrySnapshot]
) -> list[RegistrySnapshot]:
    """Index-aligned merge of two snapshot rings.

    Ring index ``i`` is the *i*-th recording epoch of a device (the fleet
    runner snapshots once per utterance, so index == utterance epoch).
    The shorter ring is extended by repeating its final snapshot — a
    cumulative series holds its last value after the device stops — which
    makes the merge associative and commutative: every ring is treated as
    an infinite step series and summed pointwise, so fold order (and
    therefore sharding) cannot change the merged timeline.
    """
    if not a:
        return list(b)
    if not b:
        return list(a)
    out: list[RegistrySnapshot] = []
    for i in range(max(len(a), len(b))):
        sa = a[i] if i < len(a) else a[-1]
        sb = b[i] if i < len(b) else b[-1]
        out.append(sa.merge(sb))
    return out


class MetricsRegistry:
    """Named metrics, lazily created on first use.

    Instruments fetch their metric by name each time (`counter("tz.smc")`)
    so call sites stay one line and the registry remains the single
    namespace.  Dots namespace metrics the same way trace categories do
    (``tz.*``, ``optee.*``, ``stage.secure.*`` ...).
    """

    def __init__(self, snapshot_capacity: int = 512) -> None:
        if snapshot_capacity < 1:
            raise ValueError("snapshot_capacity must be positive")
        self.enabled = True
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, BucketHistogram] = {}
        # Adaptive telemetry sampling (1-in-k histogram observations,
        # weight-compensated); counters/gauges are never sampled.
        self.sample_every = 1
        self._sample_seen: dict[str, int] = {}
        # Windowed time series for burn-rate SLOs.
        self.snapshot_capacity = snapshot_capacity
        self._snapshots: list[RegistrySnapshot] = []

    # -- access / creation -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> BucketHistogram:
        """Get or create the (mergeable, log-bucketed) histogram ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = BucketHistogram(name)
        return h

    # -- one-line recording (no-ops when disabled) -------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (no-op while disabled)."""
        if self.enabled:
            self.counter(name).inc(n)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` (no-op while disabled)."""
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram sample (no-op while disabled).

        Under 1-in-``k`` sampling (:meth:`set_sampling`), every ``k``-th
        observation of each metric is recorded with weight ``k`` and the
        rest are dropped — systematic per-metric sampling, so the kept
        subset is deterministic and the weighted counts remain unbiased
        estimates of the full stream.
        """
        if not self.enabled:
            return
        k = self.sample_every
        if k <= 1:
            self.histogram(name).observe(value)
            return
        seen = self._sample_seen.get(name, 0)
        self._sample_seen[name] = seen + 1
        if seen % k == 0:
            self.histogram(name).observe(value, weight=k)

    def set_sampling(self, every: int) -> None:
        """Sample 1-in-``every`` histogram observations (1 = off).

        Recording (not measurement) policy: the pipeline's behaviour is
        untouched, only how much telemetry the registry retains.  The
        sampling weight rides the bucket counts, so merged fleet rates
        stay unbiased and quantiles stay within one bucket of the
        unsampled stream.
        """
        every = int(every)
        if every < 1:
            raise ValueError(f"sample_every must be >= 1, got {every}")
        self.sample_every = every

    # -- windowed snapshots (burn-rate time series) ------------------------------

    def record_snapshot(
        self, cycle: int, prefixes: tuple[str, ...] = ("fleet.", "tee.")
    ) -> None:
        """Append the cumulative state at ``cycle`` to the snapshot ring.

        Only metrics under ``prefixes`` are captured (the SLO namespaces
        by default) so snapshots stay small enough to take per utterance.
        Histograms are captured as bucket state without retained samples.
        The ring is bounded by ``snapshot_capacity`` (oldest dropped);
        no-op while the registry is disabled.
        """
        if not self.enabled:
            return
        counters = {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefixes)
        }
        hists = {
            name: {
                "gamma": h.gamma,
                "count": h.count,
                "zero": h._zero,
                "buckets": dict(h._buckets),
            }
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefixes)
        }
        self._snapshots.append(
            RegistrySnapshot(cycle=int(cycle), counters=counters, hists=hists)
        )
        if len(self._snapshots) > self.snapshot_capacity:
            del self._snapshots[: len(self._snapshots) - self.snapshot_capacity]

    @property
    def snapshots(self) -> list[RegistrySnapshot]:
        """The snapshot ring, oldest first (copy)."""
        return list(self._snapshots)

    # -- reading back -----------------------------------------------------------

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Counter values whose names start with ``prefix``."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> dict[str, BucketHistogram]:
        """Histograms whose names start with ``prefix``."""
        return {
            name: h
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def gauges(self, prefix: str = "") -> dict[str, float]:
        """Gauge values whose names start with ``prefix``."""
        return {
            name: g.value
            for name, g in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (fleet aggregation).

        Counters add, histograms merge distribution-exactly, and gauges
        *sum* — the fleet reading of a point-in-time value (total queue
        depth across devices); keep per-device registries when you need
        the individual readings.  Summing is only meaningful for
        *extensive* gauges (totals); record intensive per-unit values
        (e.g. energy per utterance) as histograms instead, so merging
        preserves the distribution rather than inflating the reading.
        """
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, g in other._gauges.items():
            self.gauge(name).set(self.gauge(name).value + g.value)
        for name, h in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = BucketHistogram(
                    name, gamma=h.gamma, max_samples=h.max_samples
                )
            self._histograms[name] = mine.merge(h)
        self._snapshots = merge_snapshot_rings(
            self._snapshots, other._snapshots
        )

    def snapshot(self) -> dict[str, Any]:
        """Everything, as a JSON-ready dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def to_doc(self) -> dict[str, Any]:
        """Full-fidelity JSON state (inverse of :meth:`from_doc`).

        Unlike :meth:`snapshot` (which summarizes histograms), this
        round-trips losslessly: histograms keep their buckets and retained
        samples, so ``from_doc(to_doc())`` merges identically to the
        original registry.  This is what lets shard workers hand whole
        registries back as documents.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_doc() for n, h in sorted(self._histograms.items())
            },
            "snapshots": [s.to_doc() for s in self._snapshots],
        }

    @staticmethod
    def from_doc(doc: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from its :meth:`to_doc` form."""
        reg = MetricsRegistry()
        for name, value in doc.get("counters", {}).items():
            reg.counter(name).inc(int(value))
        for name, value in doc.get("gauges", {}).items():
            reg.gauge(name).set(float(value))
        for name, hdoc in doc.get("histograms", {}).items():
            reg._histograms[name] = BucketHistogram.from_doc(hdoc)
        reg._snapshots = [
            RegistrySnapshot.from_doc(s) for s in doc.get("snapshots", [])
        ]
        return reg

    def reset(self) -> None:
        """Drop every metric (a fresh namespace)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._sample_seen.clear()
        self._snapshots.clear()
