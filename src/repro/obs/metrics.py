"""Metrics registry: counters, gauges and cycle histograms.

The registry is the aggregate side of the observability layer: spans and
instrumented subsystems feed it, and ``repro profile`` / benchmarks read
it back.  Everything here is pure observation — recording a metric never
charges simulated cycles, touches the RNG, or otherwise perturbs the run,
which is what lets the instrumentation guarantee byte-identical pipeline
outcomes whether observability is enabled or not.

Histograms keep raw samples (bounded by ``max_samples`` with reservoir-free
head-keep semantics: once full, new samples still update count/sum/min/max
but are not retained for percentiles) so p50/p95/p99 are exact for any run
the simulator can realistically produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counter:
    """A monotonically increasing count (events, bytes, cycles)."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value (queue depth, heap usage)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value


@dataclass
class CycleHistogram:
    """Distribution of a cycle-valued measurement with exact percentiles."""

    name: str
    max_samples: int = 65_536
    count: int = 0
    total: int = 0
    min: int | None = None
    max: int | None = None
    _samples: list[int] = field(default_factory=list, repr=False)

    def observe(self, value: int) -> None:
        """Record one sample."""
        value = int(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) over retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99)

    @property
    def mean(self) -> float:
        """Arithmetic mean over all observed samples."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        """Flat dict for reports (count/total/mean/min/max/percentiles)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min or 0,
            "max": self.max or 0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Named metrics, lazily created on first use.

    Instruments fetch their metric by name each time (`counter("tz.smc")`)
    so call sites stay one line and the registry remains the single
    namespace.  Dots namespace metrics the same way trace categories do
    (``tz.*``, ``optee.*``, ``stage.secure.*`` ...).
    """

    def __init__(self) -> None:
        self.enabled = True
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, CycleHistogram] = {}

    # -- access / creation -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> CycleHistogram:
        """Get or create the histogram ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = CycleHistogram(name)
        return h

    # -- one-line recording (no-ops when disabled) -------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (no-op while disabled)."""
        if self.enabled:
            self.counter(name).inc(n)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` (no-op while disabled)."""
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: int) -> None:
        """Record a histogram sample (no-op while disabled)."""
        if self.enabled:
            self.histogram(name).observe(value)

    # -- reading back -----------------------------------------------------------

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Counter values whose names start with ``prefix``."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histograms(self, prefix: str = "") -> dict[str, CycleHistogram]:
        """Histograms whose names start with ``prefix``."""
        return {
            name: h
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, Any]:
        """Everything, as a JSON-ready dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (a fresh namespace)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
