"""Provisioning helpers: train a classifier and assemble a deployment.

The device-side pipeline needs a trained :class:`~repro.core.filter.FilterBundle`;
these helpers are the 'factory floor' that produces one — corpus
generation, tokenizer fitting, training, optional quantization — plus a
one-call demo assembly used by the quickstart and many tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.filter import FilterBundle, FilterPolicy, SensitiveFilter
from repro.core.pipeline import SecurePipeline
from repro.core.platform import IotPlatform
from repro.core.workload import UtteranceWorkload
from repro.ml.asr import MatchedFilterAsr, SpeechVocoder
from repro.ml.dataset import Corpus, UtteranceGenerator
from repro.ml.models import build_classifier
from repro.ml.quantize import quantize_classifier
from repro.ml.tokenizer import WordTokenizer
from repro.ml.train import TrainConfig, Trainer
from repro.sim.rng import SimRng


@dataclass
class ProvisionResult:
    """A trained bundle plus its training artifacts."""

    bundle: FilterBundle
    tokenizer: WordTokenizer
    train_corpus: Corpus
    test_corpus: Corpus
    test_accuracy: float


def provision_bundle(
    seed: int = 42,
    architecture: str = "cnn",
    corpus_size: int = 1200,
    max_len: int = 16,
    epochs: int = 5,
    threshold: float = 0.5,
    policy: FilterPolicy = FilterPolicy.DROP,
    quantize: bool = False,
    train_wer: float = 0.0,
    hard_fraction: float = 0.0,
) -> ProvisionResult:
    """Train a sensitive-content classifier and wrap it for deployment.

    ``train_wer`` optionally corrupts the training texts through the
    ASR noise channel, which hardens the classifier for noisy
    deployments (used by experiment T6).  ``hard_fraction`` mixes in
    lexically ambiguous utterances (experiment T7), making the task —
    and the resulting decision curves — non-trivial.
    """
    rng = SimRng(seed, "provision")
    generator = UtteranceGenerator(rng.fork("corpus"))
    corpus = generator.generate(
        corpus_size, sensitive_fraction=0.5, hard_fraction=hard_fraction
    )
    train_corpus, test_corpus = corpus.split(0.8, rng.fork("split"))

    tokenizer = WordTokenizer(max_len=max_len).fit(
        UtteranceGenerator.all_template_texts()
    )
    vocabulary = [w for w in tokenizer.words()[2:]]  # skip <pad>/<unk>
    vocoder = SpeechVocoder(vocabulary)
    asr = MatchedFilterAsr(vocoder)

    if train_wer > 0.0:
        from repro.ml.asr import NoisyChannel
        from repro.ml.dataset import Utterance

        channel = NoisyChannel(rng.fork("train-noise"), train_wer, vocabulary)
        train_corpus = Corpus(
            [
                Utterance(text=channel.corrupt(u.text), category=u.category)
                for u in train_corpus.utterances
            ]
        )

    model = build_classifier(
        architecture, tokenizer.vocab_size, tokenizer.max_len,
        SimRng.compat(seed, "provision/model-init").generator,
    )
    trainer = Trainer(model, tokenizer, TrainConfig(epochs=epochs, seed=seed))
    trainer.fit(train_corpus, test_corpus)
    accuracy = trainer.evaluate(test_corpus).accuracy

    classifier = quantize_classifier(model) if quantize else model
    bundle = FilterBundle(
        vocoder=vocoder,
        asr=asr,
        filter=SensitiveFilter(
            classifier, tokenizer, threshold=threshold, policy=policy
        ),
    )
    return ProvisionResult(
        bundle=bundle,
        tokenizer=tokenizer,
        train_corpus=train_corpus,
        test_corpus=test_corpus,
        test_accuracy=accuracy,
    )


def build_demo_pipeline(
    seed: int = 42,
    utterances: int = 20,
    architecture: str = "cnn",
    policy: FilterPolicy = FilterPolicy.DROP,
    **provision_kwargs,
) -> tuple[SecurePipeline, UtteranceWorkload, IotPlatform]:
    """One-call demo: platform + trained secure pipeline + workload."""
    provisioned = provision_bundle(
        seed=seed, architecture=architecture, policy=policy, **provision_kwargs
    )
    platform = IotPlatform.create(seed=seed)
    pipeline = SecurePipeline(platform, provisioned.bundle)
    rng = SimRng(seed, "demo-workload")
    generator = UtteranceGenerator(rng)
    corpus = generator.generate(utterances, sensitive_fraction=0.5)
    workload = UtteranceWorkload.from_corpus(corpus, provisioned.bundle.vocoder)
    return pipeline, workload, platform
