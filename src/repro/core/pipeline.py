"""The secure pipeline: the paper's proposed design, end to end.

``SecurePipeline`` is the normal-world *client application* of the
design: it owns nothing sensitive.  It installs the secure audio PTA and
the audio-filter TA into OP-TEE, opens a GP session, and for every
workload utterance issues one ``CMD_PROCESS`` invocation — everything
that matters happens inside the TEE (capture through the secure driver,
ASR, classification, filtering, TLS relaying), and the client gets back
only the decision record.

Per-utterance latency, per-domain cycle attribution, and energy deltas
are collected around each invocation for the performance experiments.
"""

from __future__ import annotations

from typing import Callable

from repro.core.filter import FilterBundle
from repro.core.platform import IotPlatform
from repro.core.pta_audio import SecureAudioPta
from repro.core.results import PipelineRunResult, UtteranceResult
from repro.core.ta_filter import (
    CMD_PROCESS,
    CMD_PROCESS_STREAM,
    CMD_STATS,
    make_audio_filter_ta,
)
from repro.core.workload import UtteranceWorkload, WorkloadItem
from repro.optee.client import TeeClient
from repro.optee.params import Params, Value
from repro.optee.supervise import SupervisorPolicy, TaSupervisor
from repro.peripherals.audio import BufferSource
from repro.relay.relay import RetryPolicy


class SecurePipeline:
    """Fig. 1, assembled and runnable.

    Pass a :class:`~repro.optee.supervise.SupervisorPolicy` as
    ``supervisor`` to run the TA under supervision: panics are detected,
    the TA restarts with backoff and restores from sealed checkpoints,
    and an utterance that outlives every budget comes back *degraded* —
    suppressed as sensitive, nothing forwarded.  Defaults to ``None``
    because supervision is not free (checkpoint seals cost cycles), and
    an unsupervised run must stay byte-identical to earlier baselines.
    """

    name = "secure"

    def __init__(
        self,
        platform: IotPlatform,
        bundle: FilterBundle,
        chunk_frames: int = 256,
        driver_compiled_out: frozenset[str] = frozenset(),
        ta_signing_key: bytes | None = None,
        retry_policy: "RetryPolicy | None" = None,
        supervisor: "SupervisorPolicy | None" = None,
        device_id: str = "",
        trace_ids: bool = False,
        queue_max_depth: int = 64,
    ):
        self.platform = platform
        self.bundle = bundle
        self.pta = SecureAudioPta(platform.i2s_controller, platform.i2s_region)
        platform.tee.register_pta(self.pta)

        ta_class = make_audio_filter_ta(
            bundle=bundle,
            pta_uuid=self.pta.uuid,
            cloud_host=platform.cloud.HOST,
            cloud_port=platform.cloud.TLS_PORT,
            pinned_server_public=platform.cloud.tls.static_public,
            rng=platform.rng.fork("ta"),
            chunk_frames=chunk_frames,
            driver_compiled_out=driver_compiled_out,
            retry_policy=retry_policy,
            supervised=supervisor is not None,
            checkpoint_every=(
                supervisor.checkpoint_every if supervisor is not None else 1
            ),
            device_id=device_id,
            trace_ids=trace_ids,
            queue_max_depth=queue_max_depth,
        )
        signature = None
        if ta_signing_key is not None:
            from repro.optee.signing import sign_ta

            signature = sign_ta(ta_class, ta_signing_key)
        self.ta_uuid = platform.tee.install_ta(ta_class, signature=signature)
        self.client = TeeClient(platform.machine)
        self.supervisor: TaSupervisor | None = None
        self._supervisor_policy = supervisor
        self.client_restarts = 0
        if supervisor is not None:
            self.supervisor = TaSupervisor(
                platform.tee, self.client, self.ta_uuid,
                policy=supervisor, rng=platform.rng.fork("supervisor"),
            )
            self.session = self.supervisor.open()
        else:
            self.session = self.client.open_session(self.ta_uuid)
        self._seq = 0

    # -- execution ------------------------------------------------------------

    def process_item(self, item: WorkloadItem) -> UtteranceResult:
        """Run one utterance through the secure path.

        Unsupervised, this is one plain session invoke (byte-identical
        to earlier revisions).  Supervised, the invoke goes through the
        :class:`TaSupervisor` with a per-utterance sequence number for
        replay detection; if the TA stays dead past every budget the
        utterance *fails closed* — recorded as sensitive + suppressed,
        with ``degraded=True`` — rather than ever being forwarded raw.
        """
        machine = self.platform.machine
        self.platform.mic.swap_source(BufferSource(item.pcm))
        clock_before = machine.clock.snapshot()
        energy_before = self.platform.energy.snapshot()
        with machine.obs.span("utterance", category="pipeline.secure"):
            if self.supervisor is not None:
                self._seq += 1
                record = self.supervisor.invoke(
                    CMD_PROCESS,
                    Params.of(Value(a=item.frames, b=self._seq)),
                    # Restart attempts re-run capture: make sure a fresh
                    # instance reads *this* utterance's PCM, not whatever
                    # the mic drifted to while the TA was down.
                    reprime=lambda: self.platform.mic.swap_source(
                        BufferSource(item.pcm)
                    ),
                )
                self.session = self.supervisor.session or self.session
                if record is None:
                    machine.obs.metrics.inc("tee.degraded_utterances")
                    record = {
                        "transcript": "",
                        "probability": 1.0,
                        "sensitive": True,
                        "forwarded": False,
                        "payload": None,
                        "relay_status": "suppressed",
                        "relay_attempts": 0,
                        "degraded": True,
                    }
            else:
                record = self.session.invoke(
                    CMD_PROCESS, Params.of(Value(a=item.frames))
                )
        clock_after = machine.clock.snapshot()
        energy = self.platform.energy.delta_since(energy_before)
        return UtteranceResult(
            utterance=item.utterance,
            transcript=record["transcript"],
            sensitive_predicted=record["sensitive"],
            forwarded=record["forwarded"],
            payload=record["payload"],
            latency_cycles=clock_after.now - clock_before.now,
            energy_mj=energy.total_mj,
            domain_cycles=clock_after.delta(clock_before),
            relay_status=record.get("relay_status", ""),
            relay_attempts=record.get("relay_attempts", 0),
            degraded=record.get("degraded", False),
        )

    def _collect_stats(self, run: PipelineRunResult) -> None:
        """Pull the TA's stage-cycle and relay counters into the run.

        Under supervision the TA may be dead right now; stats collection
        then goes through the supervisor (restarting if possible) and
        degrades to empty stats instead of raising.
        """
        if self.supervisor is not None:
            stats = self.supervisor.invoke(CMD_STATS)
            self.session = self.supervisor.session or self.session
            if stats is None:
                return
        else:
            stats = self.session.invoke(CMD_STATS)
        run.stage_cycles = stats["stages"]
        run.relay_stats = stats["relay"]

    def process(
        self,
        workload: UtteranceWorkload,
        after_each: Callable[["SecurePipeline"], None] | None = None,
    ) -> PipelineRunResult:
        """Run a whole workload; ``after_each`` is the attack hook."""
        run = PipelineRunResult(pipeline=self.name)
        for item in workload:
            run.results.append(self.process_item(item))
            if after_each is not None:
                after_each(self)
        self._collect_stats(run)
        return run

    def process_continuous(
        self,
        workload: UtteranceWorkload,
        gap_samples: int = 2_000,
    ) -> PipelineRunResult:
        """Deployment-realistic mode: one continuous capture, VAD inside.

        The workload's utterances are rendered into a single PCM stream
        separated by silence gaps; the TA captures the whole stream,
        segments it with its in-enclave VAD, and filters each detected
        utterance.  Results map to ground truth by order (the VAD's
        segment order is the stream order).

        The VAD can disagree with the ground-truth segmentation: a short
        ``gap_samples`` lets its hangover merge adjacent utterances
        (under-segmentation), and noisy audio can split one utterance in
        two (over-segmentation).  What aligns is paired in order; the
        surplus is reported via ``over_segmented`` / ``under_segmented``
        and surplus decision records are kept in ``unpaired_records``
        rather than silently discarded.
        """
        import numpy as np

        machine = self.platform.machine
        gap = np.zeros(gap_samples, dtype=np.int16)
        stream = np.concatenate(
            [np.concatenate([item.pcm, gap]) for item in workload]
        )
        self.platform.mic.swap_source(BufferSource(stream))
        clock_before = machine.clock.snapshot()
        energy_before = self.platform.energy.snapshot()
        with machine.obs.span("stream", category="pipeline.secure",
                              samples=len(stream)):
            records = self.session.invoke(
                CMD_PROCESS_STREAM, Params.of(Value(a=len(stream)))
            )
        run = PipelineRunResult(pipeline=f"{self.name}-continuous")
        # Stats retrieval is one more TA invoke; pull it before closing the
        # measurement window so the run's totals reconstruct the whole
        # call's clock/energy deltas, not the stream invoke alone.
        self._collect_stats(run)
        clock_after = machine.clock.snapshot()
        energy = self.platform.energy.delta_since(energy_before)

        items = list(workload)
        run.over_segmented = max(0, len(records) - len(items))
        run.under_segmented = max(0, len(items) - len(records))
        run.unpaired_records = list(records[len(items):])
        if run.over_segmented or run.under_segmented:
            machine.trace.emit(
                machine.clock.now, "core.pipeline", "segmentation_mismatch",
                items=len(items), segments=len(records),
            )
        # Cost attribution: one clock/energy delta covers the whole stream,
        # so it is apportioned across the *kept* results (the pairs that
        # align with ground truth) — dividing by the raw VAD segment count
        # under-counted run totals whenever segmentation disagreed.  Each
        # domain's total is sliced with cumulative integer boundaries
        # (result i gets ``v*(i+1)//n - v*i//n``) so the slices sum exactly
        # to the measured delta, and each result's latency is the sum of
        # its domain slices — which keeps ``processing_latency_cycles()``
        # (latency minus the peripheral slice) non-negative by
        # construction.
        n = max(1, min(len(items), len(records)))
        domain_delta = clock_after.delta(clock_before)
        for i, (item, record) in enumerate(zip(items, records)):
            domains = {
                d: v * (i + 1) // n - v * i // n
                for d, v in domain_delta.items()
            }
            domains = {d: c for d, c in domains.items() if c}
            run.results.append(
                UtteranceResult(
                    utterance=item.utterance,
                    transcript=record["transcript"],
                    sensitive_predicted=record["sensitive"],
                    forwarded=record["forwarded"],
                    payload=record["payload"],
                    latency_cycles=sum(domains.values()),
                    energy_mj=energy.total_mj / n,
                    domain_cycles=domains,
                    relay_status=record.get("relay_status", ""),
                    relay_attempts=record.get("relay_attempts", 0),
                )
            )
        return run

    # -- normal-world crash/restart chaos ------------------------------------------

    def crash_client(self) -> None:
        """Kill the normal-world client application mid-run.

        Models a process crash: the session object, the supervisor and
        the client's utterance counter are simply *gone* — nothing
        client-side gets to run cleanup.  What still happens mirrors
        what the kernel does for a dead process: the TEE driver closes
        the process's sessions on fd release (which tears down a
        non-keep-alive TA instance once its last session drops — only
        sealed state survives), and the shared-memory carveout is
        reclaimed.  Call :meth:`recover_client` to restart.
        """
        from repro.errors import TeeError

        if self.session is not None and not getattr(self.session, "closed", True):
            try:
                # The kernel's fd-release cleanup issues the same SMC a
                # voluntary close would — entering the secure world so
                # the TA's teardown hooks actually run there.
                self.client._smc_call(
                    {"op": "close_session", "session": self.session.session_id}
                )
            except TeeError:
                # The TA can panic inside its close hook (chaos
                # injection); the kernel's cleanup doesn't care.
                pass
        # Kernel reclaims the dead process's shared carveout.
        self.client.close()
        self.session = None  # type: ignore[assignment]
        self.supervisor = None
        self._seq = 0
        machine = self.platform.machine
        machine.obs.metrics.inc("client.crashes")
        machine.trace.emit(
            machine.clock.now, "core.pipeline", "client_crashed",
        )

    def recover_client(self) -> dict:
        """Restart the client application after :meth:`crash_client`.

        A fresh :class:`TeeClient` context and session — re-instantiating
        the TA, whose ``on_create`` restores from the sealed checkpoint
        and store-and-forward queue — then ``CMD_RESUME`` asks the TA
        where committed state actually is.  The client's sequence counter
        resumes from the answer: re-invoking the committed sequence is
        replay-suppressed in the TA, so recovery can never double-send,
        and the first uncommitted utterance is ``seq + 1``.  Meaningful
        crash recovery needs supervised mode (checkpoints are only
        sealed when supervision is on); unsupervised recovery restarts
        from sequence zero.  Returns the TA's resume document.
        """
        from repro.core.ta_filter import CMD_RESUME

        # A panicked instance (e.g. chaos hit the close hook during the
        # crash) must be reaped before a session can reopen it.
        self.platform.tee.reap_panicked(self.ta_uuid)
        self.client = TeeClient(self.platform.machine)
        if self._supervisor_policy is not None:
            self.supervisor = TaSupervisor(
                self.platform.tee, self.client, self.ta_uuid,
                policy=self._supervisor_policy,
                rng=self.platform.rng.fork("supervisor"),
            )
            self.session = self.supervisor.open()
        else:
            self.session = self.client.open_session(self.ta_uuid)
        resume = self.session.invoke(CMD_RESUME)
        self._seq = int(resume["seq"])
        self.client_restarts += 1
        machine = self.platform.machine
        machine.obs.metrics.inc("client.restarts")
        machine.trace.emit(
            machine.clock.now, "core.pipeline", "client_recovered",
            seq=self._seq, queue_depth=resume.get("queue_depth", 0),
        )
        return resume

    # -- adversary-facing surface ------------------------------------------------

    def attack_targets(self) -> list[tuple[int, int]]:
        """Addresses a buffer-snooping attacker would go for.

        Both the driver's chunk I/O buffer and the assembled utterance
        buffer — in this design, all in secure memory.
        """
        targets = []
        if self.pta.driver is not None and self.pta.driver._buf_addr is not None:
            targets.append(
                (self.pta.driver._buf_addr, self.pta.driver._buf_bytes)
            )
        utt = self.pta.utterance_buffer()
        if utt is not None:
            targets.append(utt)
        return targets

    def tcb_loc(self) -> int:
        """Driver LoC actually inside the TEE."""
        return self.pta.tcb_loc()

    def close(self) -> None:
        """Close the TA session and release client resources.

        A panicked TA's session is already dead — closing it raises
        ``TeeTargetDead``, which is not an error at shutdown.
        """
        from repro.errors import TeeTargetDead

        if self.supervisor is not None:
            self.supervisor.close()
        else:
            try:
                self.session.close()
            except TeeTargetDead:
                pass
        self.client.close()
