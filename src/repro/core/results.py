"""Result records for pipeline runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ml.dataset import Utterance
from repro.sim.clock import CycleDomain


@dataclass(frozen=True)
class UtteranceResult:
    """Outcome + costs of one utterance through a pipeline.

    ``relay_status`` is the delivery outcome for pipelines with a
    fault-tolerant relay: ``"sent"``, ``"queued"`` (spilled to the sealed
    store-and-forward queue after retries), ``"throttled"`` (spilled
    under cloud admission backpressure), ``"shed"`` (refused fail-closed
    by the bounded queue, with accounting) or ``"dropped"`` (withheld by
    the filter).  Pipelines without relay accounting leave it empty.

    ``degraded`` marks a fail-closed decision: the TA was down past every
    restart budget, so the utterance was suppressed as sensitive without
    ever being processed — nothing raw left the device.
    """

    utterance: Utterance
    transcript: str
    sensitive_predicted: bool
    forwarded: bool
    payload: str | None
    latency_cycles: int
    energy_mj: float
    domain_cycles: dict[CycleDomain, int] = field(default_factory=dict)
    relay_status: str = ""
    relay_attempts: int = 0
    degraded: bool = False

    @property
    def correct(self) -> bool:
        """Classifier decision vs ground truth."""
        return self.sensitive_predicted == self.utterance.sensitive


@dataclass
class PipelineRunResult:
    """Aggregate outcome of one workload run.

    ``relay_stats`` holds the TA's delivery counters (sent / queued /
    dropped / drained, retries, re-handshakes, backoff cycles, queue
    depth).  ``over_segmented`` / ``under_segmented`` report how many
    segments the continuous-capture VAD found beyond / short of the
    workload's ground-truth utterances; ``unpaired_records`` keeps the raw
    decision records of surplus segments so nothing is silently discarded.
    """

    pipeline: str
    results: list[UtteranceResult] = field(default_factory=list)
    stage_cycles: dict[str, int] = field(default_factory=dict)
    relay_stats: dict[str, int] = field(default_factory=dict)
    over_segmented: int = 0
    under_segmented: int = 0
    unpaired_records: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    # -- latency / throughput -----------------------------------------------------

    @property
    def latencies(self) -> np.ndarray:
        """Per-utterance latency in cycles."""
        return np.array([r.latency_cycles for r in self.results], dtype=np.int64)

    def mean_latency_cycles(self) -> float:
        """Mean per-utterance latency."""
        return float(self.latencies.mean()) if self.results else 0.0

    def p95_latency_cycles(self) -> float:
        """95th-percentile per-utterance latency."""
        return float(np.percentile(self.latencies, 95)) if self.results else 0.0

    def processing_latency_cycles(self) -> np.ndarray:
        """Latency minus peripheral (real-time capture) cycles.

        Audio capture takes audio-duration time in both designs; the
        interesting overhead is everything *else*.
        """
        out = []
        for r in self.results:
            peripheral = r.domain_cycles.get(CycleDomain.PERIPHERAL, 0)
            out.append(r.latency_cycles - peripheral)
        return np.array(out, dtype=np.int64)

    def total_energy_mj(self) -> float:
        """Energy across the whole run."""
        return sum(r.energy_mj for r in self.results)

    def total_latency_cycles(self) -> int:
        """Cycles across the whole run.

        In continuous mode the per-result attribution slices one whole-run
        clock delta, so this total reconstructs that measured delta
        exactly; in batch mode it is simply the sum of per-utterance
        latencies.
        """
        return int(self.latencies.sum()) if self.results else 0

    # -- decisions ------------------------------------------------------------------

    def forwarded_count(self) -> int:
        """Utterances whose payload went to the cloud."""
        return sum(1 for r in self.results if r.forwarded)

    def sent_count(self) -> int:
        """Utterances whose payload was delivered to the cloud."""
        return sum(1 for r in self.results if r.relay_status == "sent")

    def queued_count(self) -> int:
        """Utterances spilled into the store-and-forward queue."""
        return sum(1 for r in self.results if r.relay_status == "queued")

    def throttled_count(self) -> int:
        """Utterances queued under cloud admission backpressure."""
        return sum(1 for r in self.results if r.relay_status == "throttled")

    def shed_count(self) -> int:
        """Utterances refused fail-closed by the bounded queue.

        Shedding is a *deliberate, accounted* loss (the queue was at
        depth and refuses the newest rather than evicting committed
        entries); it still counts as lost in :meth:`lost_count` because
        the decision did not reach the cloud and is not at rest.
        """
        return sum(1 for r in self.results if r.relay_status == "shed")

    def lost_count(self) -> int:
        """Forwarded decisions that ended neither sent nor at rest.

        The fault-tolerance invariant: this must be zero at any fault rate
        (for pipelines that track relay status at all) — unless the
        bounded store-and-forward queue *deliberately* shed, in which
        case ``lost_count() == shed_count()`` exactly (nothing is ever
        lost silently).  ``"queued"`` and ``"throttled"`` payloads are at
        rest in the sealed queue, not lost.
        """
        return sum(
            1 for r in self.results
            if r.forwarded
            and r.relay_status not in ("", "sent", "queued", "throttled")
        )

    def degraded_count(self) -> int:
        """Utterances suppressed fail-closed while the TA was down."""
        return sum(1 for r in self.results if r.degraded)

    def total_relay_attempts(self) -> int:
        """Delivery attempts across the run (retries included)."""
        return sum(r.relay_attempts for r in self.results)

    def blocked_count(self) -> int:
        """Utterances withheld (or redacted/hashed)."""
        return sum(
            1 for r in self.results if not r.forwarded or r.payload != r.transcript
        )

    def classifier_accuracy(self) -> float:
        """On-path classification accuracy against ground truth."""
        if not self.results:
            return 0.0
        return sum(r.correct for r in self.results) / len(self.results)

    def summary(self) -> dict[str, Any]:
        """One-line dict for report tables."""
        return {
            "pipeline": self.pipeline,
            "utterances": len(self.results),
            "mean_latency_cycles": self.mean_latency_cycles(),
            "p95_latency_cycles": self.p95_latency_cycles(),
            "mean_processing_cycles": float(self.processing_latency_cycles().mean())
            if self.results
            else 0.0,
            "total_latency_cycles": self.total_latency_cycles(),
            "total_energy_mj": self.total_energy_mj(),
            "forwarded": self.forwarded_count(),
            "sent": self.sent_count(),
            "queued": self.queued_count(),
            "throttled": self.throttled_count(),
            "shed": self.shed_count(),
            "degraded": self.degraded_count(),
            "relay_attempts": self.total_relay_attempts(),
            "accuracy": self.classifier_accuracy(),
        }
