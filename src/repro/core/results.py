"""Result records for pipeline runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ml.dataset import Utterance
from repro.sim.clock import CycleDomain


@dataclass(frozen=True)
class UtteranceResult:
    """Outcome + costs of one utterance through a pipeline."""

    utterance: Utterance
    transcript: str
    sensitive_predicted: bool
    forwarded: bool
    payload: str | None
    latency_cycles: int
    energy_mj: float
    domain_cycles: dict[CycleDomain, int] = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        """Classifier decision vs ground truth."""
        return self.sensitive_predicted == self.utterance.sensitive


@dataclass
class PipelineRunResult:
    """Aggregate outcome of one workload run."""

    pipeline: str
    results: list[UtteranceResult] = field(default_factory=list)
    stage_cycles: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    # -- latency / throughput -----------------------------------------------------

    @property
    def latencies(self) -> np.ndarray:
        """Per-utterance latency in cycles."""
        return np.array([r.latency_cycles for r in self.results], dtype=np.int64)

    def mean_latency_cycles(self) -> float:
        """Mean per-utterance latency."""
        return float(self.latencies.mean()) if self.results else 0.0

    def p95_latency_cycles(self) -> float:
        """95th-percentile per-utterance latency."""
        return float(np.percentile(self.latencies, 95)) if self.results else 0.0

    def processing_latency_cycles(self) -> np.ndarray:
        """Latency minus peripheral (real-time capture) cycles.

        Audio capture takes audio-duration time in both designs; the
        interesting overhead is everything *else*.
        """
        out = []
        for r in self.results:
            peripheral = r.domain_cycles.get(CycleDomain.PERIPHERAL, 0)
            out.append(r.latency_cycles - peripheral)
        return np.array(out, dtype=np.int64)

    def total_energy_mj(self) -> float:
        """Energy across the whole run."""
        return sum(r.energy_mj for r in self.results)

    # -- decisions ------------------------------------------------------------------

    def forwarded_count(self) -> int:
        """Utterances whose payload went to the cloud."""
        return sum(1 for r in self.results if r.forwarded)

    def blocked_count(self) -> int:
        """Utterances withheld (or redacted/hashed)."""
        return sum(
            1 for r in self.results if not r.forwarded or r.payload != r.transcript
        )

    def classifier_accuracy(self) -> float:
        """On-path classification accuracy against ground truth."""
        if not self.results:
            return 0.0
        return sum(r.correct for r in self.results) / len(self.results)

    def summary(self) -> dict[str, Any]:
        """One-line dict for report tables."""
        return {
            "pipeline": self.pipeline,
            "utterances": len(self.results),
            "mean_latency_cycles": self.mean_latency_cycles(),
            "p95_latency_cycles": self.p95_latency_cycles(),
            "mean_processing_cycles": float(self.processing_latency_cycles().mean())
            if self.results
            else 0.0,
            "total_energy_mj": self.total_energy_mj(),
            "forwarded": self.forwarded_count(),
            "accuracy": self.classifier_accuracy(),
        }
