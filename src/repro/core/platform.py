"""Platform assembly: the whole simulated device in one object.

Builds and wires every substrate so examples, tests and benchmarks start
from one call: TrustZone machine, OP-TEE + supplicant, untrusted kernel,
the I²S microphone chain (controller in its own MMIO partition, so it can
be secured independently), an optional camera, the cloud endpoints, and
an energy meter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.service import IngestionConfig, VoiceCloudService
from repro.energy.model import EnergyMeter, PowerModel
from repro.kernel.kernel import Kernel
from repro.optee.os import OpTeeOs
from repro.optee.supplicant import TeeSupplicant
from repro.peripherals.audio import AudioFormat, SilenceSource
from repro.peripherals.camera import Camera, SyntheticScene
from repro.peripherals.i2s import I2sBus, I2sController, I2sReg  # noqa: F401
from repro.peripherals.microphone import DigitalMicrophone
from repro.sim.faults import (
    FaultConfig,
    FaultInjector,
    SecureFaultConfig,
    SecureFaultInjector,
)
from repro.sim.rng import SimRng
from repro.tz.machine import MachineConfig, TrustZoneMachine
from repro.tz.memory import MemoryRegion, SecurityAttr
from repro.tz.worlds import World

I2S_MMIO_BASE = 0x0400_0000
I2S_MMIO_SIZE = 0x1000


@dataclass
class IotPlatform:
    """A fully wired simulated IoT device."""

    machine: TrustZoneMachine
    tee: OpTeeOs
    supplicant: TeeSupplicant
    kernel: Kernel
    mic: DigitalMicrophone
    i2s_controller: I2sController
    i2s_region: MemoryRegion
    camera: Camera
    cloud: VoiceCloudService
    energy: EnergyMeter
    rng: SimRng

    @classmethod
    def create(
        cls,
        seed: int = 42,
        machine_config: MachineConfig | None = None,
        audio_format: AudioFormat | None = None,
        i2s_fifo_depth: int = 64,
        power_model: PowerModel | None = None,
        ta_verification_key: bytes | None = None,
        network_faults: FaultConfig | None = None,
        secure_faults: SecureFaultConfig | None = None,
        ingestion: "IngestionConfig | None" = None,
    ) -> "IotPlatform":
        """Build the device.

        The I²S controller gets its own MMIO partition (``i2s_mmio``) so
        the secure design can claim exactly that peripheral without
        affecting other devices — mirroring per-device TZASC/TZPC control
        on real SoCs.

        ``network_faults`` installs a deterministic fault injector on the
        supplicant's network service (the untrusted relay link of the
        threat model); omit it for a perfectly reliable network.
        ``secure_faults`` does the same *inside* the TEE (TA panics, heap
        exhaustion, PTA/DMA errors, storage corruption) — the chaos knob
        the supervision layer is tested against.

        ``ingestion`` (an :class:`~repro.cloud.service.IngestionConfig`)
        puts the cloud service behind its sharded multi-tenant admission
        tier — token buckets, bounded tenant queues, Throttled verdicts —
        driven read-only by this machine's clock and reporting into its
        metrics registry.  Omitted (the default), the cloud accepts
        everything exactly as before, byte for byte.
        """
        config = machine_config or MachineConfig()
        if seed != 42 and machine_config is None:
            config.sim.seed = seed
        machine = TrustZoneMachine(config)
        rng = machine.rng
        if secure_faults is not None and secure_faults.enabled:
            machine.secure_faults = SecureFaultInjector(
                secure_faults, rng.fork("tee-chaos")
            )

        tee = OpTeeOs(machine, ta_verification_key=ta_verification_key)
        supplicant = TeeSupplicant(machine)
        if network_faults is not None and network_faults.enabled:
            supplicant.net.set_fault_injector(
                FaultInjector(network_faults, rng.fork("net"))
            )
        tee.attach_supplicant(supplicant)
        kernel = Kernel(machine)

        i2s_region = machine.memory.add_region(
            MemoryRegion(
                "i2s_mmio", I2S_MMIO_BASE, I2S_MMIO_SIZE,
                SecurityAttr.NONSECURE, device=True,
            )
        )
        controller = I2sController(
            machine.clock, machine.trace,
            fmt=audio_format or AudioFormat(),
            fifo_depth=i2s_fifo_depth,
        )
        machine.memory.attach_mmio("i2s_mmio", controller)
        # Interrupt wiring: the controller's IRQ output drives a GIC line,
        # which boots routed to the normal world (unclaimed peripheral).
        from repro.tz.interrupts import IRQ_I2S

        controller.set_irq_callback(lambda: machine.gic.raise_line(IRQ_I2S))
        machine.gic.configure(IRQ_I2S, World.NORMAL, lambda: None)
        mic = DigitalMicrophone(SilenceSource(), fmt=controller.format)
        I2sBus(controller, mic)

        camera = Camera(SyntheticScene(rng.fork("scene")))

        cloud = VoiceCloudService(
            rng.fork("cloud"),
            clock=machine.clock if ingestion is not None else None,
            metrics=machine.obs.metrics if ingestion is not None else None,
            ingestion=ingestion,
        )
        supplicant.net.register_endpoint(
            VoiceCloudService.HOST, VoiceCloudService.TLS_PORT, cloud
        )
        supplicant.net.register_endpoint(
            VoiceCloudService.HOST,
            VoiceCloudService.PLAINTEXT_PORT,
            cloud.plaintext_endpoint,
        )

        energy = EnergyMeter(machine.clock, power_model or PowerModel())
        # Wire the meter into the observability layer so spans carry
        # per-region energy deltas alongside their cycle attribution.
        machine.obs.attach_energy(energy)

        return cls(
            machine=machine,
            tee=tee,
            supplicant=supplicant,
            kernel=kernel,
            mic=mic,
            i2s_controller=controller,
            i2s_region=i2s_region,
            camera=camera,
            cloud=cloud,
            energy=energy,
            rng=rng,
        )
