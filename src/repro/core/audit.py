"""Security audit reporting.

One of the operational wins of the secure design: attacks that used to
succeed silently now leave *evidence* — TZASC faults, trace events, TA
panics.  This module condenses the machine's trace log and counters into
the incident report a fleet operator would read, and supports simple
anomaly queries ("did anything touch secure memory today?").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.tz.machine import TrustZoneMachine


@dataclass(frozen=True)
class ViolationRecord:
    """One TZASC fault, attributed."""

    timestamp: int
    region: str
    address: int
    write: bool


@dataclass
class SecurityAuditReport:
    """Condensed security-relevant activity of one machine run."""

    violations: list[ViolationRecord] = field(default_factory=list)
    violations_by_region: dict[str, int] = field(default_factory=dict)
    ta_panics: int = 0
    world_switches: int = 0
    smc_calls: int = 0
    supplicant_rpcs: int = 0
    bytes_on_wire: int = 0

    @property
    def compromised_indicators(self) -> bool:
        """True if anything an operator should page on happened."""
        return bool(self.violations) or self.ta_panics > 0

    def render(self) -> str:
        """Plain-text incident summary."""
        lines = ["security audit", "=" * 14]
        status = "ATTENTION" if self.compromised_indicators else "clean"
        lines.append(f"status           : {status}")
        lines.append(f"TZASC violations : {len(self.violations)}")
        for region, count in sorted(self.violations_by_region.items()):
            lines.append(f"  - {region}: {count}")
        lines.append(f"TA panics        : {self.ta_panics}")
        lines.append(f"world switches   : {self.world_switches}")
        lines.append(f"SMC calls        : {self.smc_calls}")
        lines.append(f"supplicant RPCs  : {self.supplicant_rpcs}")
        lines.append(f"bytes on wire    : {self.bytes_on_wire}")
        return "\n".join(lines)


def audit_machine(
    machine: TrustZoneMachine,
    supplicant=None,
) -> SecurityAuditReport:
    """Build the audit report from a machine's trace and counters."""
    violations = []
    by_region: Counter[str] = Counter()
    for event in machine.trace.events("tz.fault"):
        record = ViolationRecord(
            timestamp=event.timestamp,
            region=str(event.data.get("region")),
            address=int(event.data.get("addr", 0)),
            write=bool(event.data.get("write")),
        )
        violations.append(record)
        by_region[record.region] += 1

    panics = sum(
        1 for e in machine.trace.events("optee.os") if e.name == "ta_panic"
    )
    rpcs = machine.trace.count("optee.rpc")
    report = SecurityAuditReport(
        violations=violations,
        violations_by_region=dict(by_region),
        ta_panics=panics,
        world_switches=machine.cpu.switch_count,
        smc_calls=machine.monitor.smc_count,
        supplicant_rpcs=rpcs,
        bytes_on_wire=supplicant.net.bytes_sent if supplicant else 0,
    )
    return report
