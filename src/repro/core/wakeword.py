"""Wake-word gating: defense against accidental activation.

The paper's motivating incident (§I) is the 2019 leak of assistant
recordings, "part of these recordings activated accidentally by users" —
audio that was never addressed to the assistant at all.  The sensitive-
content classifier is the wrong tool for that case: an accidentally
captured *benign* side conversation ("what time is dinner") would sail
through a content filter, yet the user never consented to sending it.

The gate implements the intent check: only transcripts that begin with a
wake word are eligible for relaying; everything else is treated as
accidental capture and dropped in-enclave, regardless of content.  It
runs *before* the content classifier, so the pipeline's decision is:

    intended for the assistant?  →  no  → drop (accidental capture)
                                 →  yes → content filter (drop/redact/hash)

The gate also strips the wake word before classification, so classifier
training data does not need to include it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ml.tokenizer import normalize

DEFAULT_WAKE_WORDS = ("alexa", "computer", "echo")


@dataclass(frozen=True)
class GateDecision:
    """Outcome of the intent check."""

    intended: bool
    command: str  # transcript with the wake word stripped (if intended)


class WakeWordGate:
    """Transcript-level wake-word detector."""

    def __init__(self, wake_words: tuple[str, ...] = DEFAULT_WAKE_WORDS):
        if not wake_words:
            raise ValueError("at least one wake word required")
        self._wake_words = tuple(w.lower() for w in wake_words)

    @property
    def wake_words(self) -> tuple[str, ...]:
        """The configured trigger vocabulary."""
        return self._wake_words

    def check(self, transcript: str) -> GateDecision:
        """Classify intent and strip the wake word."""
        words = normalize(transcript)
        if words and words[0] in self._wake_words:
            return GateDecision(intended=True, command=" ".join(words[1:]))
        return GateDecision(intended=False, command=transcript)
