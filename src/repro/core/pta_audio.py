"""The secure audio PTA.

The intermediary the paper describes (Section II): "a secure module with
OS-level privileges that could serve as an intermediary between a TA (no
OS-level privileges) and low-level code like device driver software."

At ``INIT`` the PTA claims the I²S controller's MMIO partition into the
secure world (after which the kernel literally cannot program the device)
and instantiates the — typically trace-minimized — I²S driver on a
:class:`~repro.drivers.hosting.SecureDriverHost`, so the driver's I/O
buffers land in the secure carveout (Fig. 1 step 3).

Commands (TA-facing)::

    INIT           payload: {"compiled_out": frozenset|None}
    OPEN           payload: {"chunk_frames": int}
    START / STOP / CLOSE
    READ           payload: {"frames": int} → np.int16 PCM (secure-side)
    BUFFER_ADDR    → (addr, size) of the driver's current I/O buffer
    STATE          → driver state string ("uninit" before INIT) — the
                     recovery handshake a restarted TA uses to adopt a
                     still-running capture stream
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.drivers.hosting import SecureDriverHost
from repro.drivers.i2s_driver import I2sDriver
from repro.errors import DeviceStateError, TeeBadParameters
from repro.optee.pta import PseudoTa
from repro.peripherals.i2s import I2sController
from repro.tz.memory import MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optee.ta import TrustedApplication

CMD_INIT = 1
CMD_OPEN = 2
CMD_START = 3
CMD_READ = 4
CMD_STOP = 5
CMD_CLOSE = 6
CMD_BUFFER_ADDR = 7
CMD_STATE = 8


class SecureAudioPta(PseudoTa):
    """Hosts the secure I²S driver behind a PTA command interface."""

    NAME = "pta.secure-audio"

    STALL_BUDGET = 3
    """Consecutive empty chunk reads tolerated before the PTA declares the
    capture stream stalled.  ``read_chunk`` blocks for a full period of
    real capture time, so even one empty return means the controller
    produced nothing for an entire period — three in a row is a dead or
    disabled device, not scheduling jitter."""

    def __init__(self, controller: I2sController, mmio_region: MemoryRegion):
        super().__init__()
        self._controller = controller
        self._mmio_region = mmio_region
        self.driver: I2sDriver | None = None
        self._host: SecureDriverHost | None = None
        self._utt_buf_addr: int | None = None
        self._utt_buf_size = 0  # allocated capacity (bytes)
        self._utt_buf_len = 0  # live utterance length (bytes)

    def on_invoke(
        self, cmd: int, payload: Any, caller: "TrustedApplication | None"
    ) -> Any:
        """Dispatch one command (see module docstring for the table)."""
        if cmd == CMD_INIT:
            return self._init(payload or {})
        self.require_caller(caller)
        if cmd == CMD_STATE:
            # Recovery handshake: a restarted TA asks where the hardware
            # actually is (the PTA and driver survive a TA panic), so it
            # can adopt a still-running capture instead of re-OPENing a
            # non-idle stream and tripping the driver's state machine.
            return self.driver.state if self.driver is not None else "uninit"
        if self.driver is None:
            raise TeeBadParameters("secure audio PTA not initialized")
        if cmd == CMD_OPEN:
            self.driver.pcm_open_capture(int(payload["chunk_frames"]))
            return None
        if cmd == CMD_START:
            self.driver.trigger_start()
            return None
        if cmd == CMD_READ:
            return self._read(int(payload["frames"]))
        if cmd == CMD_STOP:
            self.driver.trigger_stop()
            return None
        if cmd == CMD_CLOSE:
            self.driver.pcm_close()
            return None
        if cmd == CMD_BUFFER_ADDR:
            return (self.driver._buf_addr, self.driver._buf_bytes)
        raise TeeBadParameters(f"secure audio PTA: unknown command {cmd}")

    def _init(self, payload: dict) -> None:
        """Claim the controller and probe the (minimized) secure driver."""
        assert self.ctx is not None, "PTA not registered"
        if self.driver is not None:
            return  # idempotent
        self.ctx.claim_region(self._mmio_region)
        self._host = SecureDriverHost(self.ctx)
        compiled_out = payload.get("compiled_out") or frozenset()
        self.driver = I2sDriver(
            self._host,
            self._controller,
            self._mmio_region,
            compiled_out=frozenset(compiled_out),
        )
        self.driver.probe()
        # Pull the controller's interrupt line into the secure world too:
        # the kernel must neither handle nor observe mic activity.
        from repro.tz.interrupts import IRQ_I2S
        from repro.tz.worlds import World

        self.ctx.machine.gic.configure(
            IRQ_I2S, World.SECURE, lambda: self.driver.irq_handler()
        )
        self.ctx.log("driver_ready", compiled_out=len(self.driver.compiled_out))

    def _read(self, frames: int) -> np.ndarray:
        """Capture ``frames`` samples through the secure driver.

        The assembled utterance is also landed in a *secure* carveout
        buffer (the in-TEE analogue of the userland app buffer a baseline
        system would hold) — the address experiments hand to the attack
        models, which then fault on it.
        """
        assert self.driver is not None and self._host is not None
        assert self.ctx is not None
        full = np.empty(frames, dtype=np.int16)
        filled = 0
        empty_reads = 0
        with self.ctx.machine.obs.span(
            "pta_read", category="capture.secure", frames=frames
        ):
            while filled < frames:
                pcm = self.driver.read_chunk()
                if len(pcm) == 0:
                    # A stalled controller (disabled RX, dead clock, fault
                    # injection) returns empty chunks forever; without a
                    # budget this loop never terminates.
                    empty_reads += 1
                    if empty_reads >= self.STALL_BUDGET:
                        raise DeviceStateError(
                            f"secure audio capture stalled: {empty_reads} "
                            f"consecutive empty reads at {filled}/{frames} "
                            f"frames"
                        )
                    continue
                empty_reads = 0
                take = min(len(pcm), frames - filled)
                full[filled : filled + take] = pcm[:take]
                filled += take
            self._land_utterance(full)
        return full

    def _land_utterance(self, pcm: np.ndarray) -> None:
        nbytes = len(pcm) * 2
        self._utt_buf_len = nbytes
        if nbytes == 0:
            return
        assert self._host is not None
        if self._utt_buf_addr is None or nbytes > self._utt_buf_size:
            if self._utt_buf_addr is not None:
                self._host.free_buffer(self._utt_buf_addr)
            self._utt_buf_addr = self._host.alloc_buffer(nbytes)
            self._utt_buf_size = nbytes
        self._host.write_mem(self._utt_buf_addr, pcm.astype("<i2").tobytes())
        if nbytes < self._utt_buf_size:
            # Scrub the stale tail: a reused larger buffer would otherwise
            # keep the previous utterance's plaintext past the live window.
            self._host.write_mem(
                self._utt_buf_addr + nbytes, b"\x00" * (self._utt_buf_size - nbytes)
            )

    def utterance_buffer(self) -> tuple[int, int] | None:
        """(addr, live length) of the secure utterance buffer, if any.

        The length is the *live* utterance size, not the allocation
        capacity — a shorter utterance landing in a reused larger buffer
        must not report (or expose) the stale tail.
        """
        if self._utt_buf_addr is None:
            return None
        return (self._utt_buf_addr, self._utt_buf_len)

    # -- introspection for experiments -----------------------------------------

    def tcb_loc(self) -> int:
        """LoC of the driver build actually running in the TEE."""
        if self.driver is None:
            return 0
        return self.driver.compiled_loc()
